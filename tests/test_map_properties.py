"""Property-based tests for map algebra (composition, reversal, images)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.presburger import (
    BasicMap,
    Constraint,
    LinExpr,
    Map,
    MapSpace,
)

pytestmark = pytest.mark.slow

LO, HI = -3, 4
IN_DIMS = ("x",)
OUT_DIMS = ("y",)
SPACE = MapSpace("S", IN_DIMS, "T", OUT_DIMS)


def all_pairs():
    rng = range(LO, HI + 1)
    return itertools.product(rng, rng)


@st.composite
def affine_maps(draw):
    """y = a*x + b restricted to a random sub-box."""
    a = draw(st.integers(-2, 2))
    b = draw(st.integers(-3, 3))
    lo = draw(st.integers(LO, HI - 1))
    hi = draw(st.integers(lo, HI))
    cons = [
        Constraint.eq(LinExpr.var("y") - (LinExpr.var("x") * a + b)),
        Constraint.ge(LinExpr.var("x"), lo),
        Constraint.le(LinExpr.var("x"), hi),
        Constraint.ge(LinExpr.var("y"), LO * 3),
        Constraint.le(LinExpr.var("y"), HI * 3),
    ]
    return Map(SPACE, [BasicMap(SPACE, cons)])


def graph_of(m):
    pts = set()
    for x, y in itertools.product(range(LO * 3, HI * 3 + 1), repeat=2):
        if any(
            all(c.satisfied_by({"x": x, "y": y}) for c in bm.constraints)
            for bm in m.pieces
        ):
            pts.add((x, y))
    return pts


@settings(max_examples=25, deadline=None)
@given(affine_maps())
def test_reverse_swaps_the_graph(m):
    g = graph_of(m)
    rev = m.reverse()
    assert graph_of_reversed(rev) == {(b, a) for a, b in g}
    # and reversing twice restores the original graph
    assert graph_of(rev.reverse()) == g


def graph_of_reversed(m):
    pts = set()
    for x, y in itertools.product(range(LO * 3, HI * 3 + 1), repeat=2):
        binding = {m.space.in_dims[0]: x, m.space.out_dims[0]: y}
        if any(
            all(c.satisfied_by(binding) for c in bm.constraints)
            for bm in m.pieces
        ):
            pts.add((x, y))
    return pts


@settings(max_examples=25, deadline=None)
@given(affine_maps())
def test_domain_and_range_project_graph(m):
    g = graph_of(m)
    dom = {a for a, _ in g}
    rng = {b for _, b in g}
    for a in dom:
        assert m.domain().contains({"x": a})
    for b in rng:
        assert m.range().contains({"y": b})


@settings(max_examples=20, deadline=None)
@given(affine_maps(), affine_maps())
def test_composition_matches_pointwise(f, g):
    """(f . g)(x) = g's image of f's image, pointwise."""
    g_renamed = Map(
        MapSpace("T", ("u",), "U", ("v",)),
        [
            BasicMap(
                MapSpace("T", ("u",), "U", ("v",)),
                [c.rename({"x": "u", "y": "v"}) for c in bm.constraints],
            )
            for bm in g.pieces
        ],
    )
    comp = f.apply_range(g_renamed)
    gf = graph_of(f)
    gg = graph_of(g)
    expected = {
        (a, c) for a, b in gf for b2, c in gg if b == b2
    }
    got = set()
    in_dim = comp.space.in_dims[0]
    out_dim = comp.space.out_dims[0]
    for x, z in itertools.product(range(LO * 3, HI * 3 + 1), repeat=2):
        if any(
            all(c.satisfied_by({in_dim: x, out_dim: z}) for c in bm.constraints)
            for bm in comp.pieces
        ):
            got.add((x, z))
    assert got == expected


@settings(max_examples=20, deadline=None)
@given(affine_maps())
def test_image_of_point_matches_graph(m):
    g = graph_of(m)
    for a in {a for a, _ in g}:
        img = m.image_of_point({"x": a})
        (dim,) = img.space.dims
        expected = {b for a2, b in g if a2 == a}
        got = {p[dim] for p in _enum(img)}
        assert got == expected


def _enum(s):
    from repro.presburger import enumerate_set_points

    return list(enumerate_set_points(s))
