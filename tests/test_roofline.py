"""Tests for the roofline view of the machine models."""


from repro import CompileOptions
from repro.core import optimize
from repro.machine import (
    analyze_optimized,
    analyze_scheduled,
    intensity_gain,
    roofline,
)
from repro.pipelines import conv2d, polybench, unsharp_mask
from repro.scheduler import MINFUSE, schedule_program


class TestRoofline:
    def test_fusion_raises_intensity(self):
        prog = unsharp_mask.build(512)
        fused = analyze_optimized(
            optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 64)))
        )
        unfused = analyze_scheduled(schedule_program(prog, MINFUSE), (8, 64))
        gain = intensity_gain(fused, unfused)
        assert gain is not None and gain > 1.2

    def test_pointwise_pipeline_is_memory_bound(self):
        prog = unsharp_mask.build(512)
        work = analyze_optimized(optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 64))))
        points = roofline(work, threads=32)
        assert all(p.bound == "memory" for p in points)

    def test_matmul_is_compute_bound(self):
        prog = polybench.build_2mm(512)
        work = analyze_optimized(optimize(prog, CompileOptions(target="cpu", tile_sizes=(32, 32))))
        points = roofline(work, threads=32)
        assert any(p.bound == "compute" for p in points)

    def test_balance_scales_with_threads(self):
        prog = conv2d.build({"H": 128, "W": 128})
        work = analyze_optimized(optimize(prog, CompileOptions(target="cpu", tile_sizes=(16, 16))))
        p1 = roofline(work, threads=1)[0]
        p32 = roofline(work, threads=32)[0]
        # bandwidth saturates before compute does: balance point rises
        assert p32.machine_balance > p1.machine_balance

    def test_str_rendering(self):
        prog = conv2d.build({"H": 64, "W": 64})
        work = analyze_optimized(optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8))))
        text = str(roofline(work)[0])
        assert "ops/B" in text and "bound" in text


class TestCLITune:
    def test_tune_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["tune", "conv2d", "--size", "64", "--candidates", "8", "16"]) == 0
        out = capsys.readouterr().out
        assert "best tile sizes" in out
