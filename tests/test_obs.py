"""The observability subsystem: tracing, metrics, exporters, validators."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import CompileOptions
from repro import obs
from repro.obs import (
    CompileReport,
    Histogram,
    MetricsRegistry,
    chrome_trace,
    collect,
    diff_snapshots,
    format_diff,
    format_profile,
    jsonl_lines,
    profile_tree,
    trace_nesting_depth,
    validate_chrome_trace,
    validate_jsonl,
    validate_metrics_snapshot,
    write_trace,
)
from repro.service import instrument


class TestSpans:
    def test_noop_without_collector(self):
        # Must not raise, must not record anywhere.
        with instrument.span("orphan"):
            instrument.count("orphan.events")
            instrument.observe("orphan.hist", 1)
            instrument.gauge("orphan.gauge", 2.0)
        assert not instrument.active()
        assert not instrument.tracing()

    def test_nested_collect_blocks(self):
        with collect() as outer:
            with instrument.span("a"):
                pass
            with collect() as inner:
                with instrument.span("b"):
                    pass
            with instrument.span("c"):
                pass
        # Inner sees only what ran inside it; outer sees everything.
        assert set(inner.spans) == {"b"}
        assert set(outer.spans) == {"a", "b", "c"}

    def test_exception_in_span_still_records(self):
        with collect(trace=True) as report:
            with pytest.raises(ValueError):
                with instrument.span("doomed"):
                    time.sleep(0.01)
                    raise ValueError("boom")
        assert report.spans["doomed"].calls == 1
        assert report.spans["doomed"].seconds >= 0.01
        (event,) = report.events
        assert event.attrs["error"] == "ValueError"
        assert event.duration >= 0.01

    def test_parent_child_links(self):
        with collect(trace=True) as report:
            with instrument.span("parent"):
                with instrument.span("child"):
                    with instrument.span("grandchild"):
                        pass
                with instrument.span("child2"):
                    pass
        by_name = {e.name: e for e in report.events}
        assert by_name["parent"].parent is None
        assert by_name["child"].parent == by_name["parent"].id
        assert by_name["grandchild"].parent == by_name["child"].id
        assert by_name["child2"].parent == by_name["parent"].id

    def test_span_attrs_and_annotate(self):
        with collect(trace=True) as report:
            with instrument.span("pass", phase=1) as sp:
                sp.annotate(pieces=7)
                instrument.annotate(late=True)
        (event,) = report.events
        assert event.attrs == {"phase": 1, "pieces": 7, "late": True}

    def test_per_span_counter_deltas(self):
        with collect(trace=True) as report:
            with instrument.span("outer"):
                instrument.count("hits", 2)
                with instrument.span("inner"):
                    instrument.count("hits", 5)
        by_name = {e.name: e for e in report.events}
        # Deltas attribute to the innermost open span only.
        assert by_name["inner"].counters == {"hits": 5}
        assert by_name["outer"].counters == {"hits": 2}
        assert report.counters["hits"] == 7

    def test_thread_isolation(self):
        seen = {}

        def worker():
            with collect() as r:
                with instrument.span("worker_span"):
                    pass
            seen["worker"] = set(r.spans)

        with collect() as main_report:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            with instrument.span("main_span"):
                pass
        assert seen["worker"] == {"worker_span"}
        assert set(main_report.spans) == {"main_span"}

    def test_event_cap_increments_dropped(self):
        with collect(trace=True, max_events=3) as report:
            for _ in range(5):
                with instrument.span("s"):
                    pass
        assert len(report.events) == 3
        assert report.dropped_events == 2
        assert report.spans["s"].calls == 5  # aggregates are uncapped


class TestMergeReport:
    def test_merge_renumbers_and_reparents(self):
        worker = CompileReport(record_events=True)
        with collect(report=worker, trace=True):
            with instrument.span("work"):
                with instrument.span("sub"):
                    pass
        with collect(trace=True) as driver:
            with instrument.span("dispatch"):
                instrument.merge_report(worker)
        by_name = {e.name: e for e in driver.events}
        assert by_name["work"].parent == by_name["dispatch"].id
        assert by_name["sub"].parent == by_name["work"].id
        ids = [e.id for e in driver.events]
        assert len(ids) == len(set(ids))

    def test_merge_rebases_cross_process_times(self):
        worker = CompileReport(record_events=True)
        with collect(report=worker, trace=True):
            with instrument.span("work"):
                pass
        # Pretend the worker's clock is wildly different.
        for e in worker.events:
            e.start += 1e6
        with collect(trace=True) as driver:
            at = time.perf_counter()
            instrument.merge_report(worker, at=at)
        (event,) = driver.events
        # Rebased onto the driver's epoch: starts near `at`, not at 1e6.
        assert 0 <= event.start < 10

    def test_merge_aggregates_counters_and_histograms(self):
        worker = CompileReport()
        worker.add_count("n", 3)
        worker.observe("h", 5, buckets=(1, 10))
        worker.set_gauge("g", 1.5)
        with collect() as driver:
            instrument.count("n", 1)
            instrument.merge_report(worker)
        assert driver.counters["n"] == 4
        assert driver.histograms["h"].count == 1
        assert driver.gauges["g"] == 1.5


class TestHistogram:
    def test_bucketing(self):
        h = Histogram((1, 2, 4))
        for v in (0, 1, 2, 3, 5, 100):
            h.observe(v)
        assert h.count == 6
        d = h.as_dict()
        assert d["bounds"] == [1, 2, 4]
        # <=1: {0,1}; <=2: {2}; <=4: {3}; overflow: {5,100}
        assert d["counts"] == [2, 1, 1, 2]
        assert h.min == 0 and h.max == 100

    def test_merge_requires_same_bounds(self):
        a, b = Histogram((1, 2)), Histogram((1, 2))
        a.observe(1)
        b.observe(5)
        a.merge(b)
        assert a.count == 2
        with pytest.raises(ValueError):
            a.merge(Histogram((1, 3)))

    def test_roundtrip(self):
        h = Histogram((1, 2))
        h.observe(2)
        again = Histogram.from_dict(h.as_dict())
        assert again.as_dict() == h.as_dict()


class TestMetrics:
    def _snapshot(self, value=1.0):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", value)
        reg.observe("h", 3)
        return reg.snapshot()

    def test_snapshot_validates(self):
        snap = self._snapshot()
        assert validate_metrics_snapshot(snap) == []
        # JSON round-trip keeps it valid (schema is what's on disk).
        assert validate_metrics_snapshot(json.loads(json.dumps(snap))) == []

    def test_absorb_report(self):
        report = CompileReport()
        report.add_span("pass_a", 0.5)
        report.add_span("pass_a", 0.25)
        report.add_count("memo.hit", 3)
        report.merge_cache_stats({"disk_hits": 1})
        reg = MetricsRegistry()
        reg.absorb_report(report)
        snap = reg.snapshot()
        assert snap["counters"]["span.pass_a.calls"] == 2
        assert snap["gauges"]["span.pass_a.seconds"] == pytest.approx(0.75)
        assert snap["counters"]["memo.hit"] == 3
        assert snap["counters"]["cache.disk_hits"] == 1

    def test_diff_and_format(self):
        a, b = self._snapshot(1.0), self._snapshot(2.0)
        deltas = {d.name: d for d in diff_snapshots(a, b)}
        assert deltas["g"].delta == pytest.approx(1.0)
        assert deltas["g"].ratio == pytest.approx(2.0)
        text = format_diff(diff_snapshots(a, b))
        assert "g" in text

    def test_bad_snapshots_rejected(self):
        assert validate_metrics_snapshot([]) != []
        assert validate_metrics_snapshot({"schema": "nope/9"}) != []
        bad_hist = self._snapshot()
        bad_hist["histograms"]["h"]["counts"] = [1]
        assert validate_metrics_snapshot(bad_hist) != []


class TestExport:
    def _traced_report(self):
        with collect(trace=True) as report:
            with instrument.span("root", workload="t"):
                instrument.count("k", 2)
                with instrument.span("leaf"):
                    pass
        return report

    def test_chrome_trace_valid(self, tmp_path):
        report = self._traced_report()
        obj = chrome_trace(report)
        assert validate_chrome_trace(obj) == []
        assert trace_nesting_depth(obj) == 2
        path = tmp_path / "t.json"
        write_trace(report, str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_chrome_trace_parent_entry_order(self):
        obj = chrome_trace(self._traced_report())
        names = [e["name"] for e in obj["traceEvents"] if e["ph"] == "X"]
        assert names.index("root") < names.index("leaf")

    def test_jsonl_valid(self, tmp_path):
        report = self._traced_report()
        lines = jsonl_lines(report)
        assert validate_jsonl(lines) == []
        path = tmp_path / "t.jsonl"
        write_trace(report, str(path), format="jsonl")
        assert validate_jsonl(path.read_text().splitlines()) == []

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(self._traced_report(), str(tmp_path / "x"), format="xml")

    def test_profile_tree_math(self):
        with collect(trace=True) as report:
            with instrument.span("root"):
                for _ in range(3):
                    with instrument.span("leaf"):
                        instrument.count("k")
        (root,) = profile_tree(report)
        assert root.name == "root" and root.calls == 1
        leaf = root.children["leaf"]
        assert leaf.calls == 3
        assert leaf.counters == {"k": 3}
        assert root.total == pytest.approx(
            leaf.total + root.self_seconds, abs=1e-9
        )
        text = format_profile([root], wall_seconds=root.total)
        assert "root" in text and "leaf" in text and "covered" in text


class TestPipelineTrace:
    def test_real_compile_trace_depth(self):
        from repro.core import optimize
        from repro.pipelines import IMAGE_PIPELINES

        prog = IMAGE_PIPELINES["harris"].build(128)
        with collect(trace=True) as report:
            optimize(prog, CompileOptions(tile_sizes=(32, 32)))
        obj = chrome_trace(report)
        assert validate_chrome_trace(obj) == []
        assert trace_nesting_depth(obj) >= 4
        names = {e.name for e in report.events}
        # Every pipeline stage shows up in the trace.
        assert {"optimize", "scheduler", "tile_shapes", "footprint"} <= names

    def test_batch_worker_reports_aggregate(self):
        from repro.api import CompileRequest, compile_batch
        from repro.pipelines import conv2d

        prog = conv2d.build({"H": 24, "W": 24, "KH": 3, "KW": 3})
        reqs = [CompileRequest(prog, tile_sizes=(t, t)) for t in (4, 8)]
        with collect(trace=True) as report:
            outs = compile_batch(reqs, options=CompileOptions(mode="thread", jobs=2))
        assert all(o.ok for o in outs)
        # Worker-thread spans made it back into the driver's report...
        assert report.counters.get("driver.worker_reports_merged") == 2
        assert report.spans["optimize"].calls == 2
        # ...and their events hang under the driver's compile_batch span.
        by_id = {e.id: e for e in report.events}
        batch = next(e for e in report.events if e.name == "compile_batch")
        workers = [e for e in report.events if e.name == "compile_worker"]
        assert len(workers) == 2
        assert all(w.parent == batch.id for w in workers)
        for e in report.events:
            if e.parent is not None:
                assert e.parent in by_id


class TestPackage:
    def test_instrument_is_an_alias(self):
        assert instrument.CompileReport is obs.CompileReport
        assert instrument.span is obs.span

    def test_all_exports_resolve(self):
        for name in obs.__all__:
            assert getattr(obs, name) is not None
