"""The learned-autotune stack: dataset, ranker, pruned search, bugfixes.

Covers the :mod:`repro.data` candidate store (schema validation, byte
determinism across ``PYTHONHASHSEED``), the :mod:`repro.learn` ranking
model (fit/rank sanity, pickle schema rejection), the autotuner's
``pruned`` search mode (parity with the exhaustive sweep on every
determinism workload, fallback paths), and regressions for the options /
autotune bugfix sweep (legacy-default mixing, ``top()`` tie-break,
per-dimension live-out bounds).
"""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.data import (
    DATASET_SCHEMA,
    Dataset,
    collection_enabled,
    make_record,
    resolve_dataset,
    validate_record,
)
from repro.learn import (
    FEATURE_NAMES,
    ModelSchemaError,
    RankModel,
    fit_records,
    load_model,
    ranking_features,
    save_model,
)
from repro.learn.features import liveout_extent_bounds
from repro.options import CompileOptions
from repro.scheduler.autotune import (
    TuneResult,
    autotune_tile_sizes,
    default_top_k,
)
from repro.workloads import build_workload
from tests.test_determinism import ALL_WORKLOADS

ROOT = os.path.join(os.path.dirname(__file__), "..")
SRC = os.path.join(ROOT, "src")

CANDS = (4, 8, 16)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DATASET", raising=False)
    monkeypatch.delenv("REPRO_AUTOTUNE_MODEL", raising=False)
    return tmp_path


def _record(**over):
    base = dict(
        fingerprint="f" * 12,
        tile_sizes=(8, 16),
        cost=1.5e-4,
        features={"size_0": 8.0, "size_1": 16.0},
        program="p",
    )
    base.update(over)
    return make_record(**base)


# ---------------------------------------------------------------------------
# dataset


def test_dataset_append_roundtrip(tmp_path):
    ds = Dataset(tmp_path / "d.jsonl")
    assert ds.append([_record(), _record(tile_sizes=(4, 4), cost=2e-4)]) == 2
    records = list(ds)
    assert len(records) == len(ds) == 2
    assert records[0]["schema"] == DATASET_SCHEMA
    assert records[0]["tile_sizes"] == [8, 16]
    assert records[1]["cost"] == pytest.approx(2e-4)
    info = ds.info()
    assert info["records"] == 2
    assert info["invalid_lines"] == 0
    assert info["by_program"] == {"p": 2}


def test_dataset_rejects_invalid_and_skips_corrupt(tmp_path):
    ds = Dataset(tmp_path / "d.jsonl")
    with pytest.raises(ValueError, match="cost"):
        ds.append([_record(cost=-1.0)])
    with pytest.raises(ValueError, match="tile_sizes"):
        ds.append([_record(tile_sizes=())])
    bad = _record()
    bad["schema"] = "repro-autotune-dataset/99"
    with pytest.raises(ValueError, match="schema"):
        ds.append([bad])
    # Corrupt lines on disk are counted and skipped, never fatal.
    ds.append([_record()])
    with open(ds.path, "a", encoding="utf-8") as f:
        f.write("{not json\n")
        f.write(json.dumps({"schema": DATASET_SCHEMA}) + "\n")
    assert len(ds) == 1
    assert ds.info()["invalid_lines"] == 2


def test_validate_record_accepts_make_record():
    assert validate_record(_record()) == []
    assert validate_record(_record(work={"ops": 1.0})) == []
    assert validate_record({"schema": DATASET_SCHEMA}) != []


def test_dataset_bytes_deterministic_across_hash_seeds(tmp_path):
    """The serialized store is byte-identical under PYTHONHASHSEED."""
    script = (
        "import sys\n"
        "from repro.data import Dataset, make_record\n"
        "feats = {'b': 2.0, 'a': 1.0, 'size_0': 8.0}\n"
        "work = {'z': 3.0, 'ops': 9.0}\n"
        "ds = Dataset(sys.argv[1])\n"
        "ds.append([make_record('f'*12, (8, 16), 1.5e-4, feats,\n"
        "                       program='p', work=work),\n"
        "           make_record('g'*12, (4, 4), 2.5e-4, feats)])\n"
    )
    outs = []
    for seed, name in (("0", "a.jsonl"), ("12345", "b.jsonl")):
        path = tmp_path / name
        env = dict(
            os.environ,
            PYTHONHASHSEED=seed,
            PYTHONPATH=SRC,
            REPRO_CACHE_DIR=str(tmp_path),
        )
        subprocess.run(
            [sys.executable, "-c", script, str(path)], env=env, check=True
        )
        outs.append(path.read_bytes())
    assert outs[0] == outs[1]


def test_resolve_dataset_spellings(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_DATASET", raising=False)
    assert resolve_dataset(None) is None  # env off
    assert not collection_enabled()
    assert resolve_dataset(False) is None
    explicit = resolve_dataset(tmp_path / "x.jsonl")
    assert explicit.path == str(tmp_path / "x.jsonl")
    assert resolve_dataset(explicit) is explicit
    monkeypatch.setenv("REPRO_DATASET", "1")
    assert collection_enabled()
    ambient = resolve_dataset(None)
    assert ambient is not None and str(tmp_path) in ambient.path
    monkeypatch.setenv("REPRO_DATASET", str(tmp_path / "y.jsonl"))
    assert resolve_dataset(None).path == str(tmp_path / "y.jsonl")
    monkeypatch.setenv("REPRO_DATASET", "0")
    assert resolve_dataset(None) is None


# ---------------------------------------------------------------------------
# model


def _toy_rows(n=24):
    rows = []
    for i in range(n):
        s0, s1 = 4 << (i % 3), 4 << ((i // 3) % 3)
        feats = {"size_0": float(s0), "size_1": float(s1),
                 "log2_volume": float((s0 * s1).bit_length())}
        rows.append(
            _record(
                fingerprint="f" * 12,
                tile_sizes=(s0, s1),
                cost=1e-4 * (1.0 + 0.01 * (s0 + s1) + 0.3 * (s0 == 16)),
                features=feats,
            )
        )
    return rows


def test_fit_predict_and_coverage():
    model = fit_records(_toy_rows())
    assert model.kind == "stumps"
    assert model.feature_names == FEATURE_NAMES
    assert model.coverage("f" * 12, "cpu") == 9  # deduped grid
    assert model.coverage("unseen", "cpu") == 0
    scores = model.predict(
        [r["features"] for r in _toy_rows(9)], fingerprint="f" * 12
    )
    assert len(scores) == 9
    ridge = fit_records(_toy_rows(), kind="ridge")
    assert ridge.heads[RankModel.GLOBAL]["kind"] == "ridge"
    with pytest.raises(ValueError, match="kind"):
        fit_records(_toy_rows(), kind="forest")
    with pytest.raises(ValueError, match="no dataset records"):
        fit_records([])


def test_model_pickle_schema_rejection(tmp_path):
    model = fit_records(_toy_rows())
    path = save_model(model, str(tmp_path / "m.pkl"))
    loaded = load_model(path)
    assert loaded.kind == model.kind
    assert loaded.rows == model.rows

    payload = model.as_payload()
    payload["schema"] = "repro-ranker/0"
    stale = tmp_path / "stale.pkl"
    stale.write_bytes(pickle.dumps(payload))
    with pytest.raises(ModelSchemaError, match="repro-ranker/1"):
        load_model(str(stale))
    foreign = tmp_path / "foreign.pkl"
    foreign.write_bytes(pickle.dumps({"weights": [1, 2, 3]}))
    with pytest.raises(ModelSchemaError):
        load_model(str(foreign))


# ---------------------------------------------------------------------------
# pruned search


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """Exhaustive sweeps + one model over every determinism workload."""
    tmp = tmp_path_factory.mktemp("learned")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp)
    try:
        dataset = Dataset(tmp / "autotune.jsonl")
        programs, exhaustive = {}, {}
        for name, size in ALL_WORKLOADS:
            prog = build_workload(name, size)
            programs[name] = prog
            exhaustive[name] = autotune_tile_sizes(
                prog, threads=32, candidates=CANDS, dims=2, collect=dataset
            )
        model = fit_records(dataset.records())
        path = save_model(model, str(tmp / "ranker.pkl"))
        yield programs, exhaustive, dataset, model, path
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old


def test_pruned_matches_exhaustive_on_all_workloads(trained):
    programs, exhaustive, _, _, model_path = trained
    for name, _ in ALL_WORKLOADS:
        ex = exhaustive[name]
        pr = autotune_tile_sizes(
            programs[name], threads=32, candidates=CANDS, dims=2,
            search="pruned", model=model_path, top_k=2, collect=False,
        )
        assert pr.search == "pruned", (name, pr.fallback_reason)
        assert pr.fallback_reason is None
        assert pr.best_sizes == ex.best_sizes, name
        assert pr.best_time == ex.best_time, name
        assert len(pr.evaluations) == 2
        assert pr.pruned_out == len(ex.evaluations) - 2
        assert set(pr.model_scores) == set(ex.evaluations)
        # every exactly-evaluated candidate agrees with the exhaustive cost
        for sizes, cost in pr.evaluations.items():
            assert cost == ex.evaluations[sizes], (name, sizes)


def test_dataset_collected_one_record_per_evaluation(trained):
    _, exhaustive, dataset, _, _ = trained
    expected = sum(len(r.evaluations) for r in exhaustive.values())
    records = list(dataset)
    assert len(records) == expected
    sample = records[0]
    assert sample["source"] == "autotune"
    assert sample["schema"] == DATASET_SCHEMA
    assert "work" in sample and sample["work"]["ops"] > 0
    assert set(sample["features"]) <= set(FEATURE_NAMES)


def test_pruned_falls_back_without_model(cache_dir):
    prog = build_workload("unsharp_mask", 128)
    r = autotune_tile_sizes(
        prog, candidates=CANDS, dims=2, search="pruned",
        model=str(cache_dir / "missing.pkl"), collect=False,
    )
    assert r.search == "exhaustive"
    assert r.fallback_reason == "no model available"
    assert len(r.evaluations) == 9


def test_pruned_falls_back_on_thin_coverage(trained, cache_dir):
    model = trained[3]
    prog = build_workload("mvt", 48)  # different size -> unseen fingerprint
    r = autotune_tile_sizes(
        prog, candidates=CANDS, dims=2, search="pruned", model=model,
        collect=False,
    )
    assert r.search == "exhaustive"
    assert "coverage" in r.fallback_reason


def test_pruned_rejects_unknown_search(cache_dir):
    prog = build_workload("mvt", 64)
    with pytest.raises(ValueError, match="search mode"):
        autotune_tile_sizes(prog, search="genetic")


def test_default_top_k():
    assert default_top_k(25) == 3
    assert default_top_k(49) == 6
    assert default_top_k(4) == 2


# ---------------------------------------------------------------------------
# ambient collection (compile_batch + env)


def test_compile_batch_collects_untagged_tiled_requests(cache_dir, monkeypatch):
    from repro.service.driver import CompileRequest, compile_batch

    path = cache_dir / "batch.jsonl"
    monkeypatch.setenv("REPRO_DATASET", str(path))
    prog = build_workload("mvt", 64)
    outs = compile_batch([
            CompileRequest(prog, tile_sizes=(8, 8)),
            CompileRequest(prog, tile_sizes=(8, 8)),  # dedup: one record
            CompileRequest(prog, tile_sizes=(4, 4), tag="autotune"),  # skipped
            CompileRequest(prog),  # untiled: nothing to learn from
        ], options=CompileOptions(mode="serial"))
    assert all(o.ok for o in outs)
    records = list(Dataset(path))
    assert len(records) == 1
    assert records[0]["source"] == "batch"
    assert records[0]["tile_sizes"] == [8, 8]
    assert records[0]["work"]["ops"] > 0


def test_autotune_ambient_env_collection(cache_dir, monkeypatch):
    path = cache_dir / "ambient.jsonl"
    monkeypatch.setenv("REPRO_DATASET", str(path))
    prog = build_workload("mvt", 64)
    r = autotune_tile_sizes(prog, candidates=(4, 8), dims=2)
    # the tuner records its evaluations once; the tagged batch requests
    # inside the sweep are not double-counted by the driver hook
    assert len(Dataset(path)) == len(r.evaluations)


# ---------------------------------------------------------------------------
# bugfix regressions


def test_removed_per_keyword_configuration_rejected(cache_dir):
    """Every retired per-keyword spelling raises the pointed TypeError."""
    from repro.core import optimize
    from repro.service.driver import CompileRequest, cached_optimize, compile_batch

    prog = build_workload("mvt", 64)
    opts = CompileOptions(target="cpu")
    with pytest.raises(TypeError, match="no longer accepts per-keyword"):
        autotune_tile_sizes(prog, target="cpu", options=opts)
    with pytest.raises(TypeError, match="no longer accepts per-keyword"):
        autotune_tile_sizes(prog, mode="serial", options=opts)
    with pytest.raises(TypeError, match="no longer accepts per-keyword"):
        optimize(prog, target="cpu", options=opts)
    with pytest.raises(TypeError, match="no longer accepts per-keyword"):
        optimize(prog, tile_sizes=None, options=opts)
    with pytest.raises(TypeError, match="no longer accepts per-keyword"):
        cached_optimize(prog, startup="smartfuse", options=opts)
    with pytest.raises(TypeError, match="no longer accepts per-keyword"):
        compile_batch([CompileRequest(prog)], mode="auto", options=opts)
    # the options spelling is the one path, defaults included
    result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
    assert result.tile_sizes == (8, 8)


def test_tune_result_top_tie_break_is_insertion_independent():
    a = TuneResult(best_sizes=(4, 4), best_time=1.0)
    b = TuneResult(best_sizes=(4, 4), best_time=1.0)
    a.evaluations = {(8, 8): 2.0, (4, 4): 1.0, (2, 2): 1.0, (16, 16): 2.0}
    b.evaluations = {(16, 16): 2.0, (2, 2): 1.0, (4, 4): 1.0, (8, 8): 2.0}
    assert a.top(4) == b.top(4) == [
        ((2, 2), 1.0), ((4, 4), 1.0), ((8, 8), 2.0), ((16, 16), 2.0)
    ]


def test_per_dimension_bounds_from_minimum_liveout(cache_dir):
    """Out-of-range candidates are skipped and recorded, per dimension."""
    prog = build_workload("doitgen", 16)  # small live-out extents
    bounds = liveout_extent_bounds(prog, 2)
    r = autotune_tile_sizes(prog, candidates=(4, 8, 64, 512), dims=2)
    skipped = {s for s, msg in r.failures.items() if msg.startswith("skipped:")}
    for sizes in skipped:
        assert any(sizes[d] > bounds[d] for d in range(2))
    for sizes in r.evaluations:
        assert all(sizes[d] <= bounds[d] for d in range(2))
    assert skipped, "expected out-of-range candidates on a 16^3 workload"
    # every grid point is accounted for: evaluated, failed, or skipped
    assert len(r.evaluations) + len(r.failures) == 16
    # the best candidate respects the per-dimension bounds
    assert all(r.best_sizes[d] <= bounds[d] for d in range(2))


def test_liveout_extent_bounds_shapes():
    prog = build_workload("unsharp_mask", 128)
    b = liveout_extent_bounds(prog, 2)
    assert len(b) == 2 and all(x > 0 for x in b)
    # rank-1 live-outs fall back to their maximal extent (the historical
    # scalar derivation) instead of crashing on a missing dimension
    atax = build_workload("atax", 64)
    b2 = liveout_extent_bounds(atax, 2)
    assert len(b2) == 2 and all(x > 0 for x in b2)


def test_ranking_features_are_cheap_and_stable():
    prog = build_workload("mvt", 64)
    f1 = ranking_features(prog, (8, 16))
    f2 = ranking_features(prog, (8, 16))
    assert f1 == f2
    assert set(f1) <= set(FEATURE_NAMES)
    assert f1["size_0"] == 8.0 and f1["size_1"] == 16.0
    assert f1["log2_size_prod_01"] == 3.0 * 4.0


# ---------------------------------------------------------------------------
# CLI round trip


def test_cli_data_learn_tune_roundtrip(cache_dir, capsys):
    from repro.__main__ import main

    tune = ["tune", "mvt", "--size", "64", "--candidates", "4", "8", "16"]
    assert main(tune + ["--collect"]) == 0
    capsys.readouterr()

    assert main(["data", "info"]) == 0
    out = capsys.readouterr().out
    assert "records:       9" in out
    assert "mvt" in out

    assert main(["learn", "fit"]) == 0
    out = capsys.readouterr().out
    assert "fitted stumps ranker on 9 records" in out

    assert main(tune + ["--search", "pruned", "--top-k", "2"]) == 0
    out = capsys.readouterr().out
    assert "(pruned)" in out
    assert "pruned:          7 candidates cut" in out

    assert main(["learn", "info"]) == 0
    out = capsys.readouterr().out
    assert "kind:      stumps" in out

    assert main(["data", "export", "--limit", "2"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert len(lines) == 2 and json.loads(lines[0])["schema"] == DATASET_SCHEMA

    assert main(["data", "clear"]) == 0
    assert "removed 9 records" in capsys.readouterr().out
