"""Tests for the start-up scheduler: fusion heuristics, attributes, tiling."""

import pytest

from repro.pipelines import conv2d
from repro.scheduler import (
    HYBRIDFUSE,
    MAXFUSE,
    MINFUSE,
    SMARTFUSE,
    SchedulerError,
    schedule_program,
    tile_band,
    tile_group,
)
from repro.schedule import BandNode, top_level_filters


@pytest.fixture(scope="module")
def prog():
    return conv2d.build({"H": 12, "W": 12, "KH": 3, "KW": 3})


class TestMinfuse:
    def test_one_group_per_statement(self, prog):
        sched = schedule_program(prog, MINFUSE)
        assert [g.statements for g in sched.groups] == [["S0"], ["S1"], ["S2"], ["S3"]]

    def test_pointwise_statement_fully_parallel(self, prog):
        sched = schedule_program(prog, MINFUSE)
        g0 = sched.group_of("S0")
        assert g0.coincident == [True, True]
        assert g0.permutable

    def test_reduction_gets_permutable_prefix_band(self, prog):
        """Pluto-style band splitting: S2's tile band is the (h, w) prefix;
        the reduction loops kh, kw stay nested inside."""
        sched = schedule_program(prog, MINFUSE)
        g2 = sched.group_of("S2")
        # (h, w, kh) is the maximal permutable prefix: the kh self-dep
        # distance is non-negative, while kw's may be negative when kh
        # advances.  The kw loop stays nested inside the band.
        assert g2.depth == 3
        assert g2.coincident == [True, True, False]
        assert g2.permutable


class TestSmartfuse:
    def test_paper_grouping(self, prog):
        """smartfuse must find ({S0}, {S1, S2, S3}) — Fig. 1(b)."""
        sched = schedule_program(prog, SMARTFUSE)
        memberships = [set(g.statements) for g in sched.groups]
        assert {"S0"} in memberships
        assert {"S1", "S2", "S3"} in memberships

    def test_fused_group_keeps_parallelism(self, prog):
        sched = schedule_program(prog, SMARTFUSE)
        g = sched.group_of("S2")
        assert g.depth == 2
        assert g.coincident == [True, True]
        assert g.permutable

    def test_tree_shape(self, prog):
        sched = schedule_program(prog, SMARTFUSE)
        filters = top_level_filters(sched.tree)
        assert len(filters) == 2
        assert filters[0].statements == ("S0",)
        assert set(filters[1].statements) == {"S1", "S2", "S3"}


class TestMaxfuse:
    def test_single_group(self, prog):
        sched = schedule_program(prog, MAXFUSE)
        assert len(sched.groups) == 1
        assert set(sched.groups[0].statements) == {"S0", "S1", "S2", "S3"}

    def test_shifts_restore_legality_but_kill_parallelism(self, prog):
        sched = schedule_program(prog, MAXFUSE)
        g = sched.groups[0]
        # S2 is shifted by the stencil radius relative to S0
        s2_row0 = g.rows["S2"][0]
        assert s2_row0.const == 2  # KH - 1
        assert g.permutable  # shifted distances are non-negative
        assert g.coincident == [False, False]  # ... but no longer coincident

    def test_maxfuse_loses_parallelism_vs_smartfuse(self, prog):
        smart = schedule_program(prog, SMARTFUSE)
        maxf = schedule_program(prog, MAXFUSE)
        assert smart.group_of("S2").n_parallel() == 2
        assert maxf.group_of("S2").n_parallel() == 0


class TestHybridfuse:
    def test_accepts_rectangular(self, prog):
        sched = schedule_program(prog, HYBRIDFUSE)
        assert sched.hybrid_inner

    def test_rejects_triangular_domains(self):
        from repro.ir import ProgramBuilder

        b = ProgramBuilder("tri", params={"N": 8})
        A = b.tensor("A", ("N", "N"))
        i, j = b.iters("i", "j")
        b.assign("S", (i, j), "0 <= i < N and i <= j < N", A[i, j], 1)
        prog = b.build()
        with pytest.raises(SchedulerError):
            schedule_program(prog, HYBRIDFUSE)


class TestTiling:
    def test_tile_band_structure(self, prog):
        sched = schedule_program(prog, SMARTFUSE)
        g = sched.group_of("S2")
        tile = tile_group(sched.tree, g, [4, 4])
        assert tile is not None
        assert tile.tile_sizes == (4, 4)
        point = tile.child
        assert isinstance(point, BandNode)
        assert point.tile_sizes is None
        assert point.n_dims == 2

    def test_tile_band_rejects_non_permutable(self):
        from repro.presburger import LinExpr

        band = BandNode(
            {"S": [LinExpr.var("i")]}, ["b0"], permutable=False
        )
        with pytest.raises(ValueError):
            tile_band(band, [8])

    def test_tile_sizes_validation(self, prog):
        sched = schedule_program(prog, SMARTFUSE)
        filt = top_level_filters(sched.tree)[1]
        band = filt.child
        with pytest.raises(ValueError):
            tile_band(band, [0, 4])
        with pytest.raises(ValueError):
            tile_band(band, [4, 4, 4])
