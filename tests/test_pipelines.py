"""Integration tests: every pipeline builds, optimizes, and (at small
sizes) executes identically to the naive program order."""

import numpy as np
import pytest

from repro import CompileOptions
from repro.codegen.interp import execute_naive, make_store, run_program
from repro.core import optimize
from repro.pipelines import (
    IMAGE_PIPELINES,
    bilateral_grid,
    camera_pipeline,
    equake,
    harris,
    local_laplacian,
    multiscale_interp,
    polybench,
    resnet,
    unsharp_mask,
)


def check_equivalence(prog, tile_sizes, target="cpu"):
    ref_store = make_store(prog)
    execute_naive(prog, ref_store)
    result = optimize(prog, CompileOptions(target=target, tile_sizes=tile_sizes))
    store, _ = run_program(prog, result.tree)
    for tensor in prog.liveout:
        np.testing.assert_allclose(
            store[tensor], ref_store[tensor], rtol=1e-9, atol=1e-12,
            err_msg=f"live-out {tensor} differs for {prog.name}",
        )
    return result


class TestStageCounts:
    """Table I's stage counts must hold exactly."""

    @pytest.mark.parametrize(
        "mod,expected",
        [
            (bilateral_grid, 7),
            (camera_pipeline, 32),
            (harris, 11),
            (local_laplacian, 99),
            (multiscale_interp, 49),
            (unsharp_mask, 4),
        ],
    )
    def test_stage_count(self, mod, expected):
        size = 2048 if mod in (multiscale_interp, local_laplacian) else 256
        prog = mod.build(size)
        assert len(prog.statements) == expected
        assert mod.STAGE_COUNT == expected


class TestImagePipelineCorrectness:
    def test_unsharp_mask(self):
        res = check_equivalence(unsharp_mask.build(24), (4, 8))
        assert len(res.fusion_summary()) == 1  # fully fused

    def test_harris(self):
        res = check_equivalence(harris.build(24), (4, 8))
        assert len(res.fusion_summary()) == 1

    def test_bilateral_grid(self):
        # At miniature sizes the recomputation budget may split the cheap
        # grid-construction stage off; correctness must hold regardless.
        res = check_equivalence(bilateral_grid.build(128), (8, 16))
        assert len(res.fusion_summary()) <= 2

    def test_bilateral_grid_fully_fuses_at_scale(self):
        """With the Table I image size and auto-tuned tiles, the halo work
        amortises and all 7 stages fuse into one cluster."""
        from repro.core import optimize

        prog = bilateral_grid.build(1024)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=bilateral_grid.TILE_SIZES))
        assert len(res.fusion_summary()) == 1

    def test_camera_pipeline(self):
        check_equivalence(camera_pipeline.build(24), (4, 8))

    def test_local_laplacian_small(self):
        prog = local_laplacian.build(48, blocks=2)
        check_equivalence(prog, (4, 8))

    def test_multiscale_interp_small(self):
        prog = multiscale_interp.build(64, levels=2)
        check_equivalence(prog, (4, 8))

    def test_gpu_target_unsharp(self):
        check_equivalence(unsharp_mask.build(24), (4, 8), target="gpu")


class TestPartitions:
    @pytest.mark.parametrize("name", sorted(IMAGE_PIPELINES))
    def test_partitions_cover_program(self, name):
        mod = IMAGE_PIPELINES[name]
        size = 2048 if name in ("multiscale_interp", "local_laplacian") else 256
        prog = mod.build(size)
        for partition_fn in (mod.halide_partition, mod.polymage_partition):
            partition = partition_fn(prog)
            flat = [s for part in partition for s in part]
            assert sorted(flat) == sorted(prog.statement_names)


class TestEquake:
    def test_partitions_cover(self):
        prog = equake.build(n=64)
        for part in equake.PARTITIONS.values():
            flat = [s for p in part for s in p]
            assert sorted(flat) == sorted(prog.statement_names)

    def test_correctness(self):
        check_equivalence(equake.build(n=64), None)

    def test_our_pass_fuses_the_follow_up_nests(self):
        prog = equake.build(n=64)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=None))
        # everything lands in one cluster: at least as aggressive as the
        # maxfuse grouping the paper reports
        assert len(res.fusion_summary()) == 1


class TestPolyBench:
    def test_2mm_correct(self):
        prog = polybench.build_2mm(12)
        check_equivalence(prog, (4, 4))

    def test_2mm_no_redundant_fusion_at_scale(self):
        """At realistic sizes the first matmul must NOT fuse into the
        second's tiles: each D tile would recompute whole rows of tmp —
        the redundancy the paper's fusion strategy never introduces."""
        prog = polybench.build_2mm(512)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(32, 32)))
        assert len(res.fusion_summary()) == 2

    def test_2mm_matches_numpy(self):
        prog = polybench.build_2mm(10)
        store = make_store(prog)
        execute_naive(prog, store)
        A, B, C, D0 = (store[t] for t in ("A", "B", "C", "D0"))
        expected = (A @ B * 1.5) @ C + 0.0
        np.testing.assert_allclose(store["tmp"], A @ B * 1.5)
        np.testing.assert_allclose(store["D"], D0 * 1.2 + store["tmp"] @ C)

    def test_gemver_correct(self):
        check_equivalence(polybench.build_gemver(12), (4, 4))

    def test_gemver_shared_space_not_fused(self):
        """A2 is read by both live-out chains with full overlap: Algorithm 3
        must keep it unfused (no recomputation, ever)."""
        prog = polybench.build_gemver(12)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        summaries = res.fusion_summary()
        sa_cluster = [c for c in summaries if "Sa" in c]
        assert sa_cluster and sa_cluster[0] == ["Sa"]

    def test_covariance_correct(self):
        check_equivalence(polybench.build_covariance(12), (4, 4))

    def test_covariance_matches_numpy(self):
        prog = polybench.build_covariance(8)
        store = make_store(prog)
        execute_naive(prog, store)
        data = store["data"]
        m = data.shape[0]
        mean = data.mean(axis=0)
        centered = data - mean
        cov = centered.T @ centered / (m - 1)
        got = store["cov"]
        for i in range(8):
            for j in range(i, 8):
                assert got[i, j] == pytest.approx(cov[i, j])


class TestResNet:
    def test_layer_count(self):
        assert len(resnet.resnet50_layers()) == 53

    def test_layer_shapes_flow(self):
        layers = resnet.resnet50_layers()
        assert layers[0].name == "conv1"
        assert layers[-1].c_out == 2048
        assert layers[-1].h == 7

    def test_operator_pair_correct(self):
        prog = resnet.build_operator_pair(12, 12)
        res = check_equivalence(prog, (4, 4))
        assert len(res.fusion_summary()) == 1
