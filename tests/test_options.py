"""CompileOptions: one validation path for every compile entry point."""

from __future__ import annotations

import pytest

from repro.api import (
    CompileOptions,
    CompileRequest,
    autotune_tile_sizes,
    cached_optimize,
    compile_batch,
    optimize,
)
from repro.core.tile_shapes import CPU, GPU
from repro.pipelines import conv2d
from repro.service import CompileCache


def build_conv(s: int = 32):
    return conv2d.build({"H": s, "W": s, "KH": 3, "KW": 3})


class TestValidation:
    def test_target_name_resolves_to_spec(self):
        assert CompileOptions(target="gpu").target is GPU
        assert CompileOptions().target is CPU

    def test_target_spec_passes_through(self):
        assert CompileOptions(target=CPU).target is CPU

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown target"):
            CompileOptions(target="tpu")
        with pytest.raises(TypeError):
            CompileOptions(target=42)

    def test_tile_sizes_coerced_to_tuple(self):
        assert CompileOptions(tile_sizes=[32, 16]).tile_sizes == (32, 16)
        assert CompileOptions().tile_sizes is None

    def test_bad_tile_sizes_rejected(self):
        for bad in ((0, 4), (-1,), ()):
            with pytest.raises(ValueError):
                CompileOptions(tile_sizes=bad)

    def test_startup_mode_jobs_validated(self):
        with pytest.raises(ValueError, match="heuristic"):
            CompileOptions(startup="nofuse")
        with pytest.raises(ValueError, match="mode"):
            CompileOptions(mode="warp")
        with pytest.raises(ValueError, match="jobs"):
            CompileOptions(jobs=0)

    def test_replace_revalidates(self):
        o = CompileOptions(tile_sizes=(8, 8))
        assert o.replace(target="gpu").target is GPU
        with pytest.raises(ValueError):
            o.replace(mode="bogus")

    def test_frozen(self):
        with pytest.raises(Exception):
            CompileOptions().target = "gpu"

    def test_hashable_and_equal(self):
        a = CompileOptions(target="cpu", tile_sizes=[8, 8])
        b = CompileOptions(target=CPU, tile_sizes=(8, 8))
        assert a == b and hash(a) == hash(b)


class TestCacheSpelling:
    def test_cache_object_passes_through(self, tmp_path):
        cache = CompileCache(cache_dir=str(tmp_path))
        assert CompileOptions(cache=cache).cache is cache

    def test_cache_path_resolves_to_cache(self, tmp_path):
        o = CompileOptions(cache=str(tmp_path / "c"))
        assert isinstance(o.cache, CompileCache)
        assert o.cache.cache_dir == str(tmp_path / "c")

    def test_cache_pathlike_resolves(self, tmp_path):
        o = CompileOptions(cache=tmp_path / "c")
        assert isinstance(o.cache, CompileCache)
        assert o.cache.cache_dir == str(tmp_path / "c")

    def test_cache_default_spelling(self, monkeypatch, tmp_path):
        from repro.service.cache import reset_default_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_default_cache()
        try:
            o = CompileOptions(cache="default")
            assert isinstance(o.cache, CompileCache)
            assert o.cache.cache_dir == str(tmp_path)
        finally:
            reset_default_cache()

    def test_cache_bare_name_is_namespaced(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        o = CompileOptions(cache="mycache")
        assert isinstance(o.cache, CompileCache)
        assert o.cache.cache_dir == str(tmp_path / "named" / "mycache")

    def test_cache_tilde_expanded(self, monkeypatch, tmp_path):
        monkeypatch.setenv("HOME", str(tmp_path))
        o = CompileOptions(cache="~/caches/x")
        assert o.cache.cache_dir == str(tmp_path / "caches" / "x")

    def test_cached_optimize_with_path_cache(self, tmp_path):
        p = build_conv()
        o = CompileOptions(tile_sizes=(8, 8), cache=str(tmp_path / "cc"))
        r1 = cached_optimize(p, options=o)
        r2 = cached_optimize(p, options=o)
        assert o.cache.stats.hits >= 1
        assert r1.fusion_summary() == r2.fusion_summary()


class TestEntryPoints:
    def test_optimize_positional_options(self):
        p = build_conv()
        r1 = optimize(p, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        r2 = optimize(p, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        assert r1.fusion_summary() == r2.fusion_summary()
        assert r1.tile_sizes == r2.tile_sizes == (8, 8)

    def test_optimize_rejects_removed_kwargs(self):
        p = build_conv()
        with pytest.raises(TypeError, match="no longer accepts per-keyword"):
            optimize(p, target="cpu", tile_sizes=(8, 8))
        with pytest.raises(TypeError, match="no longer accepts per-keyword"):
            optimize(p, CompileOptions(), startup="smartfuse")
        with pytest.raises(TypeError):
            optimize(p, CompileOptions(), options=CompileOptions())

    def test_optimize_reports_effective_sizes(self):
        p = build_conv()
        # No sizes requested: the pass still tiles with unit tiles over the
        # protected parallel dims, and the result reports what it used.
        r = optimize(p)
        assert r.tile_sizes is not None
        assert all(s == 1 for s in r.tile_sizes)
        # Requested sizes are clipped to the band depth before reporting.
        deep = optimize(p, CompileOptions(tile_sizes=(8, 8, 8, 8, 8, 8)))
        assert deep.tile_sizes is not None
        assert len(deep.tile_sizes) <= 6

    def test_compile_batch_options(self, tmp_path):
        p = build_conv()
        reqs = [CompileRequest(p, tile_sizes=(t, t)) for t in (4, 8)]
        outs = compile_batch(reqs, options=CompileOptions(mode="serial"))
        assert all(o.ok for o in outs)
        with pytest.raises(TypeError, match="no longer accepts per-keyword"):
            compile_batch(reqs, mode="serial", options=CompileOptions())

    def test_cached_optimize_options(self, tmp_path):
        p = build_conv()
        cache = CompileCache(cache_dir=tmp_path)
        o = CompileOptions(tile_sizes=(8, 8), cache=cache)
        r1 = cached_optimize(p, options=o)
        r2 = cached_optimize(p, options=o)
        assert cache.stats.hits >= 1
        assert r1.fusion_summary() == r2.fusion_summary()

    def test_autotune_options_match_legacy(self):
        p = build_conv()
        legacy = autotune_tile_sizes(p, options=CompileOptions(target="cpu", mode="serial"), candidates=(4, 8), dims=2)
        opt = autotune_tile_sizes(
            p, candidates=(4, 8), dims=2,
            options=CompileOptions(target="cpu", mode="serial"),
        )
        assert legacy.best_sizes == opt.best_sizes
        assert legacy.evaluations == opt.evaluations

    def test_autotune_rejects_removed_kwargs(self):
        p = build_conv()
        with pytest.raises(TypeError, match="no longer accepts per-keyword"):
            autotune_tile_sizes(
                p, target="gpu", options=CompileOptions(target="gpu")
            )
        with pytest.raises(TypeError, match="no longer accepts per-keyword"):
            autotune_tile_sizes(p, mode="serial")
