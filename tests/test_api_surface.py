"""The redesigned ``repro.api`` surface: one importable stable module."""

import repro
import repro.api as api


def test_api_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_api_covers_downstream_consumers():
    """Every name benchmarks, the CLI and serve pull from the public
    surface is re-exported by ``repro.api``."""
    needed = {
        # compile path
        "CompileOptions", "OptimizeResult", "optimize",
        # service layer (benchmarks, serve worker functions)
        "CompileCache", "CompileOutcome", "CompileRequest",
        "cached_optimize", "compile_batch", "default_cache", "resolve_cache",
        # autotuning (CLI tune, bench_autotune)
        "TuneResult", "autotune_tile_sizes",
        # partitioning (CLI partition, serve partition verb)
        "PartitionOptions", "PartitionedSchedule",
        "execute_partitioned", "partition_pipeline",
        # target/transfer specs the partitioner is parameterized over
        "TARGETS", "TargetSpec",
        "DEFAULT_TRANSFER", "PCIE_TRANSFER", "TransferSpec",
        # workload registry (benchmarks' subprocess scripts, CLI)
        "default_tile_sizes", "get_workload", "workload_names",
        # IR construction
        "Program", "ProgramBuilder", "Tensor",
    }
    missing = needed - set(api.__all__)
    assert not missing, f"repro.api.__all__ is missing {sorted(missing)}"


def test_root_reexports_match_api():
    """The package root re-exports the high-traffic subset, same objects."""
    for name in ("CompileOptions", "PartitionOptions", "Program",
                 "ProgramBuilder", "optimize", "partition_pipeline"):
        assert getattr(repro, name) is getattr(api, name), name


def test_get_workload_spelling():
    prog = api.get_workload("conv2d", 16)
    assert prog.name == "conv2d"
    assert "camera_resnet" in api.workload_names()
    assert "edge_infer" in api.workload_names()
