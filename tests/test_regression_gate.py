"""The perf-regression gate, driven with synthetic snapshots."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.obs import MetricsRegistry

_GATE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "check_regression.py"
)


def _load_gate():
    spec = importlib.util.spec_from_file_location("check_regression", _GATE_PATH)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


gate = _load_gate()


def make_snapshot(path, gauges):
    reg = MetricsRegistry()
    for name, value in gauges.items():
        reg.set_gauge(name, value)
    path.write_text(json.dumps(reg.snapshot()))
    return str(path)


@pytest.fixture()
def snapshots(tmp_path):
    def build(baseline, current):
        return (
            make_snapshot(tmp_path / "baseline.json", baseline),
            make_snapshot(tmp_path / "current.json", current),
        )

    return build


class TestGateExitCodes:
    def test_2x_slowdown_fails(self, snapshots, capsys):
        base, cur = snapshots({"bench.seconds": 0.1}, {"bench.seconds": 0.2})
        rc = gate.main(["--baseline", base, "--current", cur])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "bench.seconds" in out

    def test_within_tolerance_passes(self, snapshots, capsys):
        base, cur = snapshots({"bench.seconds": 0.1}, {"bench.seconds": 0.12})
        rc = gate.main(["--baseline", base, "--current", cur])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_report_only_never_fails(self, snapshots, capsys):
        base, cur = snapshots({"bench.seconds": 0.1}, {"bench.seconds": 0.5})
        rc = gate.main(["--baseline", base, "--current", cur, "--report-only"])
        assert rc == 0
        assert "[report-only]" in capsys.readouterr().out

    def test_malformed_snapshot_is_usage_error(self, tmp_path, snapshots, capsys):
        base, cur = snapshots({"bench.seconds": 0.1}, {"bench.seconds": 0.1})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert gate.main(["--baseline", str(bad), "--current", cur]) == 2
        bad.write_text(json.dumps({"schema": "other/1"}))
        assert gate.main(["--baseline", str(bad), "--current", cur]) == 2
        missing = str(tmp_path / "absent.json")
        assert gate.main(["--baseline", base, "--current", missing]) == 2

    def test_bad_tolerance_flags(self, snapshots):
        base, cur = snapshots({"a": 0.1}, {"a": 0.1})
        args = ["--baseline", base, "--current", cur]
        assert gate.main(args + ["--tolerance", "-1"]) == 2
        assert gate.main(args + ["--metric-tolerance", "nonsense"]) == 2
        assert gate.main(args + ["--metric-tolerance", "a=zero"]) == 2


class TestGatePolicy:
    def test_per_metric_override(self, snapshots):
        base, cur = snapshots({"slow.op": 0.1}, {"slow.op": 0.25})
        args = ["--baseline", base, "--current", cur]
        assert gate.main(args) == 1
        assert gate.main(args + ["--metric-tolerance", "slow.op=3.0"]) == 0

    def test_noise_floor_suppresses_tiny_baselines(self, snapshots, capsys):
        # A 100x blowup on a 10µs baseline is timer jitter, not a regression.
        base, cur = snapshots({"tiny.op": 1e-5}, {"tiny.op": 1e-3})
        rc = gate.main(["--baseline", base, "--current", cur])
        assert rc == 0
        assert "noise" in capsys.readouterr().out

    def test_new_and_removed_metrics_never_fail(self, snapshots, capsys):
        base, cur = snapshots({"old.op": 0.1}, {"new.op": 0.1})
        rc = gate.main(["--baseline", base, "--current", cur])
        assert rc == 0
        out = capsys.readouterr().out
        assert "new " in out and "removed" in out

    def test_compare_ignores_counters(self):
        baseline = {"gauges": {"a": 0.1}, "counters": {"n": 10}}
        current = {"gauges": {"a": 0.1}, "counters": {"n": 1000}}
        regressions, _ = gate.compare(baseline, current)
        assert regressions == []


class TestRealBaseline:
    def test_committed_baseline_is_valid(self):
        path = os.path.join(
            os.path.dirname(_GATE_PATH), "results", "perf_baseline.json"
        )
        snap = gate.load_snapshot(path)
        assert snap["gauges"], "baseline must carry timing gauges"

    def test_baseline_compares_clean_against_itself(self):
        path = os.path.join(
            os.path.dirname(_GATE_PATH), "results", "perf_baseline.json"
        )
        snap = gate.load_snapshot(path)
        regressions, _ = gate.compare(snap, snap)
        assert regressions == []
