"""Heterogeneous cpu/gpu/npu partitioning: the tentpole contract.

Three fronts:

* **Degeneracy** — ``partition_pipeline(targets=["cpu"])`` must be a plain
  compile wearing a different coat: same schedule tree, same generated C,
  same compile-cache fingerprint as ``optimize(target="cpu")``, for every
  benchmark workload.  The single-partition path reuses the original
  :class:`~repro.ir.Program` object, so nothing can drift.
* **Mixed beats single** — on the engineered ``camera_resnet`` and
  ``edge_infer`` pipelines the beam picks a genuinely heterogeneous
  assignment whose modeled cost beats every *legal* single-target compile
  (the NPU is illegal outright: both pipelines open with an in-place
  quantisation stage Davinci cores cannot express).
* **Host-glue parity** — :func:`~repro.partition.execute_partitioned`
  staging tensors across per-partition device stores is bit-identical
  to running the whole pipeline on one target.
"""

import numpy as np
import pytest

from repro import CompileOptions, PartitionOptions, partition_pipeline
from repro.codegen import print_tree, run_program
from repro.codegen.cbackend import generate_c
from repro.core import optimize
from repro.partition import execute_partitioned
from repro.service import cached_optimize, fingerprint_request
from repro.service.cache import CompileCache
from repro.workloads import build_workload, default_tile_sizes
from tests.test_determinism import ALL_WORKLOADS

#: Small builds for interpreter-parity runs (full-size takes minutes).
SMALL = 40
SMALL_K = 5


def _small(name):
    from repro.pipelines.mixed import MIXED_BUILDERS

    return MIXED_BUILDERS[name](SMALL, k=SMALL_K)


# -- options and validation ------------------------------------------------


def test_partition_options_normalizes_targets():
    o = PartitionOptions(targets=("gpu", "cpu", "gpu"))
    assert o.target_names == ("gpu", "cpu")
    with pytest.raises(ValueError, match="unknown target"):
        PartitionOptions(targets=("tpu",))
    with pytest.raises(ValueError, match="at least one"):
        PartitionOptions(targets=())


def test_partition_rejects_removed_kwargs():
    prog = build_workload("conv2d", 32)
    with pytest.raises(TypeError, match="no longer accepts per-keyword"):
        partition_pipeline(prog, target="cpu")
    with pytest.raises(TypeError, match="no longer accepts per-keyword"):
        partition_pipeline(prog, tile_sizes=(8, 8))
    with pytest.raises(TypeError, match="PartitionOptions"):
        partition_pipeline(prog, options=CompileOptions())


def test_explicit_assignment_validation():
    prog = _small("camera_resnet")
    with pytest.raises(ValueError, match="misses statements"):
        partition_pipeline(
            prog, targets=("cpu", "gpu"), assignment={"Squant": "cpu"}
        )
    with pytest.raises(ValueError, match="candidate"):
        partition_pipeline(
            prog,
            targets=("cpu",),
            assignment={s.name: "gpu" for s in prog.statements},
        )
    # the in-place quantisation stage cannot run on the NPU
    bad = {s.name: "npu" for s in prog.statements}
    with pytest.raises(ValueError, match="npu"):
        partition_pipeline(prog, targets=("cpu", "npu"), assignment=bad)


# -- degeneracy ------------------------------------------------------------


@pytest.mark.parametrize("name,size", ALL_WORKLOADS)
def test_single_target_partition_is_a_plain_compile(name, size):
    prog = build_workload(name, size)
    tiles = default_tile_sizes(name)
    sched = partition_pipeline(
        prog, PartitionOptions(targets=("cpu",), tile_sizes=tiles)
    )
    assert sched.is_degenerate
    assert sched.targets_used == ("cpu",)
    assert sched.cuts == []
    (part,) = sched.partitions
    assert part.program is prog  # the original object, not a clone

    ref = optimize(prog, CompileOptions(target="cpu", tile_sizes=tiles))
    assert print_tree(part.result.tree, prog) == print_tree(ref.tree, prog)
    assert generate_c(part.result.tree, prog) == generate_c(ref.tree, prog)
    assert part.fingerprint == fingerprint_request(prog, "cpu", tiles)


def test_degenerate_partition_shares_the_compile_cache(tmp_path):
    prog = build_workload("conv2d", 48)
    cache = CompileCache(cache_dir=str(tmp_path))
    cached_optimize(
        prog, options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache)
    )
    assert cache.stats.misses == 1
    sched = partition_pipeline(
        prog,
        PartitionOptions(targets=("cpu",), tile_sizes=(16, 16), cache=cache),
    )
    # the partition compile answered from the warm entry — same key
    assert cache.stats.hits >= 1
    assert sched.partitions[0].fingerprint == fingerprint_request(
        prog, "cpu", (16, 16)
    )


def test_degenerate_execution_matches_plain_run():
    prog = build_workload("conv2d", 32)
    sched = partition_pipeline(
        prog, PartitionOptions(targets=("cpu",), tile_sizes=(8, 8))
    )
    host, counts, transfers = execute_partitioned(sched, seed=3)
    assert transfers == []
    ref_store, ref_counts = run_program(
        prog,
        optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8))).tree,
        seed=3,
    )
    assert counts == ref_counts
    for t in prog.tensors:
        assert np.array_equal(host[t], ref_store[t]), t


# -- mixed beats single ----------------------------------------------------


@pytest.mark.parametrize("name", ["camera_resnet", "edge_infer"])
def test_mixed_assignment_beats_every_single_target(name):
    prog = build_workload(name)  # full size: the regime the beam is for
    sched = partition_pipeline(
        prog, PartitionOptions(tile_sizes=default_tile_sizes(name))
    )
    assert not sched.is_degenerate
    assert len(sched.targets_used) >= 2
    assert sched.cuts, "a heterogeneous schedule must cross at least one edge"
    mixed = sched.modeled["mixed"]
    single = sched.modeled["single"]
    assert mixed["total_seconds"] == pytest.approx(
        mixed["compute_seconds"] + mixed["transfer_seconds"]
    )
    assert single["npu"] is None  # in-place stage: no legal all-NPU compile
    for target, seconds in single.items():
        if seconds is not None:
            assert mixed["total_seconds"] < seconds, target
    # cut edges carry exact footprints priced by the transfer model
    for cut in sched.cuts:
        assert cut.nbytes > 0 and cut.seconds > 0
        assert cut.src_target != cut.dst_target


def test_summary_is_jsonable():
    import json

    sched = partition_pipeline(
        _small("edge_infer"), PartitionOptions(tile_sizes=(8, 8))
    )
    text = json.dumps(sched.summary())
    assert "assignment" in text and "modeled" in text


# -- host-glue parity ------------------------------------------------------

FORCED = {
    "camera_resnet": {
        "Squant": "gpu",
        "Sconv1_init": "npu",
        "Sconv1": "npu",
        "Sbn1": "npu",
        "Sconv2_init": "npu",
        "Sconv2": "npu",
        "Sbn2": "cpu",
    },
    "edge_infer": {
        "Snorm": "cpu",
        "Sbox": "gpu",
        "Sconv_init": "npu",
        "Sconv": "npu",
        "Srelu": "gpu",
    },
}


@pytest.mark.parametrize("name", ["camera_resnet", "edge_infer"])
def test_multi_target_execution_is_bit_identical(name):
    prog = _small(name)
    sched = partition_pipeline(
        prog,
        PartitionOptions(tile_sizes=(8, 8)),
        assignment=FORCED[name],
    )
    assert len(sched.partitions) >= 3
    host, counts, transfers = execute_partitioned(sched, seed=7)
    assert transfers  # data really moved between device stores
    assert sum(counts.values()) > 0

    ref = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
    ref_store, _ = run_program(prog, ref.tree, seed=7)
    for t in prog.tensors:
        assert np.array_equal(host[t], ref_store[t]), t


def test_transfer_records_match_cut_edges():
    prog = _small("edge_infer")
    sched = partition_pipeline(
        prog, PartitionOptions(tile_sizes=(8, 8)), assignment=FORCED["edge_infer"]
    )
    _, _, transfers = execute_partitioned(sched)
    moved = {r.tensor for r in transfers}
    for cut in sched.cuts:
        assert cut.tensor in moved
    for r in transfers:
        assert r.nbytes > 0
