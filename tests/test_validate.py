"""Tests for the schedule legality validator."""

import pytest

from repro import CompileOptions
from repro.core import optimize
from repro.core.validate import validate_tree
from repro.pipelines import conv2d, harris, polybench, unsharp_mask
from repro.schedule import initial_tree, top_level_filters
from repro.scheduler import MAXFUSE, MINFUSE, SMARTFUSE, schedule_program

PARAMS = {"H": 10, "W": 10, "KH": 3, "KW": 3}


class TestLegalSchedules:
    def test_initial_tree_is_legal(self):
        prog = conv2d.build(PARAMS)
        report = validate_tree(initial_tree(prog), prog)
        assert report.ok, str(report)
        assert report.checked_pairs > 0

    @pytest.mark.parametrize("heuristic", [MINFUSE, SMARTFUSE, MAXFUSE])
    def test_heuristic_trees_are_legal(self, heuristic):
        prog = conv2d.build(PARAMS)
        sched = schedule_program(prog, heuristic)
        assert validate_tree(sched.tree, prog).ok

    def test_post_tiling_fusion_is_legal(self):
        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        report = validate_tree(res.tree, prog)
        assert report.ok, str(report)

    def test_deep_pipeline_fusion_is_legal(self):
        prog = unsharp_mask.build(20)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        assert validate_tree(res.tree, prog).ok

    def test_diamond_pipeline_is_legal(self):
        prog = harris.build(16)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        report = validate_tree(res.tree, prog)
        assert report.ok, str(report)

    def test_multi_liveout_is_legal(self):
        prog = polybench.build_gemver(8)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        assert validate_tree(res.tree, prog).ok


class TestIllegalSchedules:
    def test_reversed_sequence_is_caught(self):
        """Swapping the producer and consumer filters must be flagged."""
        prog = conv2d.build(PARAMS)
        tree = initial_tree(prog)
        seq = tree.child
        seq.filters.reverse()  # S3 before S2 before S1 before S0
        report = validate_tree(tree, prog)
        assert not report.ok
        kinds = {(v.dep.source, v.dep.target) for v in report.violations}
        assert ("S0", "S2") in kinds or ("S1", "S2") in kinds

    def test_skipped_producer_without_extension_is_caught(self):
        """Marking a producer 'skipped' with no extension replacement means
        its values never materialise."""
        from repro.schedule import mark_skipped

        prog = conv2d.build(PARAMS)
        tree = initial_tree(prog)
        mark_skipped(top_level_filters(tree)[0])  # drop S0 entirely
        report = validate_tree(tree, prog)
        assert not report.ok
        assert any(
            "never executes" in v.reason for v in report.violations
        )
