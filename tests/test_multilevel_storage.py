"""Tests for multi-level tiling and the storage-reduction report."""

import numpy as np
import pytest

from repro import CompileOptions
from repro.codegen import execute_naive, make_store, run_program
from repro.codegen.promotion import storage_reduction
from repro.core import optimize
from repro.pipelines import conv2d, unsharp_mask
from repro.schedule import BandNode
from repro.scheduler import (
    SMARTFUSE,
    schedule_program,
    tile_band_multilevel,
    tile_group_multilevel,
)

PARAMS = {"H": 18, "W": 18, "KH": 3, "KW": 3}


class TestMultiLevelTiling:
    def test_structure(self):
        prog = conv2d.build(PARAMS)
        sched = schedule_program(prog, SMARTFUSE)
        g = sched.group_of("S2")
        top = tile_group_multilevel(sched.tree, g, [(8, 8), (2, 2)])
        assert top is not None
        bands = []
        node = top
        while isinstance(node, BandNode):
            bands.append(node)
            node = node.child
        assert [b.tile_sizes for b in bands[:2]] == [(8, 8), (2, 2)]
        assert bands[2].tile_sizes is None  # the point band

    def test_execution_matches_naive(self):
        prog = conv2d.build(PARAMS)
        ref = make_store(prog)
        execute_naive(prog, ref)
        sched = schedule_program(prog, SMARTFUSE)
        g = sched.group_of("S2")
        tile_group_multilevel(sched.tree, g, [(8, 8), (2, 2)])
        store, _ = run_program(prog, sched.tree)
        np.testing.assert_allclose(store["C"], ref["C"])

    def test_inner_must_be_smaller(self):
        prog = conv2d.build(PARAMS)
        sched = schedule_program(prog, SMARTFUSE)
        g = sched.group_of("S2")
        band = None
        from repro.schedule import top_level_filters

        for filt in top_level_filters(sched.tree):
            if "S2" in filt.statements:
                band = filt.child
        with pytest.raises(ValueError):
            tile_band_multilevel(band, [(4, 4), (8, 8)])

    def test_empty_levels_rejected(self):
        prog = conv2d.build(PARAMS)
        sched = schedule_program(prog, SMARTFUSE)
        from repro.schedule import top_level_filters

        band = top_level_filters(sched.tree)[1].child
        with pytest.raises(ValueError):
            tile_band_multilevel(band, [])


class TestStorageReduction:
    def test_conv2d_quantised_input(self):
        prog = conv2d.build({"H": 64, "W": 64, "KH": 3, "KW": 3})
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        (red,) = storage_reduction(res)
        assert red.tensor == "A"
        assert red.full_bytes == 64 * 64 * 8
        assert red.per_tile_bytes == 10 * 10 * 8
        assert red.factor == pytest.approx(64 * 64 / 100)

    def test_factor_grows_with_image(self):
        small = optimize(conv2d.build({"H": 32, "W": 32}), CompileOptions(target="cpu", tile_sizes=(8, 8)))
        big = optimize(conv2d.build({"H": 128, "W": 128}), CompileOptions(target="cpu", tile_sizes=(8, 8)))
        (rs,) = storage_reduction(small)
        (rb,) = storage_reduction(big)
        assert rb.factor > rs.factor

    def test_unsharp_reduces_blur_storage(self):
        prog = unsharp_mask.build(128)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 16)))
        reds = {r.tensor: r for r in storage_reduction(res)}
        assert "t_blurx" in reds
        assert reds["t_blurx"].factor > 10
