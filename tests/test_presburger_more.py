"""Additional presburger coverage: parser, unions, hulls, enumeration."""

import pytest

from repro.presburger import (
    EnumerationError,
    ParseError,
    enumerate_points,
    enumerate_set_points,
    parse_map,
    parse_set,
    parse_union_map,
    parse_union_set,
)


class TestParser:
    def test_params_prologue(self):
        s = parse_set("[N, M] -> { S[i] : 0 <= i < N + M }")
        assert s.space.params == ("N", "M")

    def test_or_produces_union(self):
        s = parse_set("{ S[i] : 0 <= i < 2 or 5 <= i < 7 }")
        assert len(s.pieces) == 2
        assert s.count_points() == 4

    def test_chained_comparisons(self):
        s = parse_set("{ S[i, j] : 0 <= i <= j < 4 }")
        assert s.count_points() == 10  # triangular

    def test_negative_and_scaled_terms(self):
        s = parse_set("{ S[i] : -2 <= 3*i - 4 <= 2 }")
        assert s.count_points() == 2  # i in {1, 2}

    def test_map_with_expression_range(self):
        m = parse_map("{ S[i, j] -> A[2*i + 1, j - 1] }")
        img = m.image_of_point({"i": 3, "j": 5})
        pt = img.sample()
        vals = sorted(pt.values())
        assert vals == [4, 7]

    def test_union_set_multiple_tuples(self):
        us = parse_union_set("{ S[i] : 0 <= i < 2 ; T[a, b] : a = b and 0 <= a < 3 }")
        assert set(us.names()) == {"S", "T"}
        assert us["T"].count_points() == 3

    def test_union_map(self):
        um = parse_union_map(
            "{ S[i] -> A[i] : 0 <= i < 4 ; S[i] -> B[i + 1] : 0 <= i < 4 }"
        )
        assert set(um.keys()) == {("S", "A"), ("S", "B")}

    def test_parse_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_set("{ S[i] : i ** 2 }")
        with pytest.raises(ParseError):
            parse_set("{ S[i] : i * j }")  # non-linear

    def test_same_tuple_merged(self):
        s = parse_set("{ S[i] : 0 <= i < 2 ; S[j] : 4 <= j < 6 }")
        assert s.count_points() == 4


class TestUnionAlgebra:
    def test_apply_to_union_set(self):
        um = parse_union_map("{ S[i] -> A[i + 1] : 0 <= i < 3 }")
        us = parse_union_set("{ S[i] : 0 <= i < 3 }")
        image = um.apply_to_set(us)
        assert image["A"].count_points() == 3

    def test_union_map_compose(self):
        f = parse_union_map("{ S[i] -> T[2*i] : 0 <= i < 4 }")
        g = parse_union_map("{ T[j] -> U[j + 1] }")
        h = f.apply_range(g)
        assert set(h.keys()) == {("S", "U")}
        img = h[("S", "U")].image_of_point({"i": 3})
        (dim,) = img.space.dims
        assert img.sample()[dim] == 7

    def test_union_subtract_and_subset(self):
        a = parse_union_set("{ S[i] : 0 <= i < 10 }")
        b = parse_union_set("{ S[i] : 0 <= i < 4 }")
        assert b.is_subset(a)
        assert not a.is_subset(b)
        assert a.subtract(b)["S"].count_points() == 6

    def test_intersect_domain_range(self):
        um = parse_union_map("{ S[i] -> A[i] : 0 <= i < 10 }")
        dom = parse_union_set("{ S[i] : 2 <= i < 5 }")
        clipped = um.intersect_domain(dom)
        assert clipped.range()["A"].count_points() == 3


class TestHulls:
    def test_pattern_hull_merges_shifted_boxes(self):
        s = parse_set(
            "{ S[i] : 0 <= i < 4 or 2 <= i < 6 or 4 <= i < 8 }"
        )
        hull = s.pattern_hull()
        assert len(hull.pieces) == 1
        assert hull.count_points() == 8  # exact here: the union is convex

    def test_pattern_hull_is_superset(self):
        s = parse_set("{ S[i] : 0 <= i < 2 or 6 <= i < 8 }")
        hull = s.pattern_hull()
        assert s.is_subset(hull)
        assert hull.count_points() == 8  # over-approximates the gap

    def test_pattern_hull_keeps_distinct_structures_separate(self):
        # one piece bounds i, the other bounds i via j: different patterns
        s = parse_set("{ S[i, j] : 0 <= i < 4 and 0 <= j < 4 or 0 <= i < 4 and i <= j < 4 }")
        hull = s.pattern_hull()
        for piece in hull.pieces:
            box = piece.bounding_box()
            for lo, hi in box.values():
                assert lo is not None and hi is not None

    def test_dedupe(self):
        s = parse_set("{ S[i] : 0 <= i < 4 or 0 <= i < 4 }")
        assert len(s.dedupe().pieces) == 1


class TestEnumeration:
    def test_lexicographic_order(self):
        s = parse_set("{ S[i, j] : 0 <= i < 2 and 0 <= j < 2 }")
        pts = [(p["i"], p["j"]) for p in enumerate_points(s.pieces[0])]
        assert pts == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_unbounded_raises(self):
        s = parse_set("{ S[i] : i >= 0 }")
        with pytest.raises(EnumerationError):
            list(enumerate_points(s.pieces[0]))

    def test_params_required(self):
        s = parse_set("[N] -> { S[i] : 0 <= i < N }")
        with pytest.raises(EnumerationError):
            list(enumerate_points(s.pieces[0]))
        assert len(list(enumerate_points(s.pieces[0], {"N": 3}))) == 3

    def test_union_enumeration_dedupes(self):
        s = parse_set("{ S[i] : 0 <= i < 4 or 2 <= i < 6 }")
        assert len(list(enumerate_set_points(s))) == 6

    def test_triangular_domain(self):
        s = parse_set("{ S[i, j] : 0 <= i < 4 and i <= j < 4 }")
        assert s.count_points() == 10
