"""The generated OpenMP C really compiles and computes the right answer.

These tests close the loop the paper's artifact closes with PPCG: the
schedule trees produced by the pass are turned into actual C, compiled
with gcc, executed, and compared bit-for-bit (modulo float association,
which the schedules preserve) against the interpreter and the naive
reference.
"""

import numpy as np
import pytest

from repro import CompileOptions
from repro.codegen import execute_naive, make_store
from repro.codegen.cbackend import compile_and_run, compiler_available, generate_c
from repro.core import optimize
from repro.pipelines import conv2d, polybench, unsharp_mask
from repro.schedule import initial_tree
from repro.scheduler import SMARTFUSE, schedule_program

needs_cc = pytest.mark.skipif(
    not compiler_available(), reason="no C compiler on this machine"
)

PARAMS = {"H": 14, "W": 14, "KH": 3, "KW": 3}


def roundtrip(prog, tree):
    store = make_store(prog)
    got = compile_and_run(tree, prog, store, openmp=False)
    ref = make_store(prog)
    execute_naive(prog, ref)
    return got, ref


class TestSourceGeneration:
    def test_conv2d_source_structure(self):
        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        src = generate_c(res.tree, prog)
        assert "#pragma omp parallel for" in src
        assert "static double A[14][14];" in src
        assert "+=" in src  # the reduction
        assert src.count("for (long") >= 6

    def test_all_liveouts_written(self):
        prog = polybench.build_gemver(8)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        src = generate_c(res.tree, prog)
        assert 'write_tensor("x1.out.bin"' in src
        assert 'write_tensor("w.out.bin"' in src


@needs_cc
class TestCompileAndRun:
    def test_initial_tree_conv2d(self):
        prog = conv2d.build(PARAMS)
        got, ref = roundtrip(prog, initial_tree(prog))
        np.testing.assert_allclose(got["C"], ref["C"], rtol=1e-12)

    def test_smartfuse_tree(self):
        prog = conv2d.build(PARAMS)
        sched = schedule_program(prog, SMARTFUSE)
        got, ref = roundtrip(prog, sched.tree)
        np.testing.assert_allclose(got["C"], ref["C"], rtol=1e-12)

    def test_post_tiling_fused_tree(self):
        """The headline: Fig. 5's fused/tiled/extended tree as real C."""
        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        got, ref = roundtrip(prog, res.tree)
        np.testing.assert_allclose(got["C"], ref["C"], rtol=1e-12)

    def test_unsharp_mask_fused(self):
        prog = unsharp_mask.build(24)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 8)))
        got, ref = roundtrip(prog, res.tree)
        out = prog.liveout[0]
        np.testing.assert_allclose(got[out], ref[out], rtol=1e-12)

    def test_gemver_multi_liveout(self):
        prog = polybench.build_gemver(10)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        got, ref = roundtrip(prog, res.tree)
        np.testing.assert_allclose(got["x1"], ref["x1"], rtol=1e-12)
        np.testing.assert_allclose(got["w"], ref["w"], rtol=1e-12)

    def test_openmp_build_also_correct(self):
        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        store = make_store(prog)
        got = compile_and_run(res.tree, prog, store, openmp=True)
        ref = make_store(prog)
        execute_naive(prog, ref)
        np.testing.assert_allclose(got["C"], ref["C"], rtol=1e-12)
