"""Tests for the baseline comparators (Halide/PolyMage/naive)."""

import pytest

from repro import CompileOptions
from repro.baselines import (
    halide_work,
    naive_work,
    partitioned_result,
    polymage_work,
    scheduled_from_partition,
)
from repro.core import CPU, optimize
from repro.machine import analyze_optimized, cpu_time
from repro.pipelines import equake, harris, unsharp_mask


class TestPartitionValidation:
    def test_rejects_incomplete_partition(self):
        prog = unsharp_mask.build(64)
        with pytest.raises(ValueError):
            scheduled_from_partition(prog, [["S0_blurx"]])

    def test_rejects_unknown_statement(self):
        prog = unsharp_mask.build(64)
        partition = [list(prog.statement_names), ["Szz"]]
        with pytest.raises(ValueError):
            scheduled_from_partition(prog, partition)


class TestScheduledFromPartition:
    def test_equake_partitions_build(self):
        prog = equake.build(n=128)
        for name, partition in equake.PARTITIONS.items():
            sched = scheduled_from_partition(prog, partition)
            assert len(sched.groups) == len(partition), name

    def test_group_attributes_computed(self):
        prog = equake.build(n=128)
        sched = scheduled_from_partition(prog, equake.PARTITIONS["maxfuse"])
        gather_group = sched.groups[1]
        assert "Sgather" in gather_group.statements
        assert gather_group.coincident[0]  # pointwise chain stays parallel


class TestPartitionedResult:
    def test_halide_partition_runs_through_machinery(self):
        prog = unsharp_mask.build(256)
        partition = unsharp_mask.halide_partition(prog)
        res = partitioned_result(prog, partition, (8, 32), CPU)
        # blur_x materialised on its own; the rest fused
        clusters = res.mixed.fused_groups()
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 3]

    def test_halide_work_costs_more_than_ours(self):
        prog = unsharp_mask.build(256)
        partition = unsharp_mask.halide_partition(prog)
        t_halide = cpu_time(halide_work(prog, partition, (8, 32)), 32)
        ours = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 32)))
        t_ours = cpu_time(analyze_optimized(ours), 32)
        assert t_ours <= t_halide

    def test_polymage_overlap_never_cheaper_than_exact(self):
        prog = harris.build(256)
        partition = harris.polymage_partition(prog)
        w_poly = polymage_work(prog, partition, (16, 32))
        w_exact = halide_work(prog, partition, (16, 32))
        assert w_poly.total_recompute() >= w_exact.total_recompute() - 1e-6


class TestNaive:
    def test_naive_is_serial_and_scalar(self):
        prog = unsharp_mask.build(128)
        work = naive_work(prog)
        for c in work.clusters:
            assert c.parallel_units == 1
            assert not c.vectorizable
        assert cpu_time(work, 32) == pytest.approx(cpu_time(work, 1))
