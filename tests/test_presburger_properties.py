"""Property-based tests for the presburger algebra.

Strategy: generate small random conjunctions of affine constraints over a
couple of dimensions inside a bounded universe, then check the classic set
algebra laws point-wise against brute-force membership over the universe.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.presburger import BasicSet, Constraint, LinExpr, Set, SetSpace

pytestmark = pytest.mark.slow

DIMS = ("x", "y")
UNIVERSE_LO, UNIVERSE_HI = -4, 5
SPACE = SetSpace("P", DIMS)


def all_points():
    rng = range(UNIVERSE_LO, UNIVERSE_HI + 1)
    for x, y in itertools.product(rng, rng):
        yield {"x": x, "y": y}


@st.composite
def linexprs(draw):
    cx = draw(st.integers(-3, 3))
    cy = draw(st.integers(-3, 3))
    c = draw(st.integers(-6, 6))
    return LinExpr({"x": cx, "y": cy}, c)


@st.composite
def constraints(draw):
    expr = draw(linexprs())
    kind = draw(st.sampled_from(["ge", "eq"]))
    return Constraint.ge(expr) if kind == "ge" else Constraint.eq(expr)


@st.composite
def bounded_basic_sets(draw):
    bounds = [
        Constraint.ge(LinExpr.var(d), UNIVERSE_LO) for d in DIMS
    ] + [Constraint.le(LinExpr.var(d), UNIVERSE_HI) for d in DIMS]
    extra = draw(st.lists(constraints(), min_size=0, max_size=3))
    return BasicSet(SPACE, bounds + extra)


@st.composite
def bounded_sets(draw):
    pieces = draw(st.lists(bounded_basic_sets(), min_size=1, max_size=3))
    return Set(SPACE, pieces)


def brute_membership(s):
    return {tuple(p[d] for d in DIMS) for p in all_points() if s.contains(p)}


@settings(max_examples=25, deadline=None)
@given(bounded_sets(), bounded_sets())
def test_union_matches_pointwise(a, b):
    assert brute_membership(a.union(b)) == brute_membership(a) | brute_membership(b)


@settings(max_examples=25, deadline=None)
@given(bounded_sets(), bounded_sets())
def test_intersection_matches_pointwise(a, b):
    assert brute_membership(a.intersect(b)) == brute_membership(a) & brute_membership(b)


@settings(max_examples=25, deadline=None)
@given(bounded_sets(), bounded_sets())
def test_subtraction_matches_pointwise(a, b):
    assert brute_membership(a.subtract(b)) == brute_membership(a) - brute_membership(b)


@settings(max_examples=20, deadline=None)
@given(bounded_sets())
def test_self_subtraction_is_empty(a):
    assert a.subtract(a).is_empty()


@settings(max_examples=20, deadline=None)
@given(bounded_sets())
def test_coalesce_preserves_points(a):
    assert brute_membership(a.coalesce()) == brute_membership(a)


@settings(max_examples=20, deadline=None)
@given(bounded_sets())
def test_emptiness_agrees_with_brute_force(a):
    assert a.is_empty() == (len(brute_membership(a)) == 0)


@settings(max_examples=20, deadline=None)
@given(bounded_sets())
def test_count_points_agrees_with_brute_force(a):
    assert a.count_points() == len(brute_membership(a))


# subtraction-based subset probes on 3-piece unions are the most
# expensive operation in the suite; a handful of examples suffices
@settings(max_examples=6, deadline=None)
@given(bounded_sets(), bounded_sets())
def test_subset_reflexivity_and_union_bound(a, b):
    assert a.is_subset(a)
    u = a.union(b)
    assert a.is_subset(u)
    assert b.is_subset(u)


@settings(max_examples=20, deadline=None)
@given(bounded_basic_sets())
def test_projection_is_exact_shadow(bset):
    """FM projection onto x contains exactly the xs of integer points.

    Exactness holds here because y's coefficients are small and the
    emitted points are verified; we check soundness (superset) always and
    exactness via enumeration.
    """
    proj = bset.project_out(["y"])
    xs = {p["x"] for p in all_points() if bset.contains(p)}
    for x in xs:
        assert proj.contains({"x": x})


@settings(max_examples=20, deadline=None)
@given(bounded_sets())
def test_sample_is_member(a):
    pt = a.sample()
    if pt is None:
        assert a.is_empty()
    else:
        assert a.contains(pt)


# ---------------------------------------------------------------------------
# fast-path equivalence: the box shortcut and the memo tables must be
# unobservable — identical results to the generic slow path.


@st.composite
def box_basic_sets(draw):
    """Sets whose every constraint is a single-symbol bound: the shape that
    takes the FM box fast path."""
    cons = [
        Constraint.ge(LinExpr.var(d), UNIVERSE_LO) for d in DIMS
    ] + [Constraint.le(LinExpr.var(d), UNIVERSE_HI) for d in DIMS]
    for d in DIMS:
        if draw(st.booleans()):
            cons.append(Constraint.ge(LinExpr.var(d), draw(st.integers(-6, 6))))
        if draw(st.booleans()):
            cons.append(Constraint.le(LinExpr.var(d), draw(st.integers(-6, 6))))
    return BasicSet(SPACE, cons)


def _reference_eliminate(cons, sym):
    """The generic pairwise FM loop, with no fast paths."""
    lowers, uppers, rest = [], [], []
    for c in cons:
        a = c.coeff(sym)
        if a == 0:
            rest.append(c)
        elif a > 0:
            lowers.append((a, c))
        else:
            uppers.append((-a, c))
    out = list(rest)
    for al, cl in lowers:
        for au, cu in uppers:
            el = cl.expr - LinExpr({sym: al})
            eu = cu.expr + LinExpr({sym: au})
            out.append(Constraint(el * au + eu * al, ">="))
    return [c for c in out if not c.is_trivially_true()]


@settings(max_examples=30, deadline=None)
@given(box_basic_sets())
def test_box_fast_path_equals_generic_elimination(bset):
    from repro.presburger.fm import eliminate_symbol

    fast = eliminate_symbol(list(bset.constraints), "y")
    slow = _reference_eliminate(list(bset.constraints), "y")
    # Identical up to deduplication of repeated constraints.
    assert list(dict.fromkeys(slow)) == fast

    proj = bset.project_out(["y"])
    xs = {p["x"] for p in all_points() if bset.contains(p)}
    for x in range(UNIVERSE_LO, UNIVERSE_HI + 1):
        assert proj.contains({"x": x}) == (x in xs)


@settings(max_examples=20, deadline=None)
@given(bounded_basic_sets(), bounded_basic_sets())
def test_memoized_ops_equal_cold_results(a, b):
    from repro.presburger import memo

    warm_i = a.intersect(b)
    warm_p = a.project_out(["y"])
    warm_e = a.is_empty()
    memo.clear_all()
    cold_a = BasicSet(a.space, a.constraints)
    cold_b = BasicSet(b.space, b.constraints)
    cold_i = cold_a.intersect(cold_b)
    cold_p = cold_a.project_out(["y"])
    assert cold_i.space == warm_i.space
    assert cold_i.constraints == warm_i.constraints
    assert cold_p.space == warm_p.space
    assert cold_p.constraints == warm_p.constraints
    assert cold_a.is_empty() == warm_e


@settings(max_examples=20, deadline=None)
@given(bounded_basic_sets())
def test_pruned_feasibility_agrees_with_brute_force(bset):
    from repro.presburger.fm import rational_feasible

    has_integer_point = any(bset.contains(p) for p in all_points())
    feasible = rational_feasible(list(bset.constraints))
    # Rational feasibility over-approximates integer membership; inside a
    # bounded box an integer witness forces rational feasibility.
    if has_integer_point:
        assert feasible
