"""Memo-table eviction, spill/load, and the cross-process warm-start.

Covers the generation-segmented eviction policy (hot entries survive a
rotation, cold ones age out, tables stay bounded), the snapshot/load
round-trip inside one process, the disk ``memos`` store of
:class:`~repro.service.cache.CompileCache`, and — the point of the whole
layer — a subprocess with a fresh symbol table that warm-starts from a
snapshot spilled by this process and produces byte-identical output.
"""

import os
import subprocess
import sys

from repro import CompileOptions
from repro.presburger import BasicMap, Constraint, LinExpr, MapSpace, memo
from repro.presburger.memo import MemoTable
from repro.service import CompileCache, cached_optimize
from repro.pipelines import conv2d

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

V = LinExpr.var


def tile_map(tile):
    space = MapSpace("T", ("t0",), "S", ("i",), ())
    return BasicMap(
        space,
        [
            Constraint.le(V("t0"), V("i")),
            Constraint.lt(V("i"), V("t0") + tile),
            Constraint.ge(V("i")),
            Constraint.lt(V("i"), 64),
        ],
    )


def access_map(shift):
    space = MapSpace("S", ("i",), "A", ("a0",), ())
    return BasicMap(space, [Constraint.eq(V("a0") - V("i") - shift)])


# -- generational eviction -------------------------------------------------


def test_table_stays_bounded_and_rotation_drops_cold_entries():
    t = MemoTable("t")
    for i in range(memo.CAP + 100):
        t.put(i, i)
    assert len(t) <= memo.CAP
    assert t.evictions > 0


def test_recently_hit_entries_survive_rotation():
    t = MemoTable("t")
    t.put("hot", 1)
    # Age "hot" into the old generation, then hit it to promote it back.
    for i in range(memo.CAP // 2):
        t.put(("filler-a", i), i)
    assert t.get("hot") == 1
    # As long as it keeps being hit within each rotation window, "hot"
    # survives rotations that drop the untouched filler.
    for i in range(memo.CAP // 2):
        t.put(("filler-b", i), i)
    assert t.get("hot") == 1
    for i in range(memo.CAP // 2):
        t.put(("filler-c", i), i)
    assert t.get("hot") == 1
    assert t.get(("filler-a", 0)) is memo.MISS  # cold entries aged out


def test_miss_then_put_then_hit_counts():
    t = MemoTable("t")
    assert t.get("k") is memo.MISS
    t.put("k", "v")
    assert t.get("k") == "v"
    assert (t.hits, t.misses, t.warm_hits) == (1, 1, 0)


# -- snapshot / load -------------------------------------------------------


def test_snapshot_load_round_trip_marks_warm_hits():
    t = MemoTable("t", spillable=True)
    t.put("a", 1)
    t.put("b", 2)
    snap = t.snapshot()
    fresh = MemoTable("t", spillable=True)
    assert fresh.load(snap) == 2
    assert fresh.get("a") == 1
    assert fresh.warm_hits == 1
    # A natively computed entry does not count as warm.
    fresh.put("c", 3)
    fresh.get("c")
    assert fresh.warm_hits == 1


def test_load_never_overwrites_resident_entries():
    t = MemoTable("t")
    t.put("k", "resident")
    assert t.load([("k", "spilled"), ("other", 1)]) == 1
    assert t.get("k") == "resident"


def test_module_snapshot_covers_only_spillable_tables():
    memo.clear_all()
    a = tile_map(8).apply_range(access_map(1))  # populates "apply_range"
    tile_map(8).reverse()  # populates "map_reverse" (not spillable)
    snap = memo.snapshot()
    assert "apply_range" in snap
    assert "map_reverse" not in snap
    memo.clear_all()
    assert memo.load_snapshot(snap) > 0
    # The reloaded entry is served on the next identical call.
    b = tile_map(8).apply_range(access_map(1))
    assert a == b
    assert memo.stats()["apply_range"]["warm_hits"] >= 1


# -- disk memos store ------------------------------------------------------


def test_cache_memo_store_round_trip(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    assert cache.get_memos("k" * 64) is None
    assert cache.stats.memo_misses == 1
    snap = {"apply_range": [(("key",), "value")]}
    cache.put_memos("k" * 64, snap)
    assert cache.get_memos("k" * 64) == snap
    assert cache.stats.memo_hits == 1
    info = cache.info()
    assert info["memo_entries"] == 1
    assert info["disk_entries"] == 0  # memos are not result entries


def test_cache_clear_selectors(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    cache.put("a" * 64, {"result": 1})
    cache.put_memos("b" * 64, {"t": [(1, 2)]})
    assert cache.clear(results=False, memos=True) == 1
    assert cache.get("a" * 64) is not None
    assert cache.get_memos("b" * 64) is None
    cache.put_memos("b" * 64, {"t": [(1, 2)]})
    assert cache.clear() == 2
    assert cache.info()["memo_entries"] == 0


def test_corrupt_memo_snapshot_is_evicted_not_fatal(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    cache.put_memos("c" * 64, {"t": [(1, 2)]})
    path = cache._path("c" * 64, kind="memos")
    with open(path, "wb") as f:
        f.write(b"garbage")
    assert cache.get_memos("c" * 64) is None
    assert not os.path.exists(path)


# -- cross-process warm start ----------------------------------------------

CHILD = """
import sys
from repro import CompileOptions
from repro.codegen import print_tree
from repro.core import optimize
from repro.pipelines import conv2d
from repro.presburger import memo
from repro.service import CompileCache, cached_optimize

cache_dir = sys.argv[1]
prog = conv2d.build({"H": 48, "W": 48, "KH": 3, "KW": 3})
cache = CompileCache(cache_dir=cache_dir)
# Force a real compile (drop the spilled result) but keep the memo store.
cache.clear(results=True, memos=False)
warm = cached_optimize(prog, options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache))
assert cache.stats.memo_hits == 1, cache.stats
warm_hits = sum(v["warm_hits"] for v in memo.stats().values())
assert warm_hits > 0, memo.stats()
# Cold reference in this same (fresh-symtab) process.
memo.clear_all()
cold = optimize(prog, CompileOptions(target="cpu", tile_sizes=(16, 16)))
assert print_tree(warm.tree, prog) == print_tree(cold.tree, prog)
print("warm_hits", warm_hits)
"""


def test_spilled_memos_warm_start_a_fresh_process(tmp_path):
    prog = conv2d.build({"H": 48, "W": 48, "KH": 3, "KW": 3})
    cache = CompileCache(cache_dir=str(tmp_path))
    cached_optimize(prog, options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache))
    assert cache.info()["memo_entries"] == 1

    # A different hash seed stresses entry portability: the child's symbol
    # table assigns fresh ids and its dict/set orders differ.
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED="77")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, str(tmp_path)],
        capture_output=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    assert proc.stdout.startswith(b"warm_hits")


def test_spill_disabled_by_env(tmp_path, monkeypatch):
    from repro.service.driver import memo_spill_enabled

    monkeypatch.setenv("REPRO_MEMO_SPILL", "0")
    assert not memo_spill_enabled()
    prog = conv2d.build({"H": 40, "W": 40, "KH": 3, "KW": 3})
    cache = CompileCache(cache_dir=str(tmp_path))
    cached_optimize(prog, options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache))
    assert cache.info()["memo_entries"] == 0
