"""Correctness of the executable backend.

Every schedule the system can produce must compute bit-identical live-out
tensors to the naive program-order execution — including the post-tiling
fused trees with their overlapped (recomputed) extension tiles.
"""

import numpy as np
import pytest

from repro import CompileOptions
from repro.codegen.interp import (
    build_streams,
    execute_naive,
    execute_tree,
    make_store,
    run_program,
)
from repro.core import optimize
from repro.pipelines import conv2d
from repro.schedule import initial_tree
from repro.scheduler import (
    MAXFUSE,
    MINFUSE,
    SMARTFUSE,
    schedule_program,
    tile_all_groups,
)

PARAMS = {"H": 10, "W": 10, "KH": 3, "KW": 3}


def naive_result(prog, seed=0):
    store = make_store(prog, seed=seed)
    counts = execute_naive(prog, store)
    return store, counts


@pytest.fixture(scope="module")
def prog():
    return conv2d.build(PARAMS)


@pytest.fixture(scope="module")
def reference(prog):
    return naive_result(prog)


class TestInitialTree:
    def test_matches_naive(self, prog, reference):
        ref_store, ref_counts = reference
        store, counts = run_program(prog, initial_tree(prog))
        np.testing.assert_allclose(store["C"], ref_store["C"])
        assert counts == ref_counts


class TestHeuristicTrees:
    @pytest.mark.parametrize("heuristic", [MINFUSE, SMARTFUSE, MAXFUSE])
    def test_untiled_matches_naive(self, prog, reference, heuristic):
        ref_store, _ = reference
        sched = schedule_program(prog, heuristic)
        store, _ = run_program(prog, sched.tree)
        np.testing.assert_allclose(store["C"], ref_store["C"])

    @pytest.mark.parametrize("heuristic", [MINFUSE, SMARTFUSE])
    def test_tiled_matches_naive(self, prog, reference, heuristic):
        ref_store, _ = reference
        sched = schedule_program(prog, heuristic)
        tree = tile_all_groups(sched, (4, 4))
        store, _ = run_program(prog, tree)
        np.testing.assert_allclose(store["C"], ref_store["C"])


class TestPostTilingFusion:
    def test_fused_tree_matches_naive(self, prog, reference):
        ref_store, _ = reference
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        store, _ = run_program(prog, result.tree)
        np.testing.assert_allclose(store["C"], ref_store["C"])

    def test_small_tiles_recompute_halo(self, prog):
        """With 2x2 tiles each tile reads a 4x4 halo of A, so fused S0
        executes more instances than its domain has points."""
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(2, 2)))
        _store, counts = run_program(prog, result.tree)
        domain_points = prog.statement("S0").domain.count_points(PARAMS)
        assert counts["S0"] > domain_points

    def test_dead_code_elimination(self):
        """S0 instances outside every tile footprint never execute: with
        KH = KW = 1 tiles read no halo, and the fused S0 runs exactly the
        instances the reduction needs — fewer than its full domain."""
        p = conv2d.build({"H": 8, "W": 8, "KH": 1, "KW": 1})
        result = optimize(p, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        _store, counts = run_program(p, result.tree)
        assert counts["S0"] == 64  # 8x8: KH=1 keeps footprint == output

    def test_gpu_target_matches_naive(self, prog, reference):
        ref_store, _ = reference
        result = optimize(prog, CompileOptions(target="gpu", tile_sizes=(4, 4)))
        store, _ = run_program(prog, result.tree)
        np.testing.assert_allclose(store["C"], ref_store["C"])

    @pytest.mark.parametrize("tiles", [(2, 2), (3, 3), (4, 2), (8, 8), (16, 16)])
    def test_many_tile_sizes(self, prog, reference, tiles):
        ref_store, _ = reference
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=tiles))
        store, _ = run_program(prog, result.tree)
        np.testing.assert_allclose(store["C"], ref_store["C"])


class TestStreams:
    def test_skipped_subtree_produces_no_stream(self, prog):
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        streams = build_streams(result.tree, prog, PARAMS)
        # S0 appears only through the extension path, not its original filter
        s0_streams = [s for s in streams if s.stmt.name == "S0"]
        assert len(s0_streams) == 1
        assert len(s0_streams[0].aug_dims) >= 2  # keyed by the tile dims

    def test_executed_counts_match_stream_enumeration(self, prog):
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        store = make_store(prog)
        counts = execute_tree(result.tree, prog, store)
        assert counts["S2"] == prog.statement("S2").domain.count_points(PARAMS)
        assert counts["S3"] == prog.statement("S3").domain.count_points(PARAMS)
