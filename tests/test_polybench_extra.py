"""Tests for the additional PolyBench kernels (beyond Table II's three)."""

import numpy as np

from repro import CompileOptions
from repro.codegen import execute_naive, make_store, run_program
from repro.core import optimize
from repro.core.validate import validate_tree
from repro.pipelines import polybench


def run_both(prog, tile_sizes):
    ref = make_store(prog)
    execute_naive(prog, ref)
    res = optimize(prog, CompileOptions(target="cpu", tile_sizes=tile_sizes))
    store, _ = run_program(prog, res.tree)
    for t in prog.liveout:
        np.testing.assert_allclose(store[t], ref[t], rtol=1e-9)
    return res, ref, store


class Test3mm:
    def test_correct_and_matches_numpy(self):
        prog = polybench.build_3mm(8)
        res, ref, _ = run_both(prog, (4, 4))
        A, B, C, D = (ref[t] for t in "ABCD")
        np.testing.assert_allclose(ref["G"], (A @ B) @ (C @ D), rtol=1e-9)

    def test_no_redundant_fusion_at_scale(self):
        prog = polybench.build_3mm(256)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(32, 32)))
        # three separate matmul clusters: chaining them would recompute
        assert len(res.fusion_summary()) == 3


class TestAtax:
    def test_correct(self):
        prog = polybench.build_atax(10)
        res, ref, _ = run_both(prog, (4, 4))
        A, x = ref["A"], ref["x"]
        np.testing.assert_allclose(ref["y"], A.T @ (A @ x), rtol=1e-9)

    def test_legal_schedule(self):
        prog = polybench.build_atax(8)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        assert validate_tree(res.tree, prog).ok


class TestBicg:
    def test_correct_two_liveouts(self):
        prog = polybench.build_bicg(10)
        res, ref, _ = run_both(prog, (4, 4))
        A = ref["A"]
        np.testing.assert_allclose(ref["s"], A.T @ ref["r"], rtol=1e-9)
        np.testing.assert_allclose(ref["q"], A @ ref["p"], rtol=1e-9)

    def test_liveouts_stay_separate(self):
        prog = polybench.build_bicg(64)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        # live-out spaces are never fused with each other (Section IV-C)
        summaries = res.fusion_summary()
        assert len(summaries) == 2


class TestMvt:
    def test_correct_inplace_updates(self):
        prog = polybench.build_mvt(10)
        res, ref, store = run_both(prog, (4, 4))
        # x1/x2 are in-place accumulators seeded by make_store


class TestDoitgen:
    def test_correct(self):
        prog = polybench.build_doitgen(6)
        res, ref, _ = run_both(prog, (2, 2))
        A, C4 = ref["A"], ref["C4"]
        expected = np.einsum("rqs,sp->rqp", A, C4)
        np.testing.assert_allclose(ref["Out"], expected, rtol=1e-9)

    def test_copyback_fuses(self):
        """The copy-back stage is pointwise over the reduction output and
        fuses into its tiles without recomputation."""
        prog = polybench.build_doitgen(16)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        flat = [s for cluster in res.fusion_summary() for s in cluster]
        assert len(res.fusion_summary()) == 1
        assert set(flat) == {"Sd0", "Sd1", "Sd2"}
