"""Edge-case tests for the interpreter backend."""

import numpy as np
import pytest

from repro.codegen.interp import (
    ExecutionError,
    build_streams,
    execute_naive,
    execute_tree,
    make_store,
)
from repro.ir import ProgramBuilder
from repro.schedule import MarkNode, initial_tree, mark_skipped, top_level_filters


def tiny_program(n=6):
    b = ProgramBuilder("tiny", params={})
    A = b.tensor("A", (n,))
    B = b.tensor("B", (n,))
    (i,) = b.iters("i")
    b.assign("Sa", (i,), f"0 <= i < {n}", A[i], 2.0)
    b.assign("Sb", (i,), f"0 <= i < {n}", B[i], A[i] * 3.0)
    b.set_liveout("B")
    return b.build()


class TestStreams:
    def test_stream_per_statement(self):
        prog = tiny_program()
        streams = build_streams(initial_tree(prog), prog, {})
        assert sorted(s.stmt.name for s in streams) == ["Sa", "Sb"]

    def test_skipped_filter_removes_stream(self):
        prog = tiny_program()
        tree = initial_tree(prog)
        mark_skipped(top_level_filters(tree)[0])
        streams = build_streams(tree, prog, {})
        assert [s.stmt.name for s in streams] == ["Sb"]

    def test_non_skip_marks_pass_through(self):
        prog = tiny_program()
        tree = initial_tree(prog)
        filt = top_level_filters(tree)[0]
        filt.child = MarkNode("kernel:k0", filt.child)
        streams = build_streams(tree, prog, {})
        assert len(streams) == 2

    def test_multi_piece_domain_executes_each_piece(self):
        b = ProgramBuilder("pieces", params={})
        A = b.tensor("A", (10,))
        (i,) = b.iters("i")
        b.assign("S", (i,), "0 <= i < 3 or 6 <= i < 9", A[i], 1.0)
        prog = b.build()
        store = make_store(prog)
        counts = execute_tree(initial_tree(prog), prog, store)
        assert counts["S"] == 6
        np.testing.assert_allclose(store["A"][[0, 1, 2, 6, 7, 8]], 1.0)
        np.testing.assert_allclose(store["A"][[3, 4, 5, 9]], 0.0)


class TestSemantics:
    def test_sequence_order_respected(self):
        prog = tiny_program()
        store = make_store(prog)
        execute_tree(initial_tree(prog), prog, store)
        np.testing.assert_allclose(store["B"], 6.0)

    def test_reduce_accumulates(self):
        b = ProgramBuilder("red", params={})
        A = b.tensor("A", (4,))
        tot = b.tensor("tot", (1,))
        (i,) = b.iters("i")
        b.assign("Sz", (i,), "0 <= i < 1", tot[i], 0)
        b.reduce("Sr", (i,), "0 <= i < 4", tot[0], A[i])
        prog = b.build()
        store = make_store(prog)
        execute_tree(initial_tree(prog), prog, store)
        assert store["tot"][0] == pytest.approx(store["A"].sum())

    def test_counts_match_domains(self):
        prog = tiny_program(9)
        store = make_store(prog)
        counts = execute_naive(prog, store)
        assert counts == {"Sa": 9, "Sb": 9}

    def test_empty_domain_statement(self):
        b = ProgramBuilder("empty", params={})
        A = b.tensor("A", (4,))
        (i,) = b.iters("i")
        b.assign("S0", (i,), "0 <= i < 4", A[i], 1.0)
        b.assign("S1", (i,), "0 <= i < 0", A[i], 9.0)  # never runs
        prog = b.build()
        store = make_store(prog)
        counts = execute_tree(initial_tree(prog), prog, store)
        assert counts.get("S1") is None
        np.testing.assert_allclose(store["A"], 1.0)

    def test_unbounded_execution_rejected(self):
        b = ProgramBuilder("unbounded", params={})
        A = b.tensor("A", (4,))
        (i,) = b.iters("i")
        b.assign("S", (i,), "i >= 0", A[0], 1.0)
        prog = b.build()
        store = make_store(prog)
        with pytest.raises(ExecutionError):
            execute_tree(initial_tree(prog), prog, store)
