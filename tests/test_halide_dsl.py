"""Tests for the Halide-style scheduling DSL and lexmin/lexmax."""

import pytest

from repro.baselines.halide_dsl import HalideSchedule, HalideScheduleError
from repro.machine import analyze_optimized, cpu_time
from repro.pipelines import unsharp_mask
from repro.presburger import lexmax, lexmin, parse_set


@pytest.fixture()
def prog():
    return unsharp_mask.build(256)


def stage_names(prog):
    return [s[0] for s in prog.stages]


class TestHalideSchedule:
    def test_default_partition_inlines_into_output(self, prog):
        sched = HalideSchedule(prog)
        partition = sched.partition()
        assert len(partition) == 1  # everything in the output's group
        assert sorted(partition[0]) == sorted(prog.statement_names)

    def test_compute_root_splits(self, prog):
        names = stage_names(prog)
        sched = HalideSchedule(prog).compute_root(names[0])
        partition = sched.partition()
        assert len(partition) == 2
        assert partition[0] == [names[0]]

    def test_compute_at_follows_anchor(self, prog):
        names = stage_names(prog)
        sched = (
            HalideSchedule(prog)
            .compute_root(names[1])
            .compute_at(names[0], names[1])
        )
        partition = sched.partition()
        assert sorted(partition[0]) == sorted([names[0], names[1]])

    def test_compute_at_chain_resolves_to_root(self, prog):
        names = stage_names(prog)
        sched = (
            HalideSchedule(prog)
            .compute_at(names[0], names[1])
            .compute_at(names[1], names[3])
        )
        partition = sched.partition()
        assert len(partition) == 1

    def test_unknown_stage_rejected(self, prog):
        with pytest.raises(HalideScheduleError):
            HalideSchedule(prog).compute_root("nope")

    def test_compute_at_cycle_rejected(self, prog):
        names = stage_names(prog)
        sched = (
            HalideSchedule(prog)
            .compute_at(names[0], names[1])
            .compute_at(names[1], names[0])
        )
        with pytest.raises(HalideScheduleError):
            sched.partition()

    def test_lower_and_cost(self, prog):
        names = stage_names(prog)
        fused = HalideSchedule(prog).lower((8, 32))
        split = (
            HalideSchedule(prog)
            .compute_root(names[0])
            .compute_root(names[1])
            .lower((8, 32))
        )
        t_fused = cpu_time(analyze_optimized(fused), 32)
        t_split = cpu_time(analyze_optimized(split), 32)
        assert t_fused < t_split  # materialising stages costs DRAM trips


class TestLexExtremes:
    def test_triangular(self):
        s = parse_set("{ S[i, j] : 0 <= i < 5 and i <= j < 5 }")
        assert lexmin(s) == {"i": 0, "j": 0}
        assert lexmax(s) == {"i": 4, "j": 4}

    def test_union_pieces(self):
        s = parse_set("{ S[i] : 3 <= i < 7 or -2 <= i < 1 }")
        assert lexmin(s)["i"] == -2
        assert lexmax(s)["i"] == 6

    def test_empty(self):
        s = parse_set("{ S[i] : i > 2 and i < 2 }")
        assert lexmin(s) is None

    def test_lex_order_not_pointwise_min(self):
        # lexmin picks smallest i first, then smallest j for that i
        s = parse_set("{ S[i, j] : i = 0 and 3 <= j < 5 or i = 1 and j = 0 }")
        assert lexmin(s) == {"i": 0, "j": 3}
        assert lexmax(s) == {"i": 1, "j": 0}

    def test_params_must_be_bound(self):
        s = parse_set("[N] -> { S[i] : 0 <= i < N }")
        with pytest.raises(ValueError):
            lexmin(s)
        assert lexmin(s, {"N": 5}) == {"i": 0}
