"""Tests for the paper's core algorithms, mirroring the running example.

Section III fixes H = W = 6, KH = KW = 3 and tile sizes T2 = T3 = 2 for the
reduction space; we reproduce the published footprints and extension
schedules exactly (with tile-origin coordinates: the paper's tile (o0, o1)
is our origin (2*o0, 2*o1)).
"""

import pytest

from repro import CompileOptions
from repro.core import (
    CPU,
    ExtensionScheduleEntry,
    GPU,
    TILE_TUPLE,
    TilingScheduleEntry,
    construct_tile_shapes,
    exposed_tensors,
    footprint_size,
    intermediate_groups_of,
    liveout_groups,
    optimize,
    tile_footprint,
    tile_to_instances,
)
from repro.pipelines import conv2d
from repro.scheduler import SMARTFUSE, schedule_program
from repro.schedule import BandNode, ExtensionNode, is_skipped, top_level_filters

PARAMS = {"H": 6, "W": 6, "KH": 3, "KW": 3}


@pytest.fixture(scope="module")
def setup():
    prog = conv2d.build(PARAMS)
    sched = schedule_program(prog, SMARTFUSE)
    return prog, sched


class TestLiveoutIdentification:
    def test_liveout_group_is_reduction_space(self, setup):
        prog, sched = setup
        los = liveout_groups(prog, sched.groups)
        assert len(los) == 1
        assert set(los[0].statements) == {"S1", "S2", "S3"}

    def test_intermediates_of_liveout(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        inters = intermediate_groups_of(prog, L, sched.groups)
        assert [set(g.statements) for g in inters] == [{"S0"}]

    def test_exposed_tensors(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        assert exposed_tensors(prog, L, sched.groups) == ("A",)


class TestFootprints:
    """Section III-A: the published footprints of the blue and red tiles."""

    def test_tile_to_instances(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        t2i = tile_to_instances(prog, L, (2, 2))
        m = t2i[(TILE_TUPLE, "S2")].fix_params(PARAMS)
        inst = m.image_of_point({f"{L.name}_o0": 2, f"{L.name}_o1": 0})
        # 2x2 points of (h, w) x 3x3 reduction points
        assert inst.count_points() == 4 * 9

    def test_blue_tile_footprint(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        fp = tile_footprint(prog, L, (2, 2), ("A",))
        m = fp[(TILE_TUPLE, "A")]
        blue = {f"{L.name}_o0": 2, f"{L.name}_o1": 0}
        elems = m.fix_params(PARAMS).image_of_point(blue)
        # paper: { A[h', w'] : 2 <= h' <= 5 and 0 <= w' <= 3 }
        assert elems.count_points() == 16
        box = elems.bounding_box()
        (d0, d1) = elems.space.dims
        assert box[d0] == (2, 5)
        assert box[d1] == (0, 3)

    def test_red_tile_footprint_overlaps_blue(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        fp = tile_footprint(prog, L, (2, 2), ("A",))
        m = fp[(TILE_TUPLE, "A")].fix_params(PARAMS)
        blue = m.image_of_point({f"{L.name}_o0": 2, f"{L.name}_o1": 0})
        red = m.image_of_point({f"{L.name}_o0": 2, f"{L.name}_o1": 2})
        inter = blue.intersect(red)
        # the interleaved region: 2 <= h' <= 5, 2 <= w' <= 3
        assert inter.count_points() == 8

    def test_footprint_size_helper(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        fp = tile_footprint(prog, L, (2, 2), ("A",))
        size = footprint_size(
            fp[(TILE_TUPLE, "A")],
            {f"{L.name}_o0": 2, f"{L.name}_o1": 2},
            PARAMS,
        )
        assert size == 16


class TestAlgorithm1:
    def test_mixed_schedules_structure(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        inters = intermediate_groups_of(prog, L, sched.groups)
        mixed = construct_tile_shapes(prog, L, inters, (2, 2), CPU)
        kinds = [type(e).__name__ for e in mixed.entries]
        assert kinds == ["TilingScheduleEntry", "ExtensionScheduleEntry"]
        assert mixed.entries[0].tile_sizes == (2, 2)

    def test_extension_schedule_matches_relation6(self, setup):
        """The extension schedule must reproduce relation (6): the blue
        tile pulls S0 instances { S0[h, w] : 2 <= h <= 5, 0 <= w <= 3 }."""
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        inters = intermediate_groups_of(prog, L, sched.groups)
        mixed = construct_tile_shapes(prog, L, inters, (2, 2), CPU)
        ext = mixed.entries[1]
        inst = ext.instances_for_tile(
            "S0", {f"{L.name}_o0": 2, f"{L.name}_o1": 0}, PARAMS
        )
        assert inst.count_points() == 16
        box = inst.bounding_box()
        dims = inst.space.dims
        assert box[dims[0]] == (2, 5)
        assert box[dims[1]] == (0, 3)

    def test_overlapping_extension_tiles(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        inters = intermediate_groups_of(prog, L, sched.groups)
        mixed = construct_tile_shapes(prog, L, inters, (2, 2), CPU)
        ext = mixed.entries[1]
        blue = ext.instances_for_tile("S0", {f"{L.name}_o0": 2, f"{L.name}_o1": 0}, PARAMS)
        red = ext.instances_for_tile("S0", {f"{L.name}_o0": 2, f"{L.name}_o1": 2}, PARAMS)
        assert not blue.intersect(red).is_empty()

    def test_gpu_target_requires_2d_parallelism(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        inters = intermediate_groups_of(prog, L, sched.groups)
        mixed = construct_tile_shapes(prog, L, inters, (2, 2), GPU)
        # conv2d's live-out space has 2 parallel dims, so GPU still tiles
        assert mixed.entries[0].is_tiled

    def test_fused_groups_listing(self, setup):
        prog, sched = setup
        L = liveout_groups(prog, sched.groups)[0]
        inters = intermediate_groups_of(prog, L, sched.groups)
        mixed = construct_tile_shapes(prog, L, inters, (2, 2), CPU)
        clusters = mixed.fused_groups()
        assert len(clusters) == 1
        assert clusters[0][0] is L


class TestEndToEnd:
    def test_optimize_fuses_all_statements(self):
        prog = conv2d.build(PARAMS)
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(2, 2)))
        assert result.fusion_summary() == [["S0", "S1", "S2", "S3"]]

    def test_tree_has_extension_below_tile_band(self):
        prog = conv2d.build(PARAMS)
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(2, 2)))
        exts = [n for n in result.tree.walk() if isinstance(n, ExtensionNode)]
        assert len(exts) == 1
        bands = [n for n in result.tree.walk() if isinstance(n, BandNode)]
        tile_bands = [b for b in bands if b.tile_sizes is not None]
        assert len(tile_bands) == 1
        assert tile_bands[0].tile_sizes == (2, 2)
        # the extension node sits directly below the tile band
        assert tile_bands[0].child is exts[0]

    def test_original_s0_subtree_skipped(self):
        prog = conv2d.build(PARAMS)
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(2, 2)))
        filters = top_level_filters(result.tree)
        s0_filters = [f for f in filters if f.statements == ("S0",)]
        assert len(s0_filters) == 1
        assert is_skipped(s0_filters[0])

    def test_parallelism_not_lost(self):
        prog = conv2d.build(PARAMS)
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(2, 2)))
        bands = [
            n
            for n in result.tree.walk()
            if isinstance(n, BandNode) and n.tile_sizes is not None
        ]
        assert bands[0].coincident == [True, True]

    def test_compile_time_recorded(self):
        prog = conv2d.build(PARAMS)
        result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(2, 2)))
        assert result.compile_seconds > 0
