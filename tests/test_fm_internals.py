"""White-box tests of the Fourier–Motzkin and feasibility machinery."""


from repro.presburger import Constraint, V
from repro.presburger.fm import (
    bounds_for_symbol,
    constraint_symbols,
    eliminate_symbol,
    eliminate_symbols,
    find_integer_point,
    implied_by_intervals,
    interval_bounds,
    prune_implied_by_intervals,
    prune_redundant,
    rational_feasible,
)


def ge(lhs, rhs=0):
    return Constraint.ge(lhs, rhs)


def le(lhs, rhs):
    return Constraint.le(lhs, rhs)


def eq(lhs, rhs=0):
    return Constraint.eq(lhs, rhs)


class TestEliminateSymbol:
    def test_pairwise_combination(self):
        # x >= y and x <= z  ->  y <= z
        cons = [ge(V("x") - V("y")), ge(V("z") - V("x"))]
        out = eliminate_symbol(cons, "x")
        assert len(out) == 1
        assert out[0].satisfied_by({"y": 2, "z": 5})
        assert not out[0].satisfied_by({"y": 5, "z": 2})

    def test_equality_substitution_unit(self):
        # x == y + 1 and x <= 5  ->  y <= 4
        cons = [eq(V("x") - V("y") - 1), le(V("x"), 5)]
        out = eliminate_symbol(cons, "x")
        assert all(c.coeff("x") == 0 for c in out)
        assert all(c.satisfied_by({"y": 4}) for c in out)
        assert not all(c.satisfied_by({"y": 5}) for c in out)

    def test_equality_with_non_unit_coefficient(self):
        # 2x == y and 0 <= x <= 3  ->  0 <= y <= 6 (rationally)
        cons = [eq(V("x") * 2 - V("y")), ge(V("x")), le(V("x"), 3)]
        out = eliminate_symbol(cons, "x")
        assert all(c.coeff("x") == 0 for c in out)
        assert all(c.satisfied_by({"y": 6}) for c in out)
        assert not all(c.satisfied_by({"y": 7}) for c in out)

    def test_unconstrained_symbol_passthrough(self):
        cons = [ge(V("y"), 3)]
        assert eliminate_symbol(cons, "x") == cons

    def test_equality_with_non_unit_gcd_multiplier(self):
        # Eliminating x via 2x + 3y == 0 from 4x - z <= 20 shares the
        # factor gcd(2, 4) = 2, so the GCD-reduced combination is
        # 1*(20 + z - 4x) + 2*(2x + 3y) = 6y + z + 20 directly — without
        # the reduction the intermediate would be twice that and only
        # re-normalisation would recover it.
        cons = [eq(V("x") * 2 + V("y") * 3), ge(V("z") - V("x") * 4 + 20)]
        out = eliminate_symbol(cons, "x")
        assert all(c.coeff("x") == 0 for c in out)
        [c] = out
        assert c.coeff("y") == 6 and c.coeff("z") == 1 and c.expr.const == 20

    def test_equality_gcd_reduction_matches_rational_semantics(self):
        # 6x == 2y (i.e. 3x == y) with 4x >= y - 8 and 4x <= y + 8.
        cons = [
            eq(V("x") * 6 - V("y") * 2),
            ge(V("x") * 4 - V("y") + 8),
            le(V("x") * 4, V("y") + 8),
        ]
        out = eliminate_symbol(cons, "x")
        assert all(c.coeff("x") == 0 for c in out)
        # Substituting x = y/3 rationally: 4y/3 >= y - 8 -> y >= -24 and
        # 4y/3 <= y + 8 -> y <= 24.
        for y, inside in ((-24, True), (0, True), (24, True), (-25, False), (25, False)):
            assert all(c.satisfied_by({"y": y}) for c in out) == inside

    def test_box_fast_path_matches_pairwise(self):
        # All bounds on x are single-symbol and the box is feasible: the
        # pairwise combinations are trivially true and the survivors are
        # exactly the constraints not involving x, in order.
        rest = [ge(V("y"), 1), le(V("y") + V("z"), 9)]
        cons = [ge(V("x")), rest[0], le(V("x"), 5), rest[1], le(V("x"), 7)]
        assert eliminate_symbol(cons, "x") == rest

    def test_box_fast_path_infeasible_emits_falsum(self):
        # lo > hi: the fast path must not fire, so the pairwise falsum
        # (here 1 - 3 = -2 >= 0) is emitted like always.
        cons = [ge(V("x"), 3), le(V("x"), 1), ge(V("y"))]
        out = eliminate_symbol(cons, "x")
        assert any(c.is_trivially_false() for c in out)

    def test_multi_symbol_elimination_order_independent(self):
        cons = [
            ge(V("x")), le(V("x"), 4),
            ge(V("y") - V("x")), le(V("y"), 6),
            ge(V("z") - V("y")), le(V("z"), 8),
        ]
        a = eliminate_symbols(cons, ["x", "y"])
        b = eliminate_symbols(cons, ["y", "x"])
        for probe in ({"z": 0}, {"z": 8}, {"z": -1}, {"z": 9}):
            assert all(c.satisfied_by(probe) for c in a) == all(
                c.satisfied_by(probe) for c in b
            )


class TestRationalFeasible:
    def test_feasible(self):
        assert rational_feasible([ge(V("x")), le(V("x"), 3)])

    def test_infeasible(self):
        assert not rational_feasible([ge(V("x"), 5), le(V("x"), 3)])

    def test_infeasible_via_combination(self):
        # x <= y, y <= z, z <= x - 1
        cons = [
            ge(V("y") - V("x")),
            ge(V("z") - V("y")),
            ge(V("x") - 1 - V("z")),
        ]
        assert not rational_feasible(cons)


class TestFindIntegerPoint:
    def test_simple_box(self):
        pt = find_integer_point([ge(V("x"), 2), le(V("x"), 2)])
        assert pt == {"x": 2}

    def test_respects_all_constraints(self):
        cons = [ge(V("x")), le(V("x"), 10), ge(V("y") - V("x"), 3), le(V("y"), 5)]
        pt = find_integer_point(cons)
        assert pt is not None
        assert all(c.satisfied_by(pt) for c in cons)

    def test_rational_but_not_integer(self):
        # 2x == 5: rationally feasible, integrally not (caught at
        # normalisation time by the gcd test)
        pt = find_integer_point([eq(V("x") * 2 - 5)])
        assert pt is None

    def test_integer_gap(self):
        # 1 <= 3x <= 2 has rational solutions only
        pt = find_integer_point([ge(V("x") * 3, 1), le(V("x") * 3, 2)])
        assert pt is None

    def test_negative_ranges(self):
        pt = find_integer_point([ge(V("x"), -7), le(V("x"), -5)])
        assert pt is not None and -7 <= pt["x"] <= -5


class TestBoundsForSymbol:
    def test_two_sided(self):
        cons = [ge(V("x"), 1), le(V("x"), 9)]
        assert bounds_for_symbol(cons, "x", {}) == (1, 9, True)

    def test_with_binding(self):
        cons = [ge(V("x") - V("y")), le(V("x"), 9)]
        lo, hi, _ = bounds_for_symbol(cons, "x", {"y": 4})
        assert (lo, hi) == (4, 9)

    def test_ceil_floor_rounding(self):
        # 3x >= 4  ->  x >= 2 (ceil)   ;   3x <= 8  ->  x <= 2 (floor)
        cons = [ge(V("x") * 3, 4), le(V("x") * 3, 8)]
        lo, hi, _ = bounds_for_symbol(cons, "x", {})
        assert (lo, hi) == (2, 2)

    def test_equality_pins(self):
        cons = [eq(V("x") - 7)]
        lo, hi, _ = bounds_for_symbol(cons, "x", {})
        assert (lo, hi) == (7, 7)

    def test_unbounded_sides(self):
        lo, hi, _ = bounds_for_symbol([ge(V("x"), 3)], "x", {})
        assert lo == 3 and hi is None


class TestIntervalPruning:
    def test_interval_bounds_from_single_symbol_constraints(self):
        cons = [ge(V("x"), 2), le(V("x"), 9), le(V("y"), 4)]
        b = interval_bounds(cons)
        assert b["x"] == (2, 9)
        assert b["y"] == (None, 4)

    def test_equality_pins_interval(self):
        b = interval_bounds([eq(V("x") - 3)])
        assert b["x"] == (3, 3)

    def test_implied_by_intervals_positive(self):
        # On the box 0 <= x <= 5, 0 <= y <= 5: x + y + 1 >= 0 holds.
        cons = [ge(V("x")), le(V("x"), 5), ge(V("y")), le(V("y"), 5)]
        assert implied_by_intervals(ge(V("x") + V("y") + 1), interval_bounds(cons))
        assert not implied_by_intervals(
            ge(V("x") + V("y") - 1), interval_bounds(cons)
        )

    def test_implied_requires_needed_bounds(self):
        # y is unbounded above, so x - y >= 0 cannot be interval-implied.
        cons = [ge(V("x")), le(V("x"), 5), ge(V("y"))]
        assert not implied_by_intervals(ge(V("x") - V("y")), interval_bounds(cons))

    def test_prune_keeps_solution_set(self):
        cons = [
            ge(V("x")),
            le(V("x"), 5),
            le(V("x"), 9),  # looser duplicate pattern
            ge(V("y")),
            le(V("y"), 3),
            ge(V("x") + V("y") + 2),  # implied by the box
        ]
        out = prune_implied_by_intervals(cons)
        assert len(out) < len(cons)
        for x in range(-1, 7):
            for y in range(-1, 5):
                pt = {"x": x, "y": y}
                assert all(c.satisfied_by(pt) for c in cons) == all(
                    c.satisfied_by(pt) for c in out
                )


class TestPruneRedundant:
    def test_drops_implied(self):
        cons = [ge(V("x")), le(V("x"), 5), le(V("x"), 50)]
        out = prune_redundant(cons)
        assert len(out) == 2
        assert all(c.satisfied_by({"x": 5}) for c in out)
        assert not all(c.satisfied_by({"x": 6}) for c in out)

    def test_keeps_equalities(self):
        cons = [eq(V("x") - 3), ge(V("x"))]
        out = prune_redundant(cons)
        assert any(c.kind == "==" for c in out)

    def test_symbols_helper(self):
        cons = [ge(V("a") + V("b")), le(V("c"), 3)]
        assert set(constraint_symbols(cons)) == {"a", "b", "c"}
