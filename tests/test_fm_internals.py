"""White-box tests of the Fourier–Motzkin and feasibility machinery."""


from repro.presburger import Constraint, V
from repro.presburger.fm import (
    bounds_for_symbol,
    constraint_symbols,
    eliminate_symbol,
    eliminate_symbols,
    find_integer_point,
    prune_redundant,
    rational_feasible,
)


def ge(lhs, rhs=0):
    return Constraint.ge(lhs, rhs)


def le(lhs, rhs):
    return Constraint.le(lhs, rhs)


def eq(lhs, rhs=0):
    return Constraint.eq(lhs, rhs)


class TestEliminateSymbol:
    def test_pairwise_combination(self):
        # x >= y and x <= z  ->  y <= z
        cons = [ge(V("x") - V("y")), ge(V("z") - V("x"))]
        out = eliminate_symbol(cons, "x")
        assert len(out) == 1
        assert out[0].satisfied_by({"y": 2, "z": 5})
        assert not out[0].satisfied_by({"y": 5, "z": 2})

    def test_equality_substitution_unit(self):
        # x == y + 1 and x <= 5  ->  y <= 4
        cons = [eq(V("x") - V("y") - 1), le(V("x"), 5)]
        out = eliminate_symbol(cons, "x")
        assert all(c.coeff("x") == 0 for c in out)
        assert all(c.satisfied_by({"y": 4}) for c in out)
        assert not all(c.satisfied_by({"y": 5}) for c in out)

    def test_equality_with_non_unit_coefficient(self):
        # 2x == y and 0 <= x <= 3  ->  0 <= y <= 6 (rationally)
        cons = [eq(V("x") * 2 - V("y")), ge(V("x")), le(V("x"), 3)]
        out = eliminate_symbol(cons, "x")
        assert all(c.coeff("x") == 0 for c in out)
        assert all(c.satisfied_by({"y": 6}) for c in out)
        assert not all(c.satisfied_by({"y": 7}) for c in out)

    def test_unconstrained_symbol_passthrough(self):
        cons = [ge(V("y"), 3)]
        assert eliminate_symbol(cons, "x") == cons

    def test_multi_symbol_elimination_order_independent(self):
        cons = [
            ge(V("x")), le(V("x"), 4),
            ge(V("y") - V("x")), le(V("y"), 6),
            ge(V("z") - V("y")), le(V("z"), 8),
        ]
        a = eliminate_symbols(cons, ["x", "y"])
        b = eliminate_symbols(cons, ["y", "x"])
        for probe in ({"z": 0}, {"z": 8}, {"z": -1}, {"z": 9}):
            assert all(c.satisfied_by(probe) for c in a) == all(
                c.satisfied_by(probe) for c in b
            )


class TestRationalFeasible:
    def test_feasible(self):
        assert rational_feasible([ge(V("x")), le(V("x"), 3)])

    def test_infeasible(self):
        assert not rational_feasible([ge(V("x"), 5), le(V("x"), 3)])

    def test_infeasible_via_combination(self):
        # x <= y, y <= z, z <= x - 1
        cons = [
            ge(V("y") - V("x")),
            ge(V("z") - V("y")),
            ge(V("x") - 1 - V("z")),
        ]
        assert not rational_feasible(cons)


class TestFindIntegerPoint:
    def test_simple_box(self):
        pt = find_integer_point([ge(V("x"), 2), le(V("x"), 2)])
        assert pt == {"x": 2}

    def test_respects_all_constraints(self):
        cons = [ge(V("x")), le(V("x"), 10), ge(V("y") - V("x"), 3), le(V("y"), 5)]
        pt = find_integer_point(cons)
        assert pt is not None
        assert all(c.satisfied_by(pt) for c in cons)

    def test_rational_but_not_integer(self):
        # 2x == 5: rationally feasible, integrally not (caught at
        # normalisation time by the gcd test)
        pt = find_integer_point([eq(V("x") * 2 - 5)])
        assert pt is None

    def test_integer_gap(self):
        # 1 <= 3x <= 2 has rational solutions only
        pt = find_integer_point([ge(V("x") * 3, 1), le(V("x") * 3, 2)])
        assert pt is None

    def test_negative_ranges(self):
        pt = find_integer_point([ge(V("x"), -7), le(V("x"), -5)])
        assert pt is not None and -7 <= pt["x"] <= -5


class TestBoundsForSymbol:
    def test_two_sided(self):
        cons = [ge(V("x"), 1), le(V("x"), 9)]
        assert bounds_for_symbol(cons, "x", {}) == (1, 9, True)

    def test_with_binding(self):
        cons = [ge(V("x") - V("y")), le(V("x"), 9)]
        lo, hi, _ = bounds_for_symbol(cons, "x", {"y": 4})
        assert (lo, hi) == (4, 9)

    def test_ceil_floor_rounding(self):
        # 3x >= 4  ->  x >= 2 (ceil)   ;   3x <= 8  ->  x <= 2 (floor)
        cons = [ge(V("x") * 3, 4), le(V("x") * 3, 8)]
        lo, hi, _ = bounds_for_symbol(cons, "x", {})
        assert (lo, hi) == (2, 2)

    def test_equality_pins(self):
        cons = [eq(V("x") - 7)]
        lo, hi, _ = bounds_for_symbol(cons, "x", {})
        assert (lo, hi) == (7, 7)

    def test_unbounded_sides(self):
        lo, hi, _ = bounds_for_symbol([ge(V("x"), 3)], "x", {})
        assert lo == 3 and hi is None


class TestPruneRedundant:
    def test_drops_implied(self):
        cons = [ge(V("x")), le(V("x"), 5), le(V("x"), 50)]
        out = prune_redundant(cons)
        assert len(out) == 2
        assert all(c.satisfied_by({"x": 5}) for c in out)
        assert not all(c.satisfied_by({"x": 6}) for c in out)

    def test_keeps_equalities(self):
        cons = [eq(V("x") - 3), ge(V("x"))]
        out = prune_redundant(cons)
        assert any(c.kind == "==" for c in out)

    def test_symbols_helper(self):
        cons = [ge(V("a") + V("b")), le(V("c"), 3)]
        assert set(constraint_symbols(cons)) == {"a", "b", "c"}
