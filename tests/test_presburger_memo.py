"""Tests of the presburger fast-path engine: LinExpr interning, the
operation memo tables, and their instrumentation wiring."""

import pickle

from repro import CompileOptions
from repro.core import optimize
from repro.pipelines import conv2d
from repro.presburger import (
    BasicSet,
    Constraint,
    SetSpace,
    V,
    memo,
    parse_map,
    parse_set,
)
from repro.presburger.linexpr import clear_intern_table, intern_table_size
from repro.service import instrument


def build_conv(h=16, w=16):
    return conv2d.build({"H": h, "W": w, "KH": 3, "KW": 3})


# -- interning -------------------------------------------------------------


class TestInterning:
    def test_structurally_equal_exprs_are_one_object(self):
        a = V("x") * 2 + V("y") - 3
        b = V("y") + V("x") * 2 - 3
        assert a == b
        assert a is b

    def test_arithmetic_identities_return_self(self):
        e = V("x") + 5
        assert e + 0 is e
        assert e * 1 is e
        assert e.substitute({"unrelated": 7}) is e
        assert e.rename({"unrelated": "zz"}) is e

    def test_intern_table_is_bounded_and_clearable(self):
        e = V("intern_probe") + 12345
        assert intern_table_size() > 0
        clear_intern_table()
        # Equality survives clearing (falls back to structural comparison).
        f = V("intern_probe") + 12345
        assert e == f and hash(e) == hash(f)

    def test_coeffs_view_matches_terms(self):
        e = V("b") * 4 - V("a") + 7
        assert e.coeffs == {"b": 4, "a": -1}
        assert e.const == 7
        assert e.coeff("b") == 4 and e.coeff("missing") == 0

    def test_pickle_round_trip_is_portable(self):
        # LinExpr pickles by *name*, not by process-local symbol id.
        e = V("h") * 3 - V("w") + 2
        c = Constraint.ge(e)
        s = parse_set("[N] -> { S[i, j] : 0 <= i < N and 0 <= j < 10 }")
        for obj in (e, c, s):
            clone = pickle.loads(pickle.dumps(obj))
            assert clone == obj
        assert pickle.loads(pickle.dumps(e)).coeffs == e.coeffs


# -- memo tables -----------------------------------------------------------


class TestMemoTables:
    def test_hit_returns_identical_object(self):
        memo.clear_all()
        a = parse_map("{ S[i] -> A[i + 1] : 0 <= i < 10 }").pieces[0]
        b = parse_map("{ A[a] -> B[a - 1] : 1 <= a < 11 }").pieces[0]
        first = a.apply_range(b)
        again = a.apply_range(b)
        assert again is first

    def test_structural_twins_share_results(self):
        memo.clear_all()
        a1 = parse_map("{ S[i] -> A[i] : 0 <= i < 8 }").pieces[0]
        a2 = parse_map("{ S[i] -> A[i] : 0 <= i < 8 }").pieces[0]
        assert a1 is not a2
        assert a1.reverse() is a2.reverse()

    def test_miss_then_hit_counting(self):
        memo.clear_all()
        t = memo.table("project_out")
        space = SetSpace("S", ("i", "j"))
        s = BasicSet(
            space,
            [
                Constraint.ge(V("i")),
                Constraint.le(V("i"), 5),
                Constraint.ge(V("j")),
                Constraint.le(V("j"), 5),
            ],
        )
        h0, m0 = t.hits, t.misses
        s.project_out(["j"])
        assert (t.hits, t.misses) == (h0, m0 + 1)
        s.project_out(["j"])
        assert (t.hits, t.misses) == (h0 + 1, m0 + 1)

    def test_clear_all_empties_every_table(self):
        s = parse_set("{ P[x] : 0 <= x < 4 }").pieces[0]
        s.project_out(["x"])
        assert any(len(t) > 0 for t in (memo.table("project_out"),))
        memo.clear_all()
        assert len(memo.table("project_out")) == 0
        # stats() survives clearing (counters are cumulative).
        assert "project_out" in memo.stats()

    def test_cached_none_is_distinguished_from_miss(self):
        t = memo.table("_test_none")
        t.put(("k",), None)
        assert t.get(("k",)) is None
        assert t.get(("absent",)) is memo.MISS

    def test_read_relations_repeats_return_same_object(self):
        prog = build_conv()
        stmt = prog.statement(prog.statement_names[0])
        assert stmt.read_relations() is stmt.read_relations()

    def test_basic_map_semantics_survive_memoization(self):
        memo.clear_all()
        m = parse_map("{ S[i] -> A[i + 2] : 0 <= i < 6 }").pieces[0]
        r = m.reverse()
        assert r.space == m.space.reversed()
        assert r.reverse().constraints == m.constraints
        i = m.intersect(m.add_constraints([Constraint.ge(V("i"), 1)]))
        assert i.domain().contains({"i": 1})
        assert not i.domain().contains({"i": 0})


# -- instrumentation wiring ------------------------------------------------


class TestStatsWiring:
    def test_optimize_reports_memo_counters(self):
        prog = build_conv()
        with instrument.collect() as report:
            optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        hits = [k for k in report.counters if k.startswith("presburger.memo.")]
        assert hits, "no presburger.memo.* counters reached the collector"

    def test_memo_stats_shape(self):
        st = memo.stats()
        for entry in st.values():
            assert set(entry) >= {"hits", "misses", "size", "evictions"}
