"""Tests for the analytical machine models and cost analyzer."""

import pytest

from repro import CompileOptions
from repro.core import optimize
from repro.machine import (
    ConvLayer,
    CPUSpec,
    DEFAULT_CPU,
    analyze_optimized,
    analyze_scheduled,
    conv_bn_time,
    cpu_time,
    gpu_time,
    network_time,
)
from repro.machine.cpu import cluster_time as cpu_cluster_time
from repro.pipelines import conv2d
from repro.scheduler import MAXFUSE, MINFUSE, SMARTFUSE, schedule_program

PARAMS = {"H": 256, "W": 256, "KH": 3, "KW": 3}


@pytest.fixture(scope="module")
def prog():
    return conv2d.build(PARAMS)


@pytest.fixture(scope="module")
def works(prog):
    res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(32, 32)))
    ours = analyze_optimized(res)
    byh = {}
    for h in (MINFUSE, SMARTFUSE, MAXFUSE):
        byh[h] = analyze_scheduled(schedule_program(prog, h), (32, 32))
    return ours, byh


class TestAnalyzer:
    def test_ours_single_cluster(self, works):
        ours, _ = works
        assert len(ours.clusters) == 1

    def test_recomputation_counted(self, works):
        ours, _ = works
        assert ours.total_recompute() > 0

    def test_minfuse_has_more_clusters(self, works):
        _, byh = works
        assert len(byh[MINFUSE].clusters) == 4
        assert len(byh[SMARTFUSE].clusters) == 2

    def test_fusion_reduces_dram_traffic(self, works):
        ours, byh = works
        assert ours.total_dram_bytes() < byh[SMARTFUSE].total_dram_bytes()
        assert byh[SMARTFUSE].total_dram_bytes() < byh[MINFUSE].total_dram_bytes()

    def test_maxfuse_loses_parallelism(self, works):
        _, byh = works
        assert all(c.n_parallel_dims == 0 for c in byh[MAXFUSE].clusters)

    def test_scratch_sized_to_footprint(self, works):
        ours, _ = works
        c = ours.clusters[0]
        # promoted A halo buffer: (32+2) x (32+2) doubles
        assert c.scratch_bytes_per_tile == 34 * 34 * 8


class TestCPUModel:
    def test_ordering_matches_paper(self, works):
        ours, byh = works
        t = {h: cpu_time(w, 32) for h, w in byh.items()}
        t["ours"] = cpu_time(ours, 32)
        assert t["ours"] < t[SMARTFUSE] < t[MINFUSE]
        assert t["ours"] < t[MAXFUSE]

    def test_parallel_scaling(self, works):
        ours, _ = works
        t1 = cpu_time(ours, 1)
        t32 = cpu_time(ours, 32)
        assert t32 < t1
        # memory-bound at scale: bandwidth saturation caps the speedup
        assert t1 / t32 > 2

    def test_maxfuse_does_not_scale(self, works):
        _, byh = works
        assert cpu_time(byh[MAXFUSE], 32) == pytest.approx(
            cpu_time(byh[MAXFUSE], 1)
        )

    def test_scratch_spill_penalty(self, works):
        ours, _ = works
        c = ours.clusters[0]
        tiny_cache = CPUSpec(scratch_capacity_bytes=64)
        assert cpu_cluster_time(c, 32, tiny_cache) > cpu_cluster_time(
            c, 32, DEFAULT_CPU
        )

    def test_more_threads_never_slower(self, works):
        ours, _ = works
        times = [cpu_time(ours, t) for t in (1, 4, 16, 32)]
        assert times == sorted(times, reverse=True)


class TestGPUModel:
    def test_fused_beats_unfused(self, works):
        ours, byh = works
        assert gpu_time(ours) < gpu_time(byh[MINFUSE])

    def test_maxfuse_collapses_on_gpu(self, works):
        ours, byh = works
        assert gpu_time(byh[MAXFUSE]) > 5 * gpu_time(ours)


class TestNPUModel:
    LAYER = ConvLayer("res2a", n=32, h=56, w=56, c_in=64, c_out=64, k=3)

    def test_fused_faster(self):
        fused = conv_bn_time(self.LAYER, fused=True)
        unfused = conv_bn_time(self.LAYER, fused=False)
        assert fused < unfused

    def test_fusion_speedup_band(self):
        """Per-pair speedup should land in the ballpark of the paper's
        1.72x for memory-bound layers."""
        fused = conv_bn_time(self.LAYER, fused=True)
        unfused = conv_bn_time(self.LAYER, fused=False)
        assert 1.2 < unfused / fused < 3.0

    def test_network_time_additive(self):
        layers = [self.LAYER] * 3
        assert network_time(layers, True) == pytest.approx(
            3 * conv_bn_time(self.LAYER, True)
        )
        assert network_time(layers, True, other_ops_seconds=1.0) > 1.0
