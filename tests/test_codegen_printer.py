"""Tests for the OpenMP/CUDA printing backend and buffer promotion."""

import pytest

from repro import CompileOptions
from repro.codegen import print_tree, promoted_buffers, total_scratch_bytes
from repro.core import optimize
from repro.pipelines import conv2d, unsharp_mask
from repro.scheduler import SMARTFUSE, schedule_program

PARAMS = {"H": 16, "W": 16, "KH": 3, "KW": 3}


@pytest.fixture(scope="module")
def result():
    return optimize(conv2d.build(PARAMS), CompileOptions(target="cpu", tile_sizes=(4, 4)))


class TestOpenMPPrinter:
    def test_untiled_tree_prints_loops(self):
        prog = conv2d.build(PARAMS)
        sched = schedule_program(prog, SMARTFUSE)
        code = print_tree(sched.tree, prog, style="openmp")
        assert "#pragma omp parallel for" in code
        assert "for (int" in code
        assert "S2(" in code

    def test_tiled_tree_has_tile_loops(self, result):
        code = print_tree(result.tree, result.program, style="openmp")
        assert "+= 4" in code  # tile loops step by the tile size
        assert "S0(" in code   # the fused quantisation appears inside

    def test_skipped_subtree_not_generated(self, result):
        code = print_tree(result.tree, result.program, style="openmp")
        assert "subtree skipped" in code
        # S0 appears exactly once (under the extension), not twice
        assert code.count("S0(") == 1

    def test_extension_comment_present(self, result):
        code = print_tree(result.tree, result.program, style="openmp")
        assert "extension: per-tile instances of S0" in code

    def test_parallel_pragma_on_outer_loop_only(self, result):
        code = print_tree(result.tree, result.program, style="openmp")
        assert code.count("#pragma omp parallel for") == 1

    def test_ceild_macro_defined(self, result):
        code = print_tree(result.tree, result.program, style="openmp")
        assert "#define ceild" in code


class TestCUDAPrinter:
    def test_block_thread_mapping(self):
        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="gpu", tile_sizes=(4, 4)))
        code = print_tree(res.tree, prog, style="cuda")
        assert "blockIdx.x" in code
        assert "threadIdx" in code


class TestPromotion:
    def test_conv2d_promotes_quantised_input(self, result):
        buffers = promoted_buffers(result)
        assert len(buffers) == 1
        (bufs,) = buffers.values()
        names = [b.tensor for b in bufs]
        assert names == ["A"]
        # 4x4 tile reading a 3x3 stencil: (4+2) x (4+2) halo box
        assert bufs[0].box_shape == (6, 6)
        assert bufs[0].exact_elems == 36
        assert bufs[0].over_approximation == 1.0

    def test_total_scratch_bytes(self, result):
        (bufs,) = promoted_buffers(result).values()
        assert total_scratch_bytes(bufs) == 36 * 8

    def test_unsharp_promotes_blur_x(self):
        """blur_y/sharpen/masked form the live-out group (their values stay
        in registers/cache anyway); the fused blur_x stage's output gets a
        per-tile scratch buffer."""
        prog = unsharp_mask.build(64)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        (bufs,) = promoted_buffers(res).values()
        assert [b.tensor for b in bufs] == ["t_blurx"]
        assert bufs[0].exact_elems > 0
