"""Distributed tracing and live telemetry across the compile fabric.

Covers the acceptance criteria of the observability tentpole: a trace
context round-trips through every serialized form (header, wire field,
worker environment), requests over unix and TCP sockets carry it and get
the daemon's span tree back under the same ``trace_id``, requests
*without* the field still validate (back-compat), batch workers re-parent
their span trees under the originating request, the HTTP store server
echoes and logs ``X-Repro-Trace``, the event log and sample ring stay
bounded, sampling decisions gate payload work, and the stitching /
critical-path analysis the ``repro trace`` / ``repro profile`` CLIs rely
on produce valid Chrome traces.
"""

import gzip
import json
import os
import threading
import time
import urllib.request

import pytest

from repro.obs import distributed
from repro.obs.distributed import (
    HEADER,
    TraceContext,
    critical_path,
    derive_store_stream,
    new_context,
    report_to_wire,
    stitch,
    stitch_event_logs,
    stream_from_report,
    validate_trace_field,
    wire_to_events,
)
from repro.obs.events import EventLog, SampleRing, validate_event_log
from repro.obs.schema import validate_chrome_trace
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread
from repro.service import CompileCache, instrument


# -- trace context ---------------------------------------------------------


def test_context_header_round_trip():
    ctx = new_context()
    assert len(ctx.trace_id) == 32 and len(ctx.span_id) == 16
    back = TraceContext.from_header(ctx.to_header())
    assert back == ctx
    off = TraceContext.from_header(ctx.to_header())
    assert off.sampled is True
    unsampled = new_context(sampled=False)
    assert TraceContext.from_header(unsampled.to_header()).sampled is False


def test_context_header_rejects_garbage():
    assert TraceContext.from_header(None) is None
    assert TraceContext.from_header("") is None
    assert TraceContext.from_header("00-zz-1234-01") is None
    assert TraceContext.from_header("totally wrong") is None


def test_context_wire_round_trip_and_validation():
    ctx = new_context(sampled=False)
    wire = ctx.to_wire()
    assert validate_trace_field(wire) == []
    assert TraceContext.from_wire(wire) == ctx
    assert TraceContext.from_wire(None) is None
    assert validate_trace_field({"trace_id": "xyz"})
    assert validate_trace_field("not a dict")


def test_context_env_round_trip():
    ctx = new_context()
    env = {distributed.ENV_VAR: ctx.to_header()}
    assert distributed.context_from_env(env) == ctx
    assert distributed.context_from_env({}) is None


def test_ambient_context_nests_and_tolerates_none():
    assert distributed.current_context() is None
    ctx = new_context()
    with distributed.use_context(None):
        assert distributed.current_context() is None
    with distributed.use_context(ctx):
        assert distributed.current_context() == ctx
        inner = new_context()
        with distributed.use_context(inner):
            assert distributed.current_context() == inner
        assert distributed.current_context() == ctx
    assert distributed.current_context() is None


# -- wire spans ------------------------------------------------------------


def _traced_report():
    with instrument.collect(trace=True) as report:
        with instrument.span("outer", phase="demo"):
            instrument.count("presburger.memo.hit", 3)
            with instrument.span("inner"):
                instrument.count("presburger.memo.hit", 2)
                instrument.count("other.counter")
    return report


def test_report_to_wire_round_trip():
    report = _traced_report()
    ctx = new_context()
    wire = json.loads(json.dumps(report_to_wire(report, "daemon", ctx)))
    assert wire["schema"] == distributed.WIRE_SCHEMA
    assert wire["service"] == "daemon"
    assert wire["trace_id"] == ctx.trace_id
    assert wire["parent_span_id"] == ctx.span_id
    events = wire_to_events(wire)
    by_name = {e.name: e for e in events}
    assert by_name["inner"].parent == by_name["outer"].id
    # Dictionary-encoded per-span counters decode back to full names.
    assert by_name["inner"].counters == {
        "presburger.memo.hit": 2, "other.counter": 1,
    }
    assert by_name["outer"].counters == {"presburger.memo.hit": 3}
    # Compact thread ids: small lane indices, not OS thread idents.
    assert all(s["tid"] < 8 for s in wire["spans"])


def test_report_to_wire_caps_spans():
    with instrument.collect(trace=True) as report:
        for i in range(20):
            with instrument.span(f"s{i}"):
                pass
    wire = report_to_wire(report, "daemon", limit=5)
    assert len(wire["spans"]) == 5
    assert wire["truncated"] == 15


def test_stitch_produces_valid_chrome_trace():
    report = _traced_report()
    ctx = new_context()
    stream = stream_from_report(report, "client", ctx)
    obj = stitch([stream], trace_id=ctx.trace_id)
    assert validate_chrome_trace(obj) == []
    xs = [e for e in obj["traceEvents"] if e.get("ph") == "X"]
    assert xs and all(e["args"]["trace_id"] == ctx.trace_id for e in xs)
    # Counter attribution survives into the Perfetto args panel.
    inner = next(e for e in xs if e["name"] == "inner")
    assert inner["args"]["counter.presburger.memo.hit"] == 2
    assert obj["otherData"]["services"] == ["client"]


def test_stitch_rebases_streams_onto_shared_timeline():
    mk = lambda t0, name: {
        "schema": distributed.WIRE_SCHEMA,
        "service": name,
        "wall_t0": t0,
        "spans": [{"id": 1, "parent": None, "name": "work",
                   "start": 0.0, "dur": 0.5, "tid": 0, "attrs": {}}],
        "dropped": 0, "truncated": 0,
    }
    obj = stitch([mk(100.0, "a"), mk(101.0, "b")], trace_id="f" * 32)
    xs = sorted(
        (e for e in obj["traceEvents"] if e.get("ph") == "X"),
        key=lambda e: e["ts"],
    )
    assert xs[0]["ts"] == 0.0
    assert xs[1]["ts"] == pytest.approx(1e6)  # one second later, in us
    pids = {e["pid"] for e in xs}
    assert len(pids) == 2


def test_derive_store_stream_centers_server_span():
    stream = {
        "schema": distributed.WIRE_SCHEMA,
        "service": "daemon",
        "wall_t0": 50.0,
        "spans": [
            {"id": 1, "parent": None, "name": "store.get", "start": 1.0,
             "dur": 0.010, "tid": 0, "attrs": {"server_ms": 4.0}},
            {"id": 2, "parent": None, "name": "optimize", "start": 0.0,
             "dur": 2.0, "tid": 0, "attrs": {}},
        ],
        "dropped": 0, "truncated": 0,
    }
    store = derive_store_stream(stream)
    assert store["service"] == "store"
    (span,) = store["spans"]
    assert span["name"] == "store.get.server"
    assert span["dur"] == pytest.approx(0.004)
    assert span["start"] == pytest.approx(1.003)  # centered in the client span
    assert "server_ms" not in span["attrs"]
    # No store spans -> no synthetic stream.
    assert derive_store_stream({"spans": [], "wall_t0": 0.0}) is None


# -- critical path ---------------------------------------------------------


def test_critical_path_longest_chain():
    nodes = {"a": 1.0, "b": 2.0, "c": 0.5}
    edges = [("a", "b", 0.1), ("a", "c", 5.0)]
    total, path = critical_path(nodes, edges)
    assert path == ["a", "c"]
    assert total == pytest.approx(1.0 + 5.0 + 0.5)


def test_critical_path_cycle_raises():
    with pytest.raises(ValueError):
        critical_path({"a": 1.0, "b": 1.0}, [("a", "b", 0.0), ("b", "a", 0.0)])


# -- event log and sample ring ---------------------------------------------


def test_event_log_bounded_tail_and_rotation(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(path=path, max_bytes=2000, cap=5)
    ctx = new_context()
    for i in range(20):
        log.emit("tick", trace=ctx, i=i)
    stats = log.stats()
    assert stats["buffered"] == 5
    assert stats["dropped"] == 15
    assert stats["written"] == 20
    assert stats["rotations"] >= 1
    assert os.path.exists(path + ".1")
    with open(path) as f:
        assert validate_event_log(f) == []
    rec = log.recent(1)[0]
    assert rec["trace_id"] == ctx.trace_id
    log.close()


def test_event_log_recent_filters_trace_records():
    log = EventLog()
    log.emit("started")
    log.emit_trace({"schema": distributed.WIRE_SCHEMA, "spans": []})
    assert len(log.recent()) == 2
    only_events = log.recent(type="event")
    assert [r["event"] for r in only_events] == ["started"]


def test_event_log_rejects_unknown_level():
    with pytest.raises(ValueError):
        EventLog().emit("boom", level="fatal")


def test_sample_ring_since_and_missed():
    ring = SampleRing(capacity=3)
    for i in range(5):
        ring.add({"i": i})
    assert len(ring) == 3
    fresh, missed = ring.since(0)
    assert [s["i"] for s in fresh] == [2, 3, 4]
    assert missed == 0  # since=0 means "from the beginning", nothing missed
    fresh, missed = ring.since(1)
    assert [s["i"] for s in fresh] == [2, 3, 4]
    assert missed == 1  # sample 2 (seq 2) evicted... seq 2 retained; seq<=2 gone
    fresh, _ = ring.since(4)
    assert [s["seq"] for s in fresh] == [5]


# -- serve integration -----------------------------------------------------


def _config(tmp_path, **kw):
    kw.setdefault("socket_path", str(tmp_path / "serve.sock"))
    kw.setdefault("cache", CompileCache(cache_dir=str(tmp_path / "cache")))
    return ServeConfig(**kw)


def test_unix_round_trip_carries_context(tmp_path):
    config = _config(tmp_path, events_path=str(tmp_path / "events.jsonl"))
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as client:
            ctx = client.new_trace(sampled=True)
            out = client.compile("conv2d", size=16, trace=ctx)
            assert out["trace"]["trace_id"] == ctx.trace_id
            assert out["trace"]["parent_span_id"] == ctx.span_id
            events = wire_to_events(out["trace"])
            names = {e.name for e in events}
            assert "serve.request" in names
            root = next(e for e in events if e.name == "serve.request")
            assert root.attrs["trace_id"] == ctx.trace_id
            # The compile pipeline hangs under the request span.
            opt = next(e for e in events if e.name == "optimize")
            assert opt.parent is not None
    # The daemon's event log carries the request lifecycle and the trace
    # record repro trace --request stitches from.
    with open(config.events_path) as f:
        records = [json.loads(line) for line in f if line.strip()]
    kinds = {r.get("event") for r in records if r["type"] == "event"}
    assert "request.received" in kinds and "request.completed" in kinds
    traces = [r for r in records if r["type"] == "trace"]
    assert any(r.get("trace_id") == ctx.trace_id for r in traces)


def test_tcp_round_trip_carries_context(tmp_path):
    config = _config(
        tmp_path, socket_path=None, host="127.0.0.1", port=0
    )
    with ServerThread(config) as st:
        host, port = st.server.tcp_address
        with ServeClient(host=host, port=port) as client:
            ctx = client.new_trace(sampled=True)
            out = client.compile("conv2d", size=16, trace=ctx)
            assert out["trace"]["trace_id"] == ctx.trace_id


def test_request_without_trace_field_still_validates(tmp_path):
    req = protocol.request("compile", {"workload": "conv2d"})
    assert "trace" not in req["params"]
    assert protocol.validate_request(req) == []
    config = _config(tmp_path)
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as client:
            out = client.compile("conv2d", size=16)
            assert "trace" not in out


def test_protocol_rejects_bad_trace_field():
    bad = protocol.request(
        "compile", {"workload": "x", "trace": {"trace_id": "nope"}}
    )
    assert protocol.validate_request(bad)
    good = protocol.request(
        "compile", {"workload": "x", "trace": new_context().to_wire()}
    )
    assert protocol.validate_request(good) == []


def test_unsampled_request_returns_no_payload(tmp_path):
    config = _config(tmp_path)
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as client:
            out = client.compile(
                "conv2d", size=16, trace=client.new_trace(sampled=False)
            )
            assert "trace" not in out
            snap = client.stats()
            assert snap["counters"].get("serve.trace_sampled", 0) == 0


def test_trace_sample_zero_suppresses_daemon_tracing(tmp_path):
    config = _config(tmp_path, trace_sample=0.0)
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as client:
            out = client.compile(
                "conv2d", size=16, trace=client.new_trace(sampled=True)
            )
            assert "trace" not in out
            snap = client.stats()
            assert snap["counters"]["serve.trace_sampled_out"] == 1


def test_watch_returns_ring_samples(tmp_path):
    config = _config(tmp_path, sample_interval=0.05)
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as client:
            client.compile("conv2d", size=16)
            deadline = time.monotonic() + 5
            samples = []
            while time.monotonic() < deadline and not samples:
                reply = client.watch(since=0)
                samples = reply["samples"]
                time.sleep(0.02)
            assert samples, "no telemetry samples within 5s"
            s = samples[-1]
            for key in ("req_per_s", "dedup_rate", "compile_p50_ms",
                        "compile_p99_ms", "active_flights", "seq"):
                assert key in s
            # Incremental poll: nothing new until the next tick.
            reply = client.watch(since=s["seq"])
            assert all(x["seq"] > s["seq"] for x in reply["samples"])
            # Lifecycle events ride along, wire-span records do not.
            assert all(
                r.get("type") == "event" for r in reply["recent_events"]
            )


# -- batch workers re-parent under the request span ------------------------


def test_process_worker_spans_reparent_under_request(tmp_path):
    from repro.api import CompileOptions, CompileRequest, compile_batch
    from repro.pipelines import conv2d

    prog = conv2d.build({"H": 24, "W": 24, "KH": 3, "KW": 3})
    reqs = [CompileRequest(prog, tile_sizes=(t, t)) for t in (4, 8)]
    ctx = new_context()
    try:
        with distributed.use_context(ctx):
            with instrument.collect(trace=True) as report:
                outs = compile_batch(
                    reqs, options=CompileOptions(mode="process", jobs=2)
                )
    except (OSError, PermissionError) as exc:  # pragma: no cover
        pytest.skip(f"no process pool in this sandbox: {exc}")
    assert all(o.ok for o in outs)
    assert report.counters.get("driver.worker_reports_merged") == 2
    by_id = {e.id: e for e in report.events}
    batch = next(e for e in report.events if e.name == "compile_batch")
    workers = [e for e in report.events if e.name == "compile_worker"]
    assert len(workers) == 2
    for w in workers:
        # Re-parented under the driver's batch span, stamped with the
        # originating request's trace ids.
        assert w.parent == batch.id
        assert w.attrs["trace_id"] == ctx.trace_id
        assert w.attrs["parent_span_id"] == ctx.span_id
        assert w.parent in by_id


# -- store server trace propagation ----------------------------------------


def test_store_server_echoes_and_logs_trace_header(tmp_path):
    from repro.service.stores import HTTPStore, StoreServer

    events_path = str(tmp_path / "store-events.jsonl")
    with StoreServer(str(tmp_path / "remote"), events_path=events_path) as srv:
        ctx = new_context()
        store = HTTPStore(srv.url)
        with distributed.use_context(ctx):
            store.put("results", "deadbeef" * 8, b"payload")
            assert store.get("results", "deadbeef" * 8) == b"payload"
        # The header is echoed back on the raw response.
        req = urllib.request.Request(
            f"{srv.url}/cache/results/{'deadbeef' * 8}",
            headers={HEADER: ctx.to_header()},
        )
        with urllib.request.urlopen(req, timeout=5) as resp:
            assert resp.headers[HEADER] == ctx.to_header()
            assert float(resp.headers[distributed.SERVER_MS_HEADER]) >= 0.0
    with open(events_path) as f:
        records = [json.loads(line) for line in f if line.strip()]
    assert any(r.get("trace_id") == ctx.trace_id for r in records)
    trace_recs = [r for r in records if r["type"] == "trace"]
    assert any(r.get("trace_id") == ctx.trace_id for r in trace_recs)


def test_http_store_spans_carry_server_ms(tmp_path):
    from repro.service.stores import HTTPStore, StoreServer

    with StoreServer(str(tmp_path / "remote")) as srv:
        store = HTTPStore(srv.url)
        ctx = new_context()
        with distributed.use_context(ctx):
            with instrument.collect(trace=True) as report:
                store.put("results", "cafebabe" * 8, b"v")
                store.get("results", "cafebabe" * 8)
    spans = [e for e in report.events if e.name.startswith("store.")]
    assert spans
    assert any("server_ms" in e.attrs for e in spans)
    # Those annotations are exactly what derive_store_stream consumes.
    stream = stream_from_report(report, "daemon", ctx)
    assert derive_store_stream(stream) is not None


# -- end-to-end stitching (daemon + store lanes from disk) -----------------


def test_stitch_event_logs_reassembles_request(tmp_path):
    daemon_log = str(tmp_path / "daemon.jsonl")
    store_log = str(tmp_path / "store.jsonl")
    ctx = new_context()
    report = _traced_report()
    EventLog(path=daemon_log).emit_trace(
        report_to_wire(report, "daemon", ctx)
    )
    store_report = _traced_report()
    EventLog(path=store_log).emit_trace(
        report_to_wire(store_report, "store", ctx)
    )
    # A foreign trace in the same log must not leak in.
    EventLog(path=daemon_log).emit_trace(
        report_to_wire(_traced_report(), "daemon", new_context())
    )
    obj, streams = stitch_event_logs([daemon_log, store_log], ctx.trace_id)
    assert streams == 2
    assert validate_chrome_trace(obj) == []
    assert obj["otherData"]["trace_id"] == ctx.trace_id
    xs = [e for e in obj["traceEvents"] if e.get("ph") == "X"]
    assert all(e["args"]["trace_id"] == ctx.trace_id for e in xs)
    services = set(obj["otherData"]["services"])
    assert services == {"daemon", "store"}


# -- CLI -------------------------------------------------------------------


def test_cli_trace_request_stitches_from_logs(tmp_path, capsys):
    from repro.__main__ import main

    log_path = str(tmp_path / "daemon.jsonl")
    ctx = new_context()
    EventLog(path=log_path).emit_trace(
        report_to_wire(_traced_report(), "daemon", ctx)
    )
    out_path = str(tmp_path / "stitched.json")
    rc = main([
        "trace", "--request", ctx.trace_id,
        "--log", log_path, "-o", out_path,
    ])
    assert rc == 0
    with open(out_path) as f:
        obj = json.load(f)
    assert validate_chrome_trace(obj) == []
    # Unknown trace id: error, nothing stitched.
    rc = main([
        "trace", "--request", "0" * 32, "--log", log_path,
        "-o", str(tmp_path / "nope.json"),
    ])
    assert rc == 1


def test_cli_client_compile_trace_writes_stitched_file(tmp_path, capsys):
    from repro.__main__ import main

    config = _config(tmp_path)
    out_path = str(tmp_path / "stitched.json")
    with ServerThread(config):
        rc = main([
            "client", "--socket", config.socket_path,
            "compile", "conv2d", "--size", "16", "--trace", out_path,
        ])
    assert rc == 0
    with open(out_path) as f:
        obj = json.load(f)
    assert validate_chrome_trace(obj) == []
    services = set(obj["otherData"]["services"])
    assert {"client", "daemon"} <= services
    trace_id = obj["otherData"]["trace_id"]
    xs = [e for e in obj["traceEvents"] if e.get("ph") == "X"]
    assert xs and all(e["args"]["trace_id"] == trace_id for e in xs)


def test_cli_top_once_renders_dashboard(tmp_path, capsys):
    from repro.__main__ import main

    config = _config(tmp_path, sample_interval=0.05)
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as client:
            client.compile("conv2d", size=16)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if client.watch(since=0)["samples"]:
                    break
                time.sleep(0.02)
        rc = main(["top", "--socket", config.socket_path, "--once"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "req/s" in text
    assert "p50" in text and "p99" in text


def test_cli_client_stats_watch_prints_deltas(tmp_path, capsys):
    from repro.__main__ import main

    config = _config(tmp_path)
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as client:
            client.compile("conv2d", size=16)
        rc = main([
            "client", "--socket", config.socket_path,
            "stats", "--watch", "--interval", "0.05", "--count", "2",
        ])
    assert rc == 0
    assert capsys.readouterr().out.strip()


def test_cli_profile_critical_path(capsys):
    from repro.__main__ import main

    rc = main([
        "profile", "conv2d", "--size", "8", "--critical-path",
        "--targets", "cpu,gpu",
    ])
    assert rc == 0
    text = capsys.readouterr().out
    assert "critical path" in text.lower()
    assert "measured" in text and "modeled" in text
