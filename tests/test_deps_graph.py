"""Tests for the dependence-graph utilities and the CLI."""

import pytest

from repro import CompileOptions
from repro.__main__ import main as cli_main
from repro.deps.graph import critical_path, dependence_graph, stage_levels, to_dot
from repro.core import optimize
from repro.pipelines import conv2d, harris, unsharp_mask


class TestDependenceGraph:
    def test_conv2d_edges(self):
        prog = conv2d.build({"H": 8, "W": 8})
        g = dependence_graph(prog)
        assert g.has_edge("S0", "S2")
        assert g.has_edge("S1", "S2")
        assert g.has_edge("S2", "S3")
        assert not g.has_edge("S3", "S0")

    def test_stage_levels(self):
        prog = unsharp_mask.build(32)
        levels = stage_levels(prog)
        names = prog.statement_names
        assert levels[names[0]] == 0          # blur_x
        assert levels[names[1]] == 1          # blur_y
        assert levels[names[3]] > levels[names[2]] or levels[names[3]] >= 2

    def test_critical_path_depth(self):
        prog = harris.build(32)
        path = critical_path(prog)
        # gray -> Ix -> Ixx -> Sxx -> resp -> thresh is length 6
        assert len(path) >= 6

    def test_dot_export(self):
        prog = conv2d.build({"H": 8, "W": 8})
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
        dot = to_dot(prog, clusters=res.fusion_summary())
        assert dot.startswith("digraph")
        assert "subgraph cluster_0" in dot
        assert '"S0" -> "S2"' in dot


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "unsharp_mask" in out
        assert "equake" in out

    def test_optimize_conv2d(self, capsys):
        assert cli_main(["optimize", "conv2d", "--size", "16", "--tile", "4", "4"]) == 0
        out = capsys.readouterr().out
        assert "fusion:" in out
        assert "S0" in out

    def test_code_openmp(self, capsys):
        assert cli_main(["code", "conv2d", "--size", "16", "--tile", "4", "4"]) == 0
        out = capsys.readouterr().out
        assert "#pragma omp parallel for" in out

    def test_code_cuda(self, capsys):
        assert cli_main(
            ["code", "conv2d", "--size", "16", "--tile", "4", "4", "--target", "gpu"]
        ) == 0
        out = capsys.readouterr().out
        assert "__syncthreads();" in out

    def test_time_table(self, capsys):
        assert cli_main(["time", "2mm", "--size", "64", "--tile", "8", "8"]) == 0
        out = capsys.readouterr().out
        assert "ours" in out
        assert "smartfuse" in out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            cli_main(["optimize", "nonsense"])
