"""Tests for the tile-size auto-tuner."""

import pytest

from repro import CompileOptions
from repro.core import optimize
from repro.machine import analyze_optimized, cpu_time
from repro.pipelines import unsharp_mask
from repro.scheduler.autotune import autotune_tile_sizes, _combinations


class TestCombinations:
    def test_two_dims(self):
        combos = _combinations([8, 16], 2)
        assert set(combos) == {(8, 8), (8, 16), (16, 8), (16, 16)}

    def test_one_dim(self):
        assert _combinations([8, 16], 1) == [(8,), (16,)]


class TestAutotune:
    @pytest.fixture(scope="class")
    def tuned(self):
        prog = unsharp_mask.build(256)
        return prog, autotune_tile_sizes(prog, options=CompileOptions(target="cpu", mode="serial"), threads=32, candidates=(8, 32, 128))

    def test_search_covers_grid(self, tuned):
        _prog, result = tuned
        assert len(result.evaluations) + len(result.failures) == 9

    def test_best_is_minimum(self, tuned):
        _prog, result = tuned
        assert result.best_time == min(result.evaluations.values())
        assert result.evaluations[result.best_sizes] == result.best_time

    def test_best_sizes_usable(self, tuned):
        prog, result = tuned
        opt = optimize(prog, CompileOptions(target="cpu", tile_sizes=result.best_sizes))
        t = cpu_time(analyze_optimized(opt), 32)
        assert t == pytest.approx(result.best_time, rel=1e-6)

    def test_oversized_candidates_skipped(self):
        prog = unsharp_mask.build(64)
        result = autotune_tile_sizes(
            prog, candidates=(8, 512), max_extent=None
        )
        assert all(s <= 64 for sizes in result.evaluations for s in sizes)

    def test_top_k(self, tuned):
        _prog, result = tuned
        top = result.top(3)
        assert len(top) == 3
        assert top[0][1] <= top[1][1] <= top[2][1]
