"""The compile-cache fabric: stores, tiering, GC, degradation, sharing.

Covers the cache-fabric acceptance criteria end to end:

* ``LocalStore`` — byte-compatible sharded layout, content-addressed put
  skip, O(1) running counters, TTL + mtime-LRU garbage collection;
* ``StoreServer``/``HTTPStore`` — the shared remote tier over a real
  (loopback) HTTP server, including the batched memo fetch;
* ``LayeredStore`` — local-first reads, remote read-through with local
  backfill, write-behind flushing, and count-and-degrade when the remote
  tier is dead (zero request failures);
* ``CompileCache`` over the fabric — the legacy stat ledger keeps its
  exact semantics, plus ``remote_hits``/``skipped_stores``, batched
  ``get_memos_many``, pickling across processes, and spec resolution
  (``tiered:<local>|<remote>``, ``http://``, mappings);
* degraded disk — a read-only or full cache directory falls back to
  memory-only with ``stats.errors`` counted, never an exception;
* cross-process sharing — subprocesses hammering one store directory
  concurrently leave a consistent tree with zero corrupt-entry
  evictions;
* two compile daemons sharing one remote tier — the second daemon
  answers from the remote cache without compiling anything.
"""

import errno
import logging
import os
import pickle
import subprocess
import sys
import tempfile
import time

import pytest

from repro.options import CompileOptions
from repro.service.cache import CacheStats, CompileCache, resolve_cache
from repro.service.stores import (
    HTTPStore,
    LayeredStore,
    LocalStore,
    StoreServer,
    StoreUnavailable,
    resolve_store,
)

KEY_A = "ab" * 32
KEY_B = "cd" * 32
KEY_C = "ef" * 32


def _quiet_cache_logs():
    logging.getLogger("repro.cache").setLevel(logging.ERROR)


# -- LocalStore ------------------------------------------------------------


def test_local_store_round_trip_and_layout(tmp_path):
    store = LocalStore(str(tmp_path))
    assert store.put("results", KEY_A, b"payload")
    assert store.get("results", KEY_A) == b"payload"
    assert store.contains("results", KEY_A)
    assert store.get("results", KEY_B) is None
    # sharded layout, memos nested under the results tree
    assert store.path("results", KEY_A) == str(
        tmp_path / KEY_A[:2] / f"{KEY_A}.pkl"
    )
    assert store.path("memos", KEY_A) == str(
        tmp_path / "memos" / KEY_A[:2] / f"{KEY_A}.pkl"
    )
    store.put("memos", KEY_B, b"snap")
    # memo entries never leak into the results walk
    assert [e.key for e in store.entries("results")] == [KEY_A]
    assert [e.key for e in store.entries("memos")] == [KEY_B]


def test_local_store_put_skips_existing_entry(tmp_path):
    store = LocalStore(str(tmp_path))
    store.put("results", KEY_A, b"payload")
    path = store.path("results", KEY_A)
    before = os.stat(path).st_mtime_ns
    assert store.put("results", KEY_A, b"payload")
    assert store.stats.get("put_skips") == 1
    # the skip really skipped: the file was not rewritten
    assert os.stat(path).st_mtime_ns == before


def test_local_store_running_counters_stay_in_sync(tmp_path):
    store = LocalStore(str(tmp_path))
    store.put("results", KEY_A, b"x" * 100)
    info = store.info()  # primes the counters with one walk
    assert info["entries"] == 1
    store.put("results", KEY_B, b"y" * 50)
    store.put("memos", KEY_C, b"z" * 10)
    store.delete("results", KEY_A)
    info = store.info()
    assert info["entries"] == 1
    assert info["memo_entries"] == 1
    # the incremental totals match an authoritative re-walk
    walked = sum(e.size for e in store.entries("results"))
    assert info["bytes"] == walked


def test_local_store_evicts_corrupt_entry(tmp_path):
    store = LocalStore(str(tmp_path))
    store.put("results", KEY_A, b"payload")
    path = store.path("results", KEY_A)
    with open(path, "wb") as f:
        f.write(b"this is not a pickle")
    assert store.get("results", KEY_A) is None
    assert not os.path.exists(path)
    assert store.stats.get("errors") == 1
    assert store.stats.get("evictions") == 1


def test_local_store_gc_ttl_and_lru(tmp_path):
    store = LocalStore(str(tmp_path))
    now = time.time()
    for i, key in enumerate((KEY_A, KEY_B, KEY_C)):
        store.put("results", key, b"x" * 100)
        # KEY_A oldest, KEY_C newest
        os.utime(store.path("results", key), (now - 100 + i, now - 100 + i))

    dry = store.gc(max_age=50.0, dry_run=True)
    assert dry.expired == 3 and dry.dry_run
    assert store.get("results", KEY_A) is not None  # dry run removed nothing

    report = store.gc(max_bytes=450)  # each entry is ~200 bytes framed
    assert report.evicted == 1
    assert store.get("results", KEY_A) is None  # oldest evicted first
    assert store.get("results", KEY_B) is not None
    assert store.get("results", KEY_C) is not None

    report = store.gc(max_age=0.0)
    assert report.expired == 2
    assert report.remaining_entries == 0


def test_local_store_opportunistic_gc_on_put(tmp_path):
    store = LocalStore(str(tmp_path), gc_max_bytes=300)
    store.info()  # prime the running byte counters
    for key in (KEY_A, KEY_B, KEY_C):
        store.put("results", key, b"x" * 200)
        time.sleep(0.01)  # distinct mtimes for deterministic LRU order
    # every put after the budget was exceeded swept down to the budget
    total = sum(e.size for e in store.entries("results"))
    assert total <= 300 + 300  # at most one over-budget entry in flight


# -- StoreServer + HTTPStore -----------------------------------------------


def test_http_store_round_trip(tmp_path):
    with StoreServer(str(tmp_path / "remote")) as srv:
        client = HTTPStore(srv.url)
        assert client.ping()
        assert client.get("results", KEY_A) is None
        assert client.put("results", KEY_A, b"payload")
        assert client.get("results", KEY_A) == b"payload"
        assert client.contains("results", KEY_A)
        assert client.keys("results") == [KEY_A]
        # put-skip happens server-side in the backing LocalStore
        assert client.put("results", KEY_A, b"payload")
        assert srv.store.stats.get("put_skips") == 1
        # batched fetch: one round trip, only the hits come back
        client.put("memos", KEY_B, b"snap")
        got = client.get_many("memos", [KEY_B, KEY_C])
        assert got == {KEY_B: b"snap"}
        assert client.stats.get("batched_gets") == 1
        # maintenance over the wire
        assert client.info()["entries"] == 1
        report = client.gc(max_age=0.0)
        assert report.removed == 2
        assert client.delete("results", KEY_A) is False
        client.close()


def test_http_store_dead_server_raises_store_unavailable(tmp_path):
    srv = StoreServer(str(tmp_path / "remote"))
    srv.start()
    url = srv.url
    srv.stop()
    client = HTTPStore(url, timeout=0.5)
    with pytest.raises(StoreUnavailable):
        client.get("results", KEY_A)
    assert client.stats.get("errors") == 1
    client.close()


# -- LayeredStore ----------------------------------------------------------


def test_layered_store_write_behind_and_read_through(tmp_path):
    with StoreServer(str(tmp_path / "remote")) as srv:
        layered = LayeredStore(
            LocalStore(str(tmp_path / "a")), HTTPStore(srv.url)
        )
        layered.put("results", KEY_A, b"payload")
        assert layered.flush(5.0)
        # write-behind published the entry to the remote tier
        assert srv.store.get("results", KEY_A) == b"payload"

        # a different node with a cold local tier reads through + backfills
        other = LayeredStore(
            LocalStore(str(tmp_path / "b")), HTTPStore(srv.url)
        )
        assert other.get("results", KEY_A) == b"payload"
        assert other.stats.get("backfills") == 1
        assert other.local.get("results", KEY_A) == b"payload"
        layered.close()
        other.close()


def test_layered_store_get_many_batches_remote_misses(tmp_path):
    with StoreServer(str(tmp_path / "remote")) as srv:
        seed = HTTPStore(srv.url)
        seed.put("memos", KEY_A, b"remote-snap")
        layered = LayeredStore(
            LocalStore(str(tmp_path / "local")), HTTPStore(srv.url)
        )
        layered.local.put("memos", KEY_B, b"local-snap")
        got = layered.get_many("memos", [KEY_A, KEY_B, KEY_C])
        assert got == {KEY_A: b"remote-snap", KEY_B: b"local-snap"}
        # exactly one remote round trip for the two local misses
        assert layered.remote.stats.get("batched_gets") == 1
        # the remote hit was backfilled locally
        assert layered.local.get("memos", KEY_A) == b"remote-snap"
        layered.close()
        seed.close()


def test_layered_store_degrades_when_remote_dies(tmp_path):
    _quiet_cache_logs()
    srv = StoreServer(str(tmp_path / "remote"))
    srv.start()
    layered = LayeredStore(
        LocalStore(str(tmp_path / "local")),
        HTTPStore(srv.url, timeout=0.5),
        retry_interval=30.0,
    )
    layered.put("results", KEY_A, b"payload")
    assert layered.flush(5.0)
    srv.stop()

    # zero request failures: gets and puts keep working local-only
    assert layered.get("results", KEY_A) == b"payload"
    assert layered.get("results", KEY_B) is None  # first remote probe fails
    layered.put("results", KEY_C, b"more")
    assert layered.flush(5.0)
    assert layered.local.get("results", KEY_C) == b"more"

    # the tier was marked down: later misses skip the timeout entirely
    t0 = time.perf_counter()
    assert layered.get("results", KEY_B) is None
    assert time.perf_counter() - t0 < 0.25
    assert layered.stats.get("remote_down_skips") >= 1
    assert not layered.info()["remote"]["alive"]
    layered.close()


def test_layered_store_clear_spares_remote_by_default(tmp_path):
    with StoreServer(str(tmp_path / "remote")) as srv:
        layered = LayeredStore(
            LocalStore(str(tmp_path / "local")), HTTPStore(srv.url)
        )
        layered.put("results", KEY_A, b"payload")
        assert layered.flush(5.0)
        assert layered.clear("results") == 1
        assert srv.store.get("results", KEY_A) == b"payload"  # remote intact
        layered.clear("results", remote=True)
        assert srv.store.get("results", KEY_A) is None
        layered.close()


# -- CompileCache over the fabric ------------------------------------------


def test_tiered_cache_counts_remote_hits_and_backfills(tmp_path):
    with StoreServer(str(tmp_path / "remote")) as srv:
        warm = resolve_cache(f"tiered:{tmp_path / 'a'}|{srv.url}")
        warm.put(KEY_A, {"answer": 42})
        assert warm.flush(5.0)
        warm.close()

        cold = resolve_cache(f"tiered:{tmp_path / 'b'}|{srv.url}")
        assert cold.get(KEY_A) == {"answer": 42}
        assert cold.stats.remote_hits == 1
        assert cold.stats.disk_hits == 1  # any persistent tier counts
        # backfilled: the next cold-memory get is served locally
        cold._mem.clear()
        cold._mem_bytes = 0
        assert cold.get(KEY_A) == {"answer": 42}
        assert cold.stats.remote_hits == 1
        cold.close()


def test_tiered_cache_memos_round_trip_batched(tmp_path):
    with StoreServer(str(tmp_path / "remote")) as srv:
        a = resolve_cache(f"tiered:{tmp_path / 'a'}|{srv.url}")
        a.put_memos(KEY_A, {"table": [1, 2]})
        a.put_memos(KEY_B, {"table": [3]})
        assert a.flush(5.0)
        a.close()

        b = resolve_cache(f"tiered:{tmp_path / 'b'}|{srv.url}")
        got = b.get_memos_many([KEY_A, KEY_B, KEY_C])
        assert got == {KEY_A: {"table": [1, 2]}, KEY_B: {"table": [3]}}
        assert b.stats.memo_hits == 2
        assert b.stats.memo_misses == 1
        b.close()


def test_cache_put_skip_counted_in_stats(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    cache.put(KEY_A, {"v": 1})
    cache.put(KEY_A, {"v": 1})
    assert cache.stats.stores == 2
    assert cache.stats.skipped_stores == 1
    cache.put_memos(KEY_B, {"m": 1})
    cache.put_memos(KEY_B, {"m": 1})
    assert cache.stats.memo_stores == 2
    assert cache.stats.skipped_stores == 2


def test_cache_info_uses_running_counters_not_walks(tmp_path, monkeypatch):
    cache = CompileCache(cache_dir=str(tmp_path))
    cache.put(KEY_A, {"v": 1})
    first = cache.info()
    assert first["disk_entries"] == 1

    # once primed, info() must not re-walk the tree
    def boom(kind):
        raise AssertionError("info() walked the tree")

    monkeypatch.setattr(cache._local_store(), "entries", boom)
    cache.put(KEY_B, {"v": 2})
    info = cache.info()
    assert info["disk_entries"] == 2
    assert info["disk_bytes"] > first["disk_bytes"]


def test_resolve_cache_fabric_specs(tmp_path):
    tiered = resolve_cache(f"tiered:{tmp_path / 'l'}|{tmp_path / 'r'}")
    assert isinstance(tiered.store, LayeredStore)
    assert tiered.spec == f"tiered:{tmp_path / 'l'}|{tmp_path / 'r'}"
    # a directory remote is a LocalStore wearing the remote tier label
    assert isinstance(tiered.store.remote, LocalStore)
    assert tiered.store.remote.tier == "remote"
    tiered.close()

    mapped = resolve_cache(
        {"local": str(tmp_path / "m"), "remote": str(tmp_path / "r2"),
         "max_entries": 4}
    )
    assert isinstance(mapped.store, LayeredStore)
    assert mapped.max_entries == 4
    mapped.close()

    with pytest.raises(ValueError):
        resolve_cache("tiered:only-one-part")

    options = CompileOptions(cache={"local": str(tmp_path / "o")})
    assert isinstance(options.cache, CompileCache)
    assert options.cache.cache_dir == str(tmp_path / "o")


def test_tiered_cache_pickles_across_process_boundary(tmp_path):
    cache = resolve_cache(f"tiered:{tmp_path / 'l'}|{tmp_path / 'r'}")
    cache.put(KEY_A, {"v": 7})
    assert cache.flush(5.0)
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.spec == cache.spec
    assert clone.get(KEY_A) == {"v": 7}
    cache.close()
    clone.close()


def test_compile_results_bit_identical_across_tiers(tmp_path):
    """The same fingerprint served local, remote or fresh must pickle to
    the same bytes (SCHEMA_VERSION-gated compatibility)."""
    from repro.codegen import print_tree
    from repro.service import cached_optimize
    from repro.workloads import build_workload

    def tree_of(cache):
        prog = build_workload("atax", 32)
        return print_tree(cached_optimize(prog, options=CompileOptions(cache=cache)).tree, prog)

    local_only = CompileCache(cache_dir=str(tmp_path / "solo"))
    baseline = tree_of(local_only)
    with StoreServer(str(tmp_path / "remote")) as srv:
        a = resolve_cache(f"tiered:{tmp_path / 'a'}|{srv.url}")
        assert tree_of(a) == baseline
        assert a.flush(5.0)
        a.close()
        b = resolve_cache(f"tiered:{tmp_path / 'b'}|{srv.url}")
        assert tree_of(b) == baseline
        assert b.stats.remote_hits >= 1  # served by the shared tier
        assert b.stats.misses == 0
        b.close()
    local_only.close()


# -- degraded disk (read-only / disk-full) ---------------------------------


def test_disk_full_put_degrades_to_memory_only(tmp_path, monkeypatch):
    cache = CompileCache(cache_dir=str(tmp_path))

    def no_space(*args, **kwargs):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(tempfile, "mkstemp", no_space)
    cache.put(KEY_A, {"v": 1})  # must not raise
    assert cache.stats.errors == 1
    assert cache.get(KEY_A) == {"v": 1}  # memory tier still serves it
    monkeypatch.undo()
    fresh = CompileCache(cache_dir=str(tmp_path))
    assert fresh.get(KEY_A) is None  # nothing made it to disk
    assert fresh.stats.misses == 1


def test_read_only_dir_degrades_to_memory_only(tmp_path, monkeypatch):
    # Tests run as root (chmod is a no-op), so simulate EROFS at the
    # syscall boundary instead of flipping directory modes.
    cache = CompileCache(cache_dir=str(tmp_path / "ro"))

    def read_only(*args, **kwargs):
        raise OSError(errno.EROFS, "Read-only file system")

    monkeypatch.setattr(os, "makedirs", read_only)
    cache.put(KEY_A, {"v": 1})
    cache.put_memos(KEY_B, {"m": 2})
    assert cache.stats.errors == 2
    assert cache.get(KEY_A) == {"v": 1}
    monkeypatch.undo()
    assert cache.get_memos(KEY_B) is None  # memos have no memory tier
    assert cache.stats.memo_misses == 1


# -- cross-process sharing -------------------------------------------------

_HAMMER = r"""
import os, pickle, sys
sys.path.insert(0, {src!r})
from repro.service.stores import LocalStore

store = LocalStore({dir!r})
seed = int(sys.argv[1])
errors = 0
for round in range(40):
    key = "%064x" % (round % 10)          # contended: both children share keys
    mine = "%064x" % (1000 + seed * 100 + round)
    store.put("results", key, b"shared-" + str(round % 10).encode())
    store.put("results", mine, os.urandom(64))
    got = store.get("results", key)
    assert got is None or got == b"shared-" + str(round % 10).encode()
    if round % 10 == 9:
        store.gc(max_bytes=512 * 1024)    # generous: exercises the walk
errors += store.stats.get("errors")
print(pickle.dumps({{"errors": errors,
                     "evictions": store.stats.get("evictions")}}).hex())
"""


def test_concurrent_processes_share_one_store_dir(tmp_path):
    """Two subprocesses interleaving put/get/gc on one directory must
    leave a consistent tree and evict zero corrupt entries."""
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    script = _HAMMER.format(src=os.path.abspath(src), dir=str(tmp_path))
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(i)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        for i in range(2)
    ]
    for p in procs:
        out, err = p.communicate(timeout=120)
        assert p.returncode == 0, err.decode()
        stats = pickle.loads(bytes.fromhex(out.decode().strip()))
        assert stats["errors"] == 0
        assert stats["evictions"] == 0  # no corrupt entries, ever

    # the surviving tree is fully consistent: every entry loads cleanly
    store = LocalStore(str(tmp_path))
    for key in store.keys("results"):
        assert store.get("results", key) is not None
    assert store.stats.get("errors") == 0


# -- two daemons, one shared remote tier -----------------------------------


def test_second_daemon_answers_from_shared_remote_tier(tmp_path):
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread

    with StoreServer(str(tmp_path / "remote")) as srv:
        spec_a = f"tiered:{tmp_path / 'node_a'}|{srv.url}"
        config_a = ServeConfig(
            socket_path=str(tmp_path / "a.sock"), cache=spec_a
        )
        with ServerThread(config_a) as st_a:
            with ServeClient(socket_path=config_a.socket_path) as client:
                cold = client.compile("conv2d", size=16)
                assert cold["from_cache"] is False
            # drain flushes the write-behind queue to the remote tier
        assert st_a.server.cache.stats.remote_hits == 0

        spec_b = f"tiered:{tmp_path / 'node_b'}|{srv.url}"
        config_b = ServeConfig(
            socket_path=str(tmp_path / "b.sock"), cache=spec_b
        )
        with ServerThread(config_b):
            with ServeClient(socket_path=config_b.socket_path) as client:
                warm = client.compile("conv2d", size=16)
                assert warm["from_cache"] is True
                assert warm["fingerprint"] == cold["fingerprint"]
                snap = client.stats()
            # daemon B compiled nothing: the shared tier answered
            assert snap["counters"].get("serve.compiles", 0) == 0
            assert snap["gauges"]["serve.cache.remote_hits"] >= 1
            assert snap["gauges"]["serve.cache.tier.remote.hits"] >= 1
            assert "serve.cache.tier.remote.get_ms" in snap["histograms"]


def test_cache_stats_dataclass_new_fields_round_trip():
    stats = CacheStats(remote_hits=3, skipped_stores=2)
    d = stats.as_dict()
    assert d["remote_hits"] == 3
    assert d["skipped_stores"] == 2
    assert set(d) >= {"memory_hits", "disk_hits", "misses", "stores",
                      "memo_hits", "memo_misses", "memo_stores"}
