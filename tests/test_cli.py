"""End-to-end coverage of the ``python -m repro`` command-line interface."""

import os
import subprocess
import sys

import pytest

from repro.__main__ import main

ROOT = os.path.join(os.path.dirname(__file__), "..")
SRC = os.path.join(ROOT, "src")


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "harris" in out
    assert "atax" in out
    assert "conv2d" in out


def test_optimize(cache_dir, capsys):
    rc = main(["optimize", "conv2d", "--size", "32", "--tile", "8", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "workload:     conv2d" in out
    assert "tile sizes (8, 8)" in out
    assert "compile time:" in out
    assert "fusion:" in out


def test_optimize_stats_prints_passes_and_cache(cache_dir, capsys):
    args = ["optimize", "conv2d", "--size", "32", "--tile", "8", "8", "--stats"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "per-pass timings:" in out
    assert "tile_shapes" in out
    assert "misses" in out  # cache stats from the cold compile

    # The second identical run is served from the on-disk cache.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "(served from cache)" in out
    assert "hits" in out


def test_optimize_no_cache_leaves_cache_dir_empty(cache_dir, capsys):
    args = [
        "optimize", "conv2d", "--size", "32", "--tile", "8", "8", "--no-cache",
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert not any(cache_dir.iterdir())


def test_optimize_tree(cache_dir, capsys):
    rc = main(
        ["optimize", "conv2d", "--size", "32", "--tile", "8", "8", "--tree"]
    )
    assert rc == 0
    assert "domain" in capsys.readouterr().out


def test_optimize_unknown_workload():
    with pytest.raises(SystemExit):
        main(["optimize", "definitely_not_a_workload"])


def test_code_openmp(cache_dir, capsys):
    rc = main(["code", "conv2d", "--size", "32", "--tile", "8", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "for " in out
    assert "omp" in out.lower()


def test_tune(cache_dir, capsys):
    rc = main(["tune", "conv2d", "--size", "32", "--candidates", "8", "16"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "best tile sizes:" in out
    assert "searched" in out


def test_tune_parallel_jobs(cache_dir, capsys):
    rc = main(
        [
            "tune", "conv2d", "--size", "32",
            "--candidates", "8", "16", "--jobs", "2",
        ]
    )
    assert rc == 0
    assert "best tile sizes:" in capsys.readouterr().out


def test_partition_command(cache_dir, capsys):
    rc = main(["partition", "camera_resnet", "--size", "64"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "workload:   camera_resnet" in out
    assert "assignment:" in out
    assert "modeled:" in out
    assert "single npu  illegal" in out


def test_partition_single_target_and_stats(cache_dir, capsys):
    rc = main(["partition", "conv2d", "--size", "32",
               "--targets", "cpu", "--stats"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "degenerate: one partition" in out
    assert "per-pass timings" in out


def test_partition_rejects_bad_targets(cache_dir):
    with pytest.raises(SystemExit, match="targets"):
        main(["partition", "conv2d", "--targets", "cpu,tpu"])


def test_cache_info_and_clear(cache_dir, capsys):
    assert main(["optimize", "conv2d", "--size", "32", "--tile", "8", "8"]) == 0
    capsys.readouterr()
    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert str(cache_dir) in out
    assert "disk entries:   1" in out
    assert "memo snapshots: 1" in out  # the compile spilled its memos
    # Selective clear: drop the memo snapshots, keep the result.
    assert main(["cache", "clear", "--what", "memos"]) == 0
    assert "removed 1 memos entries" in capsys.readouterr().out
    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "disk entries:   1" in out
    assert "memo snapshots: 0" in out
    assert main(["cache", "clear"]) == 0
    assert "removed 1 entries" in capsys.readouterr().out
    assert main(["cache", "info"]) == 0
    assert "disk entries:   0" in capsys.readouterr().out


def test_module_entry_point_subprocess(tmp_path):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "image pipelines:" in proc.stdout
