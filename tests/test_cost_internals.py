"""White-box tests of the cost analyzer internals."""

import pytest

from repro import CompileOptions
from repro.core import optimize
from repro.machine import analyze_optimized, analyze_scheduled
from repro.machine.cost import (
    _band_extents,
    _domain_volume,
    _group_ops,
    _tensor_bytes,
)
from repro.pipelines import conv2d, unsharp_mask
from repro.scheduler import MINFUSE, SMARTFUSE, schedule_program

PARAMS = {"H": 64, "W": 64, "KH": 3, "KW": 3}


@pytest.fixture(scope="module")
def prog():
    return conv2d.build(PARAMS)


@pytest.fixture(scope="module")
def sched(prog):
    return schedule_program(prog, SMARTFUSE)


class TestPrimitives:
    def test_domain_volume_rectangular_exact(self, prog):
        assert _domain_volume(prog, "S0", PARAMS) == 64 * 64
        assert _domain_volume(prog, "S2", PARAMS) == 62 * 62 * 9

    def test_group_ops_scales_with_op_count(self, prog, sched):
        g = sched.group_of("S2")
        ops = _group_ops(prog, g, PARAMS)
        # S1 init + S2 multiply-accumulate + S3 relu dominate
        assert ops > 62 * 62 * 9  # at least one op per reduction instance

    def test_band_extents(self, prog, sched):
        g = sched.group_of("S2")
        extents = _band_extents(prog, g, PARAMS)
        assert extents == [62, 62]

    def test_tensor_bytes(self, prog):
        assert _tensor_bytes(prog, "A", PARAMS) == 64 * 64 * 8
        assert _tensor_bytes(prog, "C", PARAMS) == 62 * 62 * 8


class TestTrafficAccounting:
    def test_liveout_written_once(self, prog):
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        work = analyze_optimized(res)
        (cluster,) = work.clusters
        # C is written exactly once (62*62 doubles)
        assert cluster.dram_write_bytes == 62 * 62 * 8

    def test_halo_traffic_exceeds_tensor_size(self, prog):
        """Reading A per tile with halos costs more than one pass."""
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        work = analyze_optimized(res)
        (cluster,) = work.clusters
        a_bytes = 64 * 64 * 8
        assert cluster.dram_read_bytes > a_bytes

    def test_unfused_intermediate_roundtrips(self, prog):
        sched = schedule_program(prog, MINFUSE)
        work = analyze_scheduled(sched, (8, 8))
        # A is written by S0's cluster (it is read later by S2's cluster)
        s0_cluster = next(c for c in work.clusters if "S0" in c.statements)
        assert s0_cluster.dram_write_bytes == 64 * 64 * 8

    def test_scratch_only_when_fused(self, prog):
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        fused = analyze_optimized(res)
        assert fused.clusters[0].scratch_bytes_per_tile > 0
        sched = schedule_program(prog, MINFUSE)
        unfused = analyze_scheduled(sched, (8, 8))
        assert all(c.scratch_bytes_per_tile == 0 for c in unfused.clusters)


class TestOverlapPolicies:
    def test_box_total_never_cheaper(self):
        prog = unsharp_mask.build(256)
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 32)))
        exact = analyze_optimized(res, overlap="exact")
        loose = analyze_optimized(res, overlap="box_total")
        assert loose.total_ops() >= exact.total_ops()
        assert loose.total_dram_bytes() >= exact.total_dram_bytes()

    def test_unknown_policy_rejected(self, prog):
        res = optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        with pytest.raises(ValueError):
            analyze_optimized(res, overlap="nonsense")
