"""Unit tests for the presburger substrate: expressions, constraints, sets."""

import pytest

from repro.presburger import (
    BasicSet,
    Constraint,
    LinExpr,
    SetSpace,
    MapSpace,
    V,
    parse_map,
    parse_set,
)


class TestLinExpr:
    def test_construction_drops_zero_coeffs(self):
        e = LinExpr({"x": 0, "y": 2}, 3)
        assert e.symbols() == ("y",)
        assert e.const == 3

    def test_arithmetic(self):
        x, y = V("x"), V("y")
        e = 2 * x + y - 3
        assert e.coeff("x") == 2
        assert e.coeff("y") == 1
        assert e.const == -3
        assert (e - e).is_constant()
        assert (e - e).const == 0

    def test_substitute_with_expr(self):
        x, y = V("x"), V("y")
        e = 2 * x + 1
        sub = e.substitute({"x": y + 3})
        assert sub == 2 * y + 7

    def test_substitute_with_int(self):
        e = 2 * V("x") + V("y")
        assert e.substitute({"x": 5}) == V("y") + 10

    def test_eval(self):
        e = 3 * V("a") - V("b") + 2
        assert e.eval({"a": 4, "b": 5}) == 9

    def test_equality_and_hash(self):
        assert V("x") + 1 == V("x") + 1
        assert hash(V("x") + 1) == hash(V("x") + 1)
        assert V("x") != V("y")

    def test_immutable(self):
        e = V("x")
        with pytest.raises(AttributeError):
            e.const = 5

    def test_scale_down_exact(self):
        e = 4 * V("x") + 8
        assert e.scale_down_exact(4) == V("x") + 2
        with pytest.raises(ValueError):
            (4 * V("x") + 3).scale_down_exact(4)

    def test_str_roundtrip_sanity(self):
        assert str(V("x") - V("y") + 1) == "x - y + 1"


class TestConstraint:
    def test_normalisation_divides_gcd(self):
        c = Constraint.ge(4 * V("x"), 8)  # 4x - 8 >= 0 -> x - 2 >= 0
        assert c.expr == V("x") - 2

    def test_inequality_constant_tightening(self):
        # 2x - 3 >= 0 over Z is x >= 2, i.e. x - 2 >= 0 after tightening
        c = Constraint.ge(2 * V("x") - 3)
        assert c.expr == V("x") - 2

    def test_infeasible_equality_gcd(self):
        # 2x == 1 has no integer solutions
        c = Constraint.eq(2 * V("x") - 1)
        assert c.is_trivially_false()

    def test_lt_gt_are_integer_strict(self):
        c = Constraint.lt(V("x"), V("y"))
        assert c.satisfied_by({"x": 1, "y": 2})
        assert not c.satisfied_by({"x": 2, "y": 2})

    def test_negation_of_ge(self):
        c = Constraint.ge(V("x"), 3)
        (neg,) = c.negated()
        assert neg.satisfied_by({"x": 2})
        assert not neg.satisfied_by({"x": 3})

    def test_negation_of_eq_is_two_pieces(self):
        c = Constraint.eq(V("x"), 3)
        lo, hi = c.negated()
        assert lo.satisfied_by({"x": 4}) or hi.satisfied_by({"x": 4})
        assert lo.satisfied_by({"x": 2}) or hi.satisfied_by({"x": 2})
        assert not (lo.satisfied_by({"x": 3}) or hi.satisfied_by({"x": 3}))


class TestBasicSet:
    def rect(self, w=4, h=4):
        return parse_set(
            "{ S[i, j] : 0 <= i < %d and 0 <= j < %d }" % (w, h)
        ).pieces[0]

    def test_contains(self):
        s = self.rect()
        assert s.contains({"i": 0, "j": 3})
        assert not s.contains({"i": 4, "j": 0})

    def test_is_empty(self):
        s = parse_set("{ S[i] : i > 3 and i < 3 }").pieces[0]
        assert s.is_empty()
        assert not self.rect().is_empty()

    def test_empty_by_integrality(self):
        # 2i == 1: no integer solution; normalisation yields a falsum piece
        # which the Set constructor drops entirely.
        s = parse_set("{ S[i] : 2*i = 1 }")
        assert s.is_empty()

    def test_integer_gap_emptiness(self):
        # 3 <= 2i <= 3 has no integer point but rational point 1.5
        s = parse_set("{ S[i] : 3 <= 2*i and 2*i <= 3 }").pieces[0]
        assert s.is_empty()

    def test_project_out(self):
        s = parse_set("{ S[i, j] : 0 <= i < 4 and i <= j < i + 2 }").pieces[0]
        proj = s.project_out(["j"])
        assert proj.space.dims == ("i",)
        assert proj.contains({"i": 0})
        assert proj.contains({"i": 3})
        assert not proj.contains({"i": 4})

    def test_sample_and_count(self):
        s = self.rect(3, 5)
        pt = s.sample()
        assert pt is not None and s.contains(pt)
        assert s.count_points() == 15

    def test_subset(self):
        small = self.rect(2, 2)
        big = self.rect(4, 4)
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_fix_params(self):
        s = parse_set("[N] -> { S[i] : 0 <= i < N }").pieces[0]
        fixed = s.fix_params({"N": 7})
        assert fixed.count_points() == 7

    def test_bounding_box(self):
        s = parse_set("{ S[i, j] : 0 <= i < 4 and i <= j <= i + 2 }").pieces[0]
        box = s.bounding_box()
        assert box["i"] == (0, 3)
        assert box["j"] == (0, 5)

    def test_box_volume(self):
        assert self.rect(4, 6).box_volume() == 24

    def test_simplify_drops_redundant(self):
        s = parse_set("{ S[i] : 0 <= i and i <= 10 and i <= 20 }").pieces[0]
        simp = s.simplify()
        assert len(simp.constraints) == 2


class TestSetAlgebra:
    def test_union_and_membership(self):
        a = parse_set("{ S[i] : 0 <= i < 3 }")
        b = parse_set("{ S[i] : 5 <= i < 8 }")
        u = a.union(b)
        assert u.contains({"i": 1})
        assert u.contains({"i": 6})
        assert not u.contains({"i": 4})

    def test_intersect(self):
        a = parse_set("{ S[i] : 0 <= i < 10 }")
        b = parse_set("{ S[i] : 5 <= i < 20 }")
        inter = a.intersect(b)
        assert inter.is_equal(parse_set("{ S[i] : 5 <= i < 10 }"))

    def test_subtract(self):
        a = parse_set("{ S[i] : 0 <= i < 10 }")
        b = parse_set("{ S[i] : 3 <= i < 5 }")
        diff = a.subtract(b)
        expected = parse_set("{ S[i] : 0 <= i < 3 or 5 <= i < 10 }")
        assert diff.is_equal(expected)

    def test_subtract_everything(self):
        a = parse_set("{ S[i] : 0 <= i < 10 }")
        assert a.subtract(a).is_empty()

    def test_coalesce_removes_contained_pieces(self):
        a = parse_set("{ S[i] : 0 <= i < 10 or 2 <= i < 5 }")
        assert len(a.coalesce().pieces) == 1

    def test_count_points_union_dedup(self):
        a = parse_set("{ S[i] : 0 <= i < 6 or 4 <= i < 8 }")
        assert a.count_points() == 8

    def test_equality_is_semantic(self):
        a = parse_set("{ S[i] : 0 <= i and i <= 4 }")
        b = parse_set("{ S[i] : 0 <= i < 5 }")
        assert a == b


class TestMaps:
    def test_access_relation_range(self):
        m = parse_map("{ S[i] -> A[i + 1] : 0 <= i < 4 }")
        rng = m.range()
        assert rng.contains({"o0": 1})
        assert rng.contains({"o0": 4})
        assert not rng.contains({"o0": 0})

    def test_reverse(self):
        m = parse_map("{ S[i] -> A[i + 1] : 0 <= i < 4 }")
        rev = m.reverse()
        assert rev.space.in_name == "A"
        dom = rev.range()
        assert dom.contains({"i": 0})

    def test_apply_range_compose(self):
        f = parse_map("{ S[i] -> T[i + 1] : 0 <= i < 10 }")
        g = parse_map("{ T[j] -> U[2*j] }")
        h = f.apply_range(g)
        assert h.space.in_name == "S" and h.space.out_name == "U"
        img = h.image_of_point({"i": 3})
        assert img.count_points() == 1
        (out_dim,) = img.space.dims
        assert img.sample()[out_dim] == 8

    def test_intersect_domain(self):
        m = parse_map("{ S[i] -> A[i] }")
        dom = parse_set("{ S[i] : 0 <= i < 3 }")
        clipped = m.intersect_domain(dom)
        assert clipped.range().count_points() == 3

    def test_image_of_point_stencil(self):
        # the conv2d read access of the paper: S2 reads A[h+kh, w+kw]
        m = parse_map(
            "{ S2[h, w, kh, kw] -> A[h + kh, w + kw] : 0 <= kh < 3 and 0 <= kw < 3 }"
        )
        img = m.fix({"h": 2, "w": 2}).range()
        assert img.count_points() == 9
        box = img.bounding_box()
        assert box["o0"] == (2, 4)
        assert box["o1"] == (2, 4)

    def test_map_subtract(self):
        big = parse_map("{ S[i] -> A[i] : 0 <= i < 10 }")
        small = parse_map("{ S[i] -> A[i] : 0 <= i < 4 }")
        diff = big.subtract(small)
        assert diff.is_equal(parse_map("{ S[i] -> A[i] : 4 <= i < 10 }"))

    def test_wrap_arity(self):
        m = parse_map("{ S[i, j] -> A[i] }")
        assert m.space.n_in == 2
        assert m.space.n_out == 1


class TestSpaces:
    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            SetSpace("S", ("i", "i"))

    def test_map_space_disjoint(self):
        with pytest.raises(ValueError):
            MapSpace("S", ("i",), "T", ("i",))

    def test_constraint_outside_space_rejected(self):
        space = SetSpace("S", ("i",))
        with pytest.raises(ValueError):
            BasicSet(space, [Constraint.ge(V("zz"), 0)])
