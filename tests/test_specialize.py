"""Parametric specialization: exactness, commuting laws and footprint parity.

The parametric-footprint engine rests on one algebraic fact: substituting an
integer for a parameter commutes with every Presburger operation the
footprint chains use.  These tests check the law ``op(S).specialize(b) ==
op(S.specialize(b))`` on randomized sets/maps, and then the end-to-end
consequence — the parametric path produces byte-identical generated code on
every workload.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import CompileOptions
from repro.presburger import memo
from repro.presburger.basic_map import BasicMap
from repro.presburger.basic_set import BasicSet
from repro.presburger.constraint import GE, Constraint
from repro.presburger.linexpr import LinExpr
from repro.presburger.map_ import Map
from repro.presburger.set_ import Set, _count_boxes
from repro.presburger.space import MapSpace, SetSpace
from repro.presburger.enumerate import enumerate_set_points

PARAM = "T"


def _random_set(rng: random.Random, dims, with_param: bool) -> Set:
    """A random conjunction of small affine constraints over ``dims``.

    Every dimension gets finite box bounds so the sets stay enumerable;
    extra coupled constraints (optionally mentioning the parameter) make
    the structural cases non-trivial.
    """
    params = (PARAM,) if with_param else ()
    space = SetSpace("S", dims, params)
    cs = []
    for d in dims:
        lo = rng.randint(-3, 2)
        cs.append(Constraint(LinExpr({d: 1}, -lo), GE))
        cs.append(Constraint(LinExpr({d: -1, PARAM: 1} if with_param else {d: -1}, rng.randint(2, 6)), GE))
    for _ in range(rng.randint(0, 2)):
        a, b = rng.sample(list(dims), 2) if len(dims) > 1 else (dims[0], dims[0])
        coeffs = {a: rng.choice((-2, -1, 1, 2))}
        coeffs[b] = coeffs.get(b, 0) + rng.choice((-1, 1))
        if with_param and rng.random() < 0.5:
            coeffs[PARAM] = rng.choice((-1, 1))
        cs.append(Constraint(LinExpr(coeffs, rng.randint(-2, 4)), GE))
    pieces = [BasicSet(space, cs)]
    return Set(space, pieces)


def _random_map(rng: random.Random, in_dims, out_dims, with_param: bool) -> Map:
    params = (PARAM,) if with_param else ()
    space = MapSpace("A", in_dims, "B", out_dims, params)
    cs = []
    for d in in_dims + out_dims:
        lo = rng.randint(-2, 1)
        cs.append(Constraint(LinExpr({d: 1}, -lo), GE))
        cs.append(Constraint(LinExpr({d: -1}, rng.randint(2, 5)), GE))
    for o in out_dims:
        i = rng.choice(in_dims)
        shift = {PARAM: 1} if with_param and rng.random() < 0.5 else {}
        coeffs = {o: 1, i: -1, **shift}
        cs.append(Constraint(LinExpr(coeffs, rng.randint(-1, 1)), GE))
        coeffs_neg = {o: -1, i: 1, **{k: -v for k, v in shift.items()}}
        cs.append(Constraint(LinExpr(coeffs_neg, rng.randint(1, 3)), GE))
    return Map(space, [BasicMap(space, cs)])


def _sets_equal(a: Set, b: Set) -> bool:
    return a.is_equal(b)


class TestSpecializeExactness:
    def test_specialize_matches_fix_params_semantically(self):
        rng = random.Random(100)
        for _ in range(50):
            s = _random_set(rng, ("i", "j"), with_param=True)
            n = rng.randint(1, 6)
            spec = s.specialize({PARAM: n})
            fixed = s.fix_params({PARAM: n})
            assert spec.space.params == ()
            assert spec.is_equal(fixed)

    def test_specialize_no_params_is_identity(self):
        rng = random.Random(101)
        s = _random_set(rng, ("i",), with_param=False)
        assert s.specialize({PARAM: 4}) is s

    def test_basic_map_specialize_drops_param(self):
        rng = random.Random(102)
        m = _random_map(rng, ("i",), ("o",), with_param=True)
        spec = m.specialize({PARAM: 3})
        assert spec.space.params == ()
        assert spec.is_equal(m.fix_params({PARAM: 3}))


class TestSpecializeCommutes:
    """op(S).specialize(T=n) == op(S.specialize(T=n))."""

    def test_intersect_commutes(self):
        rng = random.Random(7)
        for _ in range(40):
            a = _random_set(rng, ("i", "j"), with_param=True)
            b = _random_set(rng, ("i", "j"), with_param=True)
            n = rng.randint(1, 5)
            lhs = a.intersect(b).specialize({PARAM: n})
            rhs = a.specialize({PARAM: n}).intersect(b.specialize({PARAM: n}))
            assert _sets_equal(lhs, rhs)

    def test_project_out_commutes(self):
        rng = random.Random(8)
        for _ in range(40):
            s = _random_set(rng, ("i", "j"), with_param=True)
            n = rng.randint(1, 5)
            lhs = Set(
                SetSpace("S", ("i",), ()),
                [p.project_out(("j",)) for p in s.specialize({PARAM: n}).pieces],
            )
            rhs = Set(
                SetSpace("S", ("i",), (PARAM,)),
                [p.project_out(("j",)) for p in s.pieces],
            ).specialize({PARAM: n})
            assert _sets_equal(lhs, rhs)

    def test_apply_range_commutes(self):
        rng = random.Random(9)
        for _ in range(40):
            m1 = _random_map(rng, ("i",), ("k",), with_param=True)
            m2 = _random_map(rng, ("k",), ("o",), with_param=False)
            n = rng.randint(1, 5)
            m2p = Map(m2.space.with_params((PARAM,)), [
                BasicMap(p.space.with_params((PARAM,)), p.constraints)
                for p in m2.pieces
            ])
            lhs = m1.apply_range(m2p).specialize({PARAM: n})
            rhs = m1.specialize({PARAM: n}).apply_range(m2)
            assert lhs.is_equal(rhs)

    def test_dedupe_and_hull_preserve_points_under_specialize(self):
        rng = random.Random(10)
        for _ in range(25):
            s = _random_set(rng, ("i", "j"), with_param=True)
            n = rng.randint(1, 5)
            conc = s.specialize({PARAM: n})
            for op in ("dedupe", "coalesce"):
                lhs = getattr(s, op)().specialize({PARAM: n})
                assert _sets_equal(lhs, getattr(conc, op)())


class TestCountFastPath:
    def test_union_of_overlapping_boxes_exact(self):
        rng = random.Random(20)
        for _ in range(60):
            dims = tuple(f"d{i}" for i in range(rng.randint(1, 3)))
            space = SetSpace("S", dims, ())
            pieces = []
            for _ in range(rng.randint(1, 5)):
                cs = []
                for d in dims:
                    lo = rng.randint(-4, 6)
                    hi = lo + rng.randint(-1, 5)
                    cs.append(Constraint(LinExpr({d: 1}, -lo), GE))
                    cs.append(Constraint(LinExpr({d: -1}, hi), GE))
                pieces.append(BasicSet(space, cs))
            s = Set(space, pieces)
            fast = _count_boxes(s, {})
            slow = sum(1 for _ in enumerate_set_points(s, {}))
            assert fast == slow

    def test_strided_decomposition_exact(self):
        # bilateral-grid shape: two independent coupled pairs.
        rng = random.Random(21)
        for _ in range(40):
            dims = ("h", "w", "dh", "dw")
            space = SetSpace("S", dims, ())
            cs = []
            for big, small in (("h", "dh"), ("w", "dw")):
                a = rng.choice((2, 4, 8))
                lo = rng.randint(0, 20)
                hi = lo + rng.randint(0, 15)
                cs.append(Constraint(LinExpr({big: a, small: 1}, -lo), GE))
                cs.append(Constraint(LinExpr({big: -a, small: -1}, hi), GE))
                cs.append(Constraint(LinExpr({big: 1}, 0), GE))
                cs.append(Constraint(LinExpr({big: -1}, 10), GE))
                cs.append(Constraint(LinExpr({small: 1}, 0), GE))
                cs.append(Constraint(LinExpr({small: -1}, a - 1), GE))
            s = Set(space, [BasicSet(space, cs)])
            assert _count_boxes(s, {}) == sum(1 for _ in enumerate_set_points(s, {}))

    def test_count_points_memoized(self):
        memo.clear_all()
        space = SetSpace("S", ("i",), ())
        s = Set(space, [BasicSet(space, [
            Constraint(LinExpr({"i": 1}, 0), GE),
            Constraint(LinExpr({"i": -1}, 9), GE),
        ])])
        assert s.count_points() == 10
        before = memo.stats()["count_points"]["hits"]
        assert s.count_points() == 10
        assert memo.stats()["count_points"]["hits"] == before + 1


ALL_WORKLOADS = [
    ("bilateral_grid", 128),
    ("camera_pipeline", 128),
    ("harris", 128),
    ("local_laplacian", 128),
    ("multiscale_interp", 2048),
    ("unsharp_mask", 128),
    ("2mm", 64),
    ("3mm", 64),
    ("atax", 64),
    ("bicg", 64),
    ("covariance", 64),
    ("doitgen", 16),
    ("gemver", 64),
    ("mvt", 64),
    ("conv2d", 48),
]


@pytest.mark.parametrize("name,size", ALL_WORKLOADS)
def test_parametric_footprint_code_parity(name, size):
    """The parametric engine must generate byte-identical code on every
    workload — tile selections and C output are the oracle."""
    from repro.__main__ import _build_workload, _default_tiles
    from repro.codegen import print_tree
    from repro.core import optimize

    outs = {}
    old = os.environ.get("REPRO_PARAMETRIC_FP")
    try:
        for flag in ("0", "1"):
            os.environ["REPRO_PARAMETRIC_FP"] = flag
            memo.clear_all()
            prog = _build_workload(name, size)
            res = optimize(prog, CompileOptions(target="cpu", tile_sizes=_default_tiles(name)))
            outs[flag] = (
                print_tree(res.tree, prog, style="openmp"),
                res.fusion_summary(),
                res.tile_sizes,
            )
    finally:
        if old is None:
            os.environ.pop("REPRO_PARAMETRIC_FP", None)
        else:
            os.environ["REPRO_PARAMETRIC_FP"] = old
        memo.clear_all()
    assert outs["0"] == outs["1"]


def test_parametric_footprint_memo_reused_across_sizes():
    """Two tile-size candidates share one symbolic footprint computation."""
    from repro.__main__ import _build_workload
    from repro.core import optimize

    old = os.environ.get("REPRO_PARAMETRIC_FP")
    os.environ["REPRO_PARAMETRIC_FP"] = "1"
    try:
        memo.clear_all()
        prog = _build_workload("unsharp_mask", 128)
        optimize(prog, CompileOptions(target="cpu", tile_sizes=(8, 8)))
        first = memo.stats()["tile_footprint"]["misses"]
        optimize(prog, CompileOptions(target="cpu", tile_sizes=(32, 32)))
        second = memo.stats()["tile_footprint"]["misses"]
        # The second candidate misses on its concrete keys but reuses the
        # symbolic result: strictly fewer fresh computations than the first.
        assert second - first < first
    finally:
        if old is None:
            os.environ.pop("REPRO_PARAMETRIC_FP", None)
        else:
            os.environ["REPRO_PARAMETRIC_FP"] = old
        memo.clear_all()
