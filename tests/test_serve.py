"""The compile server: protocol, single-flight dedup, limits, lifecycle.

Covers the acceptance criteria of the serve subsystem: the repro-serve/1
wire protocol validates on both ends, identical concurrent requests
collapse to one compile (8 concurrent -> 1 compile + 7 dedup hits), a
failing compile propagates a structured error to every waiter without
poisoning the cache or the flight table, per-request timeouts and
per-client limits answer structured errors, warm repeats answer from the
in-process cache in well under 50 ms, stats is a valid repro-metrics/1
snapshot, and shutdown drains in-flight work before exiting.

No pytest-asyncio here: unit tests drive loops via ``asyncio.run`` and
end-to-end tests run the daemon on a background thread
(:class:`repro.serve.ServerThread`) and speak to it with the blocking
client, exactly as real callers do.
"""

import asyncio
import json
import os
import socket
import threading
import time

import pytest

from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError, wait_for_server
from repro.serve.server import ServeConfig, ServerThread
from repro.serve.singleflight import SingleFlight
from repro.service import CompileCache


# -- protocol --------------------------------------------------------------


def test_protocol_round_trip():
    req = protocol.request("compile", {"workload": "harris"}, id=7)
    assert protocol.validate_request(req) == []
    decoded = protocol.decode(protocol.encode(req))
    assert decoded == req
    ok = protocol.ok_response(7, {"x": 1})
    err = protocol.error_response(7, "timeout", "too slow")
    assert protocol.validate_response(ok) == []
    assert protocol.validate_response(err) == []


def test_protocol_rejects_malformed():
    assert protocol.validate_request({"proto": "bogus/9"})
    assert protocol.validate_request(
        protocol.request("compile", {"workload": ""})
    )
    assert protocol.validate_request(
        protocol.request("compile", {"workload": "x", "target": "tpu"})
    )
    assert protocol.validate_request(
        protocol.request("compile", {"workload": "x", "tile_sizes": [0]})
    )
    assert protocol.validate_request(
        protocol.request("autotune", {"workload": "x", "candidates": []})
    )
    assert protocol.validate_request(
        protocol.request("partition", {"workload": "x", "targets": []})
    )
    assert protocol.validate_request(
        protocol.request("partition", {"workload": "x", "targets": ["tpu"]})
    )
    assert protocol.validate_request(
        protocol.request("partition", {"workload": "x", "targets": ["cpu"]})
    ) == []
    # bool ids and bool tile entries are not ints
    bad = protocol.request("compile", {"workload": "x"}, id=1)
    bad["id"] = True
    assert protocol.validate_request(bad)
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"not json\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"[1, 2]\n")
    bad_reply = {"proto": protocol.PROTOCOL, "id": 1, "ok": False,
                 "error": {"code": "nope", "message": 3}}
    assert len(protocol.validate_response(bad_reply)) == 2


# -- single-flight (unit) --------------------------------------------------


def test_single_flight_one_leader_many_followers():
    async def go():
        flight = SingleFlight()
        calls = 0
        release = asyncio.Event()

        async def work():
            nonlocal calls
            calls += 1
            await release.wait()
            return "value"

        async def request():
            task, leader = flight.task("k", work)
            return await asyncio.shield(task), leader

        requests = [asyncio.create_task(request()) for _ in range(5)]
        await asyncio.sleep(0)  # let every request reach flight.task
        assert len(flight) == 1
        release.set()
        results = await asyncio.gather(*requests)
        assert calls == 1
        assert sum(leader for _, leader in results) == 1
        assert all(value == "value" for value, _ in results)
        assert len(flight) == 0  # entry removed on completion

    asyncio.run(go())


def test_single_flight_failure_does_not_poison():
    async def go():
        flight = SingleFlight()

        async def boom():
            raise RuntimeError("no tiling")

        task, leader = flight.task("k", boom)
        assert leader
        with pytest.raises(RuntimeError):
            await asyncio.shield(task)
        assert "k" not in flight  # failed flight evicted immediately

        async def fine():
            return 42

        task2, leader2 = flight.task("k", fine)
        assert leader2  # fresh flight, not the failed one
        assert await asyncio.shield(task2) == 42

    asyncio.run(go())


def test_single_flight_follower_timeout_spares_leader():
    async def go():
        flight = SingleFlight()
        release = asyncio.Event()

        async def work():
            await release.wait()
            return "done"

        task, _ = flight.task("k", work)
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(asyncio.shield(task), 0.01)
        assert not task.cancelled()  # the shared work survived the timeout
        release.set()
        assert await asyncio.shield(task) == "done"

    asyncio.run(go())


# -- end-to-end over a unix socket -----------------------------------------


def _config(tmp_path, **kw):
    kw.setdefault("socket_path", str(tmp_path / "serve.sock"))
    kw.setdefault("cache", CompileCache(cache_dir=str(tmp_path / "cache")))
    return ServeConfig(**kw)


def test_compile_and_warm_repeat(tmp_path):
    config = _config(tmp_path)
    with ServerThread(config) as st:
        with ServeClient(socket_path=config.socket_path) as client:
            cold = client.compile("conv2d", size=16)
            assert cold["from_cache"] is False
            assert cold["fingerprint"]
            assert cold["fusion"]
            warm_wall = []
            for _ in range(3):
                t0 = time.perf_counter()
                warm = client.compile("conv2d", size=16)
                warm_wall.append(time.perf_counter() - t0)
                assert warm["from_cache"] is True
                assert warm["fingerprint"] == cold["fingerprint"]
            # acceptance: warm repeat answers from the in-process cache
            assert min(warm_wall) < 0.050
            snap = client.stats()
            assert snap["counters"]["serve.compiles"] == 1
            assert snap["counters"]["serve.cache_hits"] == 3
    assert not os.path.exists(config.socket_path)  # unlinked at drain
    assert st.server._connections == 0


def _blocking_fn(release, calls, lock, result=None, error=None):
    """A fake compile_fn: waits for ``release``, counts invocations."""

    def fn(norm):
        with lock:
            calls.append(dict(norm))
        assert release.wait(10), "test never released the compile"
        summary = {
            "workload": norm["workload"],
            "fingerprint": "f" * 8,
            "from_cache": False,
            "compile_ms": 1.0,
            "error": error,
        }
        if result:
            summary.update(result)
        return summary, None

    return fn


def test_eight_concurrent_identical_requests_compile_once(tmp_path):
    release = threading.Event()
    calls, lock = [], threading.Lock()
    config = _config(tmp_path)
    with ServerThread(config, compile_fn=_blocking_fn(release, calls, lock)):
        results, errors = [], []

        def one():
            try:
                with ServeClient(socket_path=config.socket_path) as c:
                    results.append(c.compile("conv2d", size=16))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one) for _ in range(8)]
        for t in threads:
            t.start()
        # Wait until the server has *accepted* all 8, then let the one
        # leader finish; stats runs on the loop so it answers while the
        # flight is still blocked on the worker thread.
        with ServeClient(socket_path=config.socket_path) as probe:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                snap = probe.stats()
                if snap["counters"].get("serve.requests.compile", 0) >= 8:
                    break
                time.sleep(0.01)
            release.set()
            for t in threads:
                t.join(10)
            assert not errors
            assert len(results) == 8
            # acceptance: exactly one compile, seven dedup hits
            assert len(calls) == 1
            snap = probe.stats()
            assert snap["counters"]["serve.compiles"] == 1
            assert snap["counters"]["serve.dedup_hits"] == 7
            fingerprints = {r["fingerprint"] for r in results}
            assert fingerprints == {"f" * 8}
            assert sum(r["deduped"] for r in results) == 7


def test_failed_compile_reaches_every_waiter_without_poisoning(tmp_path):
    state = {"fail": True}
    release = threading.Event()
    release.set()  # no blocking needed; concurrency comes from dedup

    def fn(norm):
        if state["fail"]:
            return {"workload": norm["workload"], "error": "infeasible tiling",
                    "from_cache": False}, None
        return {"workload": norm["workload"], "fingerprint": "ok",
                "from_cache": False, "error": None}, None

    config = _config(tmp_path)
    with ServerThread(config, compile_fn=fn):
        failures = []

        def one():
            with ServeClient(socket_path=config.socket_path) as c:
                try:
                    c.compile("conv2d", size=16)
                except ServeError as exc:
                    failures.append(exc)

        threads = [threading.Thread(target=one) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        # every waiter saw the structured error...
        assert len(failures) == 4
        assert {e.code for e in failures} == {"compile-error"}
        assert "infeasible" in failures[0].message
        # ...and the failure poisoned nothing: the same key compiles
        # fresh on the next request.
        state["fail"] = False
        with ServeClient(socket_path=config.socket_path) as c:
            out = c.compile("conv2d", size=16)
            assert out["fingerprint"] == "ok"
            snap = c.stats()
            assert snap["counters"]["serve.compile_errors"] >= 1
            assert snap["counters"]["serve.compiles"] == 1


def test_request_timeout_answers_structured_error(tmp_path):
    release = threading.Event()
    calls, lock = [], threading.Lock()
    config = _config(tmp_path, request_timeout=0.1)
    with ServerThread(config, compile_fn=_blocking_fn(release, calls, lock)):
        try:
            with ServeClient(socket_path=config.socket_path) as c:
                with pytest.raises(ServeError) as exc_info:
                    c.compile("conv2d", size=16)
                assert exc_info.value.code == "timeout"
                snap = c.stats()
                assert snap["counters"]["serve.timeouts"] == 1
        finally:
            release.set()  # let the orphaned flight finish before drain


def test_per_client_limit_answers_overloaded(tmp_path):
    release = threading.Event()
    calls, lock = [], threading.Lock()
    config = _config(tmp_path, client_limit=1)
    with ServerThread(config, compile_fn=_blocking_fn(release, calls, lock)):
        try:
            # Pipeline two *different* compiles on one raw connection; the
            # second must bounce off the per-client limit immediately.
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(10)
            sock.connect(config.socket_path)
            f = sock.makefile("rb")
            sock.sendall(protocol.encode(protocol.request(
                "compile", {"workload": "conv2d", "size": 16}, id=1)))
            sock.sendall(protocol.encode(protocol.request(
                "compile", {"workload": "conv2d", "size": 32}, id=2)))
            first = protocol.decode(f.readline())
            assert first["id"] == 2 and first["ok"] is False
            assert first["error"]["code"] == "overloaded"
            release.set()
            second = protocol.decode(f.readline())
            assert second["id"] == 1 and second["ok"] is True
            sock.close()
        finally:
            release.set()


def test_bad_requests_and_unknown_method(tmp_path):
    config = _config(tmp_path)
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as c:
            with pytest.raises(ServeError) as e:
                c.compile("no-such-workload")
            assert e.value.code == "bad-request"
            assert "no-such-workload" in e.value.message
            with pytest.raises(ServeError) as e:
                c.compile("conv2d", startup="no-such-heuristic")
            assert e.value.code == "bad-request"
            with pytest.raises(ServeError) as e:
                c.call("explode")
            assert e.value.code == "unknown-method"
            snap = c.stats()
            assert snap["counters"]["serve.bad_requests"] == 2
        # raw garbage on the wire gets a structured reply, id null
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(config.socket_path)
        sock.sendall(b"this is not json\n")
        reply = protocol.decode(sock.makefile("rb").readline())
        assert reply["ok"] is False and reply["id"] is None
        assert reply["error"]["code"] == "bad-request"
        sock.close()


def test_stats_is_valid_metrics_snapshot(tmp_path):
    from repro.obs import validate_metrics_snapshot

    config = _config(tmp_path)
    with ServerThread(config):
        with ServeClient(socket_path=config.socket_path) as c:
            c.compile("conv2d", size=16)
            snap = c.stats()
            assert validate_metrics_snapshot(snap) == []
            assert snap["schema"] == "repro-metrics/1"
            assert snap["meta"]["service"] == "repro-serve"
            assert snap["meta"]["protocol"] == protocol.PROTOCOL
            # the compile's own pass spans were absorbed live
            assert snap["counters"].get("span.startup_fusion.calls", 0) >= 1
            assert "serve.request_ms" in snap["histograms"]
            assert snap["gauges"]["serve.uptime_seconds"] >= 0
            assert "serve.cache.stores" in snap["gauges"]
            # round-trips through JSON (the wire already proved this once)
            assert validate_metrics_snapshot(
                json.loads(json.dumps(snap))) == []


def test_health_draining_and_graceful_drain(tmp_path):
    release = threading.Event()
    calls, lock = [], threading.Lock()
    config = _config(tmp_path)
    st = ServerThread(config, compile_fn=_blocking_fn(release, calls, lock))
    st.start()
    inflight_result = {}

    def slow_compile():
        with ServeClient(socket_path=config.socket_path) as c:
            inflight_result["out"] = c.compile("conv2d", size=16)

    worker = threading.Thread(target=slow_compile)
    worker.start()
    with ServeClient(socket_path=config.socket_path) as c:
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not calls:
            time.sleep(0.01)
        assert c.health()["status"] == "ok"
        assert c.shutdown()["stopping"] is True
        # post-shutdown: health still answers (draining), new work bounces
        assert c.health()["status"] == "draining"
        with pytest.raises(ServeError) as e:
            c.compile("conv2d", size=99)
        assert e.value.code == "draining"
    release.set()  # let the in-flight compile finish...
    worker.join(10)
    st.stop()
    assert st._thread is not None and not st._thread.is_alive()
    # ...and the drain delivered its result rather than dropping it
    assert inflight_result["out"]["workload"] == "conv2d"
    assert not os.path.exists(config.socket_path)


def test_tcp_endpoint(tmp_path):
    config = ServeConfig(
        socket_path=None, host="127.0.0.1", port=0,
        cache=CompileCache(cache_dir=str(tmp_path / "cache")),
    )
    with ServerThread(config) as st:
        host, port = st.tcp_address
        wait_for_server(host=host, port=port, timeout=10)
        with ServeClient(host=host, port=port) as c:
            out = c.compile("conv2d", size=16)
            assert out["from_cache"] is False
            assert c.compile("conv2d", size=16)["from_cache"] is True


def test_autotune_over_the_wire(tmp_path):
    config = _config(tmp_path)
    with ServerThread(config) as st:
        with ServeClient(socket_path=config.socket_path) as c:
            out = c.autotune("conv2d", size=16, candidates=[8, 16])
            assert tuple(out["best_tile_sizes"])
            assert out["evaluations"] >= 1
            assert out["best_time_ms"] > 0
            with pytest.raises(ServeError) as e:
                c.autotune("no-such-workload")
            assert e.value.code == "bad-request"
    assert st.server.registry.counters["serve.requests.autotune"] == 2


def test_partition_over_the_wire(tmp_path):
    config = _config(tmp_path)
    with ServerThread(config) as st:
        with ServeClient(socket_path=config.socket_path) as c:
            out = c.partition("camera_resnet", size=64)
            assert out["workload"] == "camera_resnet"
            assert set(out["assignment"]) == {
                "Squant", "Sconv1_init", "Sconv1", "Sbn1",
                "Sconv2_init", "Sconv2", "Sbn2",
            }
            assert out["partitions"] and out["modeled"]["mixed"]
            # degenerate single-target request round-trips too
            single = c.partition("conv2d", size=16, targets=["cpu"])
            assert single["degenerate"] is True
            assert single["targets_used"] == ["cpu"]
            with pytest.raises(ServeError) as e:
                c.partition("no-such-workload")
            assert e.value.code == "bad-request"
    assert st.server.registry.counters["serve.requests.partition"] == 3


def test_server_thread_surfaces_startup_failure(tmp_path):
    occupied = str(tmp_path / "dir-in-the-way")
    os.makedirs(os.path.join(occupied, "x"))  # unlink fails: non-empty dir
    config = _config(tmp_path, socket_path=occupied)
    with pytest.raises(RuntimeError, match="failed to start"):
        ServerThread(config).start()


# -- CLI -------------------------------------------------------------------


def test_cli_client_verbs(tmp_path, capsys):
    from repro.__main__ import main
    from repro.obs import validate_metrics_snapshot

    config = _config(tmp_path)
    with ServerThread(config):
        sock = config.socket_path
        assert main(["client", "--socket", sock, "--wait", "10",
                     "compile", "conv2d", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "from cache:   no" in out
        assert main(["client", "--socket", sock,
                     "compile", "conv2d", "--size", "16"]) == 0
        assert "from cache:   yes" in capsys.readouterr().out
        assert main(["client", "--socket", sock, "stats", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert validate_metrics_snapshot(snap) == []
        assert snap["counters"]["serve.cache_hits"] == 1
        assert main(["client", "--socket", sock, "health"]) == 0
        assert "status:   ok" in capsys.readouterr().out
        assert main(["client", "--socket", sock, "tune", "conv2d",
                     "--size", "16", "--candidates", "8", "16"]) == 0
        assert "best tile sizes:" in capsys.readouterr().out
        assert main(["client", "--socket", sock, "partition", "conv2d",
                     "--size", "16", "--targets", "cpu"]) == 0
        assert "assignment:" in capsys.readouterr().out
        assert main(["client", "--socket", sock, "shutdown"]) == 0
        assert "stopping: True" in capsys.readouterr().out


def test_cli_client_unreachable_server(tmp_path, capsys):
    from repro.__main__ import main

    missing = str(tmp_path / "nobody-home.sock")
    assert main(["client", "--socket", missing, "health"]) == 1
    assert "cannot reach compile server" in capsys.readouterr().err
