"""Tests for dependence analysis on the paper's running example."""

from repro.deps import (
    dep_distance_bounds,
    flow_deps,
    memory_deps,
    producer_consumer_tensors,
    statement_row_map,
)
from repro.pipelines import conv2d


def dep_between(deps, src, dst, tensor=None):
    for d in deps:
        if d.source == src and d.target == dst and (tensor is None or d.tensor == tensor):
            return d
    return None


class TestFlowDeps:
    def setup_method(self):
        self.prog = conv2d.build({"H": 8, "W": 8, "KH": 3, "KW": 3})
        self.deps = flow_deps(self.prog)

    def test_quant_to_conv_dep_exists(self):
        d = dep_between(self.deps, "S0", "S2", "A")
        assert d is not None

    def test_init_to_reduce_dep_exists(self):
        assert dep_between(self.deps, "S1", "S2", "C") is not None

    def test_reduce_to_relu_dep_exists(self):
        assert dep_between(self.deps, "S2", "S3", "C") is not None

    def test_no_backwards_dep(self):
        assert dep_between(self.deps, "S3", "S0") is None
        assert dep_between(self.deps, "S2", "S1") is None

    def test_self_dep_of_reduction(self):
        d = dep_between(self.deps, "S2", "S2", "C")
        assert d is not None

    def test_dep_relation_points(self):
        # S0[h', w'] -> S2[h, w, kh, kw] iff h' = h + kh, w' = w + kw
        d = dep_between(self.deps, "S0", "S2", "A")
        rel = d.relation.fix_params(self.prog.params)
        img = rel.image_of_point({"h": 1, "w": 2})
        # A[1,2] is read by S2 instances with h+kh=1, w+kw=2
        # h in {0,1} (h<=5), kh=1-h; w in {0,1,2}
        assert img.count_points() == 2 * 3


class TestDistances:
    def setup_method(self):
        self.prog = conv2d.build({"H": 8, "W": 8, "KH": 3, "KW": 3})
        self.deps = flow_deps(self.prog)

    def test_stencil_distance_bounds(self):
        d = dep_between(self.deps, "S0", "S2", "A")
        src = statement_row_map(self.prog.statement("S0"), 2)
        dst = statement_row_map(self.prog.statement("S2"), 2)
        bounds = dep_distance_bounds(d, src, dst, self.prog.params)
        # h = h' - kh so distance h - h' in [-(KH-1), 0]
        assert bounds[0] == (-2, 0)
        assert bounds[1] == (-2, 0)

    def test_pointwise_distance_is_zero(self):
        d = dep_between(self.deps, "S2", "S3", "C")
        src = statement_row_map(self.prog.statement("S2"), 2)
        dst = statement_row_map(self.prog.statement("S3"), 2)
        bounds = dep_distance_bounds(d, src, dst, self.prog.params)
        assert bounds == [(0, 0), (0, 0)]

    def test_reduction_self_dep_distance(self):
        d = dep_between(self.deps, "S2", "S2", "C")
        s2 = self.prog.statement("S2")
        rows = statement_row_map(s2, 4)
        bounds = dep_distance_bounds(d, rows, rows, self.prog.params)
        # outer h, w distances are zero; kh/kw carry the reduction
        assert bounds[0] == (0, 0)
        assert bounds[1] == (0, 0)
        lo2, hi2 = bounds[2]
        assert (lo2, hi2) != (0, 0)


class TestKindsAndGraph:
    def test_anti_dep_of_inplace_quant(self):
        prog = conv2d.build({"H": 6, "W": 6})
        deps = memory_deps(prog)
        kinds = {(d.source, d.target, d.kind) for d in deps}
        # S1 writes C then S2 reads + writes C: flow and output
        assert ("S1", "S2", "flow") in kinds
        assert ("S1", "S2", "output") in kinds

    def test_producer_consumer_table(self):
        prog = conv2d.build({"H": 6, "W": 6})
        table = producer_consumer_tensors(prog)
        assert table[("S0", "S2")] == ["A"]
        assert "C" in table[("S2", "S3")]
