"""Unit tests for the IR layer: expressions, tensors, statements, programs."""

import numpy as np
import pytest

from repro.ir import Const, ProgramBuilder, Tensor, TensorStore, as_expr, relu, vmax
from repro.pipelines import conv2d
from repro.presburger import LinExpr, parse_set


class TestExpr:
    def test_operator_sugar_builds_tree(self):
        A = Tensor("A", (8,))
        i = LinExpr.var("i")
        e = A[i] * 2 + 1
        loads = list(e.loads())
        assert len(loads) == 1
        assert loads[0].tensor == "A"

    def test_op_count(self):
        A = Tensor("A", (8,))
        i = LinExpr.var("i")
        assert (A[i] * 2 + 1).op_count() == 2
        assert Const(3).op_count() == 0
        assert relu(A[i]).op_count() >= 1

    def test_evaluate_with_store(self):
        A = Tensor("A", (8,))
        store = TensorStore({"A": A}, {})
        store.write("A", (3,), 5.0)
        i = LinExpr.var("i")
        e = A[i] * 2 + 1
        assert e.evaluate({"i": 3}, store) == 11.0

    def test_relu_semantics(self):
        A = Tensor("A", (4,))
        store = TensorStore({"A": A}, {})
        store.write("A", (0,), -2.0)
        store.write("A", (1,), 2.0)
        i = LinExpr.var("i")
        e = relu(A[i])
        assert e.evaluate({"i": 0}, store) == 0.0
        assert e.evaluate({"i": 1}, store) == 2.0

    def test_min_max(self):
        e = vmax(as_expr(3), as_expr(7))
        assert e.evaluate({}, None) == 7

    def test_affine_value(self):
        e = as_expr(LinExpr.var("i") + 2)
        assert e.evaluate({"i": 5}, None) == 7


class TestTensor:
    def test_symbolic_shape(self):
        t = Tensor("A", ("H", "W"))
        assert t.concrete_shape({"H": 3, "W": 4}) == (3, 4)
        assert t.size_elems({"H": 3, "W": 4}) == 12

    def test_affine_shape_entries(self):
        t = Tensor("C", (LinExpr.var("H") - 2, LinExpr.var("W") - 2))
        assert t.concrete_shape({"H": 10, "W": 8}) == (8, 6)

    def test_bad_arity_indexing(self):
        t = Tensor("A", ("H", "W"))
        with pytest.raises(IndexError):
            t[LinExpr.var("i")]

    def test_store_set_input_validates_shape(self):
        t = Tensor("A", (4,))
        store = TensorStore({"A": t}, {})
        with pytest.raises(ValueError):
            store.set_input("A", np.zeros(5))


class TestStatementAccessRelations:
    def test_conv2d_write_relations(self):
        prog = conv2d.build({"H": 8, "W": 8})
        s2 = prog.statement("S2")
        wr = s2.write_relation()
        assert wr.space.in_name == "S2"
        assert wr.space.out_name == "C"
        assert wr.space.n_in == 4
        assert wr.space.n_out == 2

    def test_conv2d_read_includes_accumulator(self):
        prog = conv2d.build()
        s2 = prog.statement("S2")
        assert set(s2.tensors_read()) == {"A", "B", "C"}

    def test_stencil_read_footprint(self):
        prog = conv2d.build({"H": 8, "W": 8, "KH": 3, "KW": 3})
        s2 = prog.statement("S2")
        reads = s2.read_relations()
        m = reads[("S2", "A")].fix_params({"H": 8, "W": 8, "KH": 3, "KW": 3})
        img = m.image_of_point({"h": 2, "w": 2, "kh": 0, "kw": 0})
        # one instance reads exactly one element of A
        assert img.count_points() == 1
        footprint = m.fix({"h": 2, "w": 2}).range()
        assert footprint.count_points() == 9

    def test_domain_name_must_match(self):
        from repro.ir import Statement

        dom = parse_set("{ T[i] : 0 <= i < 4 }")
        A = Tensor("A", (4,))
        with pytest.raises(ValueError):
            Statement("S", dom, A[LinExpr.var("i")], Const(0))


class TestProgram:
    def test_liveout_and_intermediates(self):
        prog = conv2d.build()
        assert prog.liveout == ("C",)
        assert prog.intermediate_tensors() == ("A",)
        assert prog.input_tensors() == ("B",)

    def test_duplicate_statement_names_rejected(self):
        b = ProgramBuilder("p", params={"N": 4})
        A = b.tensor("A", ("N",))
        (i,) = b.iters("i")
        b.assign("S", (i,), "0 <= i < N", A[i], 0)
        b.assign("S", (i,), "0 <= i < N", A[i], 1)
        with pytest.raises(ValueError):
            b.build()

    def test_domains_union(self):
        prog = conv2d.build({"H": 6, "W": 6, "KH": 3, "KW": 3})
        doms = prog.domains()
        assert set(doms.names()) == {"S0", "S1", "S2", "S3"}
        assert doms["S0"].count_points(prog.params) == 36
        assert doms["S2"].count_points(prog.params) == 16 * 9

    def test_total_instances(self):
        prog = conv2d.build({"H": 6, "W": 6})
        assert prog.total_instances() == 36 + 16 + 144 + 16

    def test_builder_rejects_non_iterator_dims(self):
        b = ProgramBuilder("p", params={"N": 4})
        A = b.tensor("A", ("N",))
        (i,) = b.iters("i")
        with pytest.raises(ValueError):
            b.assign("S", (i + 1,), "0 <= i < N", A[i], 0)

    def test_undeclared_liveout_rejected(self):
        b = ProgramBuilder("p", params={"N": 4})
        A = b.tensor("A", ("N",))
        (i,) = b.iters("i")
        b.assign("S", (i,), "0 <= i < N", A[i], 0)
        b.set_liveout("Z")
        with pytest.raises(ValueError):
            b.build()

    def test_writers_readers(self):
        prog = conv2d.build()
        assert [s.name for s in prog.writers_of("A")] == ["S0"]
        assert [s.name for s in prog.readers_of("A")] == ["S0", "S2"]
