"""The compilation service layer: fingerprints, cache, driver, spans.

Covers the acceptance criteria of the service subsystem: content
addressing (structurally identical programs share a cache key), the
two-tier cache (memory hits, disk round-trips across processes,
corruption eviction), the deduplicating batch driver (error isolation,
bit-identical parity with the serial autotuner) and pass instrumentation.
"""

import os
import pickle
import subprocess
import sys
import threading

import pytest

from repro import CompileOptions
from repro.core import optimize
from repro.pipelines import conv2d, polybench
from repro.scheduler.autotune import autotune_tile_sizes
from repro.service import (
    CompileCache,
    CompileRequest,
    cached_optimize,
    compile_batch,
    fingerprint_program,
    fingerprint_request,
    instrument,
)

SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def build_conv(h=32, w=32):
    return conv2d.build({"H": h, "W": w, "KH": 3, "KW": 3})


# -- fingerprints ----------------------------------------------------------


def test_fingerprint_is_content_addressed():
    a = build_conv()
    b = build_conv()  # independent builder, same structure
    assert a is not b
    assert fingerprint_program(a) == fingerprint_program(b)
    assert fingerprint_request(a, "cpu", (16, 16)) == fingerprint_request(
        b, "cpu", (16, 16)
    )


def test_fingerprint_sensitivity():
    p = build_conv()
    base = fingerprint_request(p, "cpu", (16, 16))
    assert fingerprint_request(p, "cpu", (8, 8)) != base
    assert fingerprint_request(p, "gpu", (16, 16)) != base
    assert fingerprint_request(p, "cpu", (16, 16), startup="maxfuse") != base
    assert fingerprint_request(p, "cpu", None) != base
    bigger = build_conv(64, 64)
    assert fingerprint_request(bigger, "cpu", (16, 16)) != base


def test_fingerprint_unknown_target_does_not_raise():
    p = build_conv()
    fp = fingerprint_request(p, "bogus", (16, 16))
    assert fp != fingerprint_request(p, "cpu", (16, 16))


# -- cache -----------------------------------------------------------------


def test_second_optimize_served_from_cache(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    p = build_conv()
    r1 = cached_optimize(p, options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache))
    assert cache.stats.misses == 1 and cache.stats.stores == 1

    r2 = cached_optimize(build_conv(), options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache))
    assert cache.stats.memory_hits == 1
    assert cache.stats.misses == 1
    assert r2.fusion_summary() == r1.fusion_summary()
    assert r2 is not r1  # hits hand out fresh copies, never shared state


def test_cache_round_trips_through_disk(tmp_path):
    p = build_conv()
    writer = CompileCache(cache_dir=str(tmp_path))
    r1 = cached_optimize(p, options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=writer))

    reader = CompileCache(cache_dir=str(tmp_path))  # cold memory tier
    r2 = cached_optimize(build_conv(), options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=reader))
    assert reader.stats.disk_hits == 1 and reader.stats.misses == 0
    assert r2.fusion_summary() == r1.fusion_summary()


def test_cache_round_trips_across_processes(tmp_path):
    script = (
        "from repro import CompileOptions\n"
        "from repro.pipelines import conv2d\n"
        "from repro.service import cached_optimize\n"
        "p = conv2d.build({'H': 32, 'W': 32, 'KH': 3, 'KW': 3})\n"
        "cached_optimize(p, options=CompileOptions(target='cpu', tile_sizes=(16, 16)))\n"
    )
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", script], check=True, env=env, timeout=300
    )

    cache = CompileCache(cache_dir=str(tmp_path))
    result = cached_optimize(build_conv(), options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache))
    assert cache.stats.disk_hits == 1 and cache.stats.misses == 0
    assert result.fusion_summary() == optimize(
        build_conv(), CompileOptions(target="cpu", tile_sizes=(16, 16))
    ).fusion_summary()


def test_corrupted_entry_is_evicted_not_fatal(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    p = build_conv()
    key = fingerprint_request(p, "cpu", (16, 16))
    cached_optimize(p, options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache))
    path = cache._path(key)
    assert os.path.exists(path)
    with open(path, "wb") as f:
        f.write(b"this is not a pickle")

    fresh = CompileCache(cache_dir=str(tmp_path))
    assert fresh.get(key) is None
    assert not os.path.exists(path)
    assert fresh.stats.errors == 1 and fresh.stats.disk_evictions == 1
    # And a full cached_optimize still works afterwards.
    cached_optimize(build_conv(), options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=fresh))
    assert fresh.stats.stores == 1


def test_stale_schema_entry_is_evicted(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    key = "ab" + "0" * 62
    path = cache._path(key)
    os.makedirs(os.path.dirname(path))
    with open(path, "wb") as f:
        pickle.dump(("repro-cache", -1, key, b"payload"), f)
    assert cache.get(key) is None
    assert not os.path.exists(path)


def test_memory_lru_is_bounded(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path), max_entries=2, persistent=False)
    for i, blob in enumerate(("a", "b", "c")):
        cache.put(f"k{i}", blob)
    assert cache.stats.memory_evictions == 1
    assert cache.get("k0") is None  # evicted, persistent=False
    assert cache.get("k2") == "c"


def test_cache_info_and_clear(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    cached_optimize(build_conv(), options=CompileOptions(target="cpu", tile_sizes=(16, 16), cache=cache))
    info = cache.info()
    assert info["disk_entries"] == 1 and info["disk_bytes"] > 0
    assert info["memory_entries"] == 1
    assert info["memo_entries"] == 1  # the compile spilled its memo tables
    assert cache.clear() == 2  # the result entry plus the memo snapshot
    assert cache.info()["disk_entries"] == 0
    assert cache.info()["memo_entries"] == 0


# -- batch driver ----------------------------------------------------------


def test_compile_batch_dedupes_and_isolates_errors():
    p = build_conv()
    requests = [
        CompileRequest(p, tile_sizes=(16, 16)),
        CompileRequest(p, tile_sizes=(16, 16)),  # duplicate fingerprint
        CompileRequest(p, tile_sizes=(8, 8)),
        CompileRequest(p, target="bogus"),  # must not kill the batch
    ]
    outcomes = compile_batch(requests, options=CompileOptions(mode="serial"))
    assert len(outcomes) == 4
    assert outcomes[0].fingerprint == outcomes[1].fingerprint
    assert outcomes[0].ok and outcomes[1].ok and outcomes[2].ok
    assert not outcomes[3].ok and "unknown target 'bogus'" in outcomes[3].error
    assert outcomes[0].result.fusion_summary() == outcomes[1].result.fusion_summary()


def test_compile_batch_uses_cache(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    p = build_conv()
    requests = [CompileRequest(p, tile_sizes=(16, 16))]
    first = compile_batch(requests, options=CompileOptions(mode="serial", cache=cache))
    assert not first[0].from_cache
    second = compile_batch(requests, options=CompileOptions(mode="serial", cache=cache))
    assert second[0].from_cache
    assert cache.stats.hits == 1


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_compile_batch_parallel_modes(mode):
    p = build_conv()
    requests = [
        CompileRequest(p, tile_sizes=(16, 16)),
        CompileRequest(p, tile_sizes=(8, 8)),
        CompileRequest(p, target="bogus"),
    ]
    try:
        outcomes = compile_batch(requests, options=CompileOptions(mode=mode, jobs=2))
    except OSError:
        pytest.skip(f"{mode} pool unavailable in this environment")
    serial = compile_batch(requests, options=CompileOptions(mode="serial"))
    for got, want in zip(outcomes, serial):
        assert got.ok == want.ok
        if got.ok:
            assert got.result.fusion_summary() == want.result.fusion_summary()
        else:
            assert got.error == want.error


def test_compile_batch_rejects_unknown_mode():
    with pytest.raises(ValueError):
        compile_batch([], options=CompileOptions(mode="warp"))


# -- autotune through the driver -------------------------------------------


@pytest.mark.parametrize(
    "builder, candidates",
    [
        (lambda: build_conv(64, 64), (8, 16, 32)),
        (lambda: polybench.BUILDERS["atax"](128), (8, 16)),
    ],
)
def test_autotune_parallel_matches_serial(builder, candidates):
    serial = autotune_tile_sizes(builder(), candidates=candidates, dims=2)
    parallel = autotune_tile_sizes(builder(), options=CompileOptions(mode="auto", jobs=2), candidates=candidates, dims=2)
    assert parallel.best_sizes == serial.best_sizes
    assert parallel.best_time == serial.best_time
    assert parallel.evaluations == serial.evaluations
    assert parallel.failures == serial.failures


def test_autotune_warm_cache_reuses_results(tmp_path):
    cache = CompileCache(cache_dir=str(tmp_path))
    p = build_conv()
    cold = autotune_tile_sizes(p, options=CompileOptions(cache=cache, mode="serial"), candidates=(8, 16), dims=2)
    stores = cache.stats.stores
    assert stores > 0
    warm = autotune_tile_sizes(p, options=CompileOptions(cache=cache, mode="serial"), candidates=(8, 16), dims=2)
    assert cache.stats.stores == stores  # nothing recompiled
    assert cache.stats.hits >= stores
    assert warm.best_sizes == cold.best_sizes
    assert warm.best_time == cold.best_time


# -- instrumentation -------------------------------------------------------


def test_instrument_collects_pass_spans_and_counters():
    from repro.presburger import memo

    # The counters below measure a cold compile; operation memos warmed by
    # earlier tests would otherwise absorb the FM work this test asserts on.
    memo.clear_all()
    p = build_conv()
    with instrument.collect() as report:
        optimize(p, CompileOptions(target="cpu", tile_sizes=(16, 16)))
    assert {"startup_fusion", "tile_shapes", "post_fusion"} <= set(report.spans)
    assert all(s.seconds >= 0 and s.calls == 1 for s in report.spans.values())
    assert report.counters.get("presburger.fm_eliminate", 0) > 0
    text = report.format()
    assert "per-pass timings" in text and "tile_shapes" in text


def test_instrument_noop_when_inactive():
    assert not instrument.active()
    with instrument.span("nothing"):
        instrument.count("nothing")
    assert not instrument.active()


def test_instrument_nested_collectors():
    with instrument.collect() as outer:
        with instrument.collect() as inner:
            with instrument.span("x"):
                instrument.count("c", 2)
    assert outer.spans["x"].calls == 1
    assert inner.spans["x"].calls == 1
    assert outer.counters["c"] == inner.counters["c"] == 2


def test_optimize_result_pickle_round_trip():
    p = build_conv()
    result = optimize(p, CompileOptions(target="cpu", tile_sizes=(16, 16)))
    clone = pickle.loads(pickle.dumps(result))
    assert clone.fusion_summary() == result.fusion_summary()
    assert clone.tile_sizes == result.tile_sizes
    assert clone.tree.pretty() == result.tree.pretty()


# -- thread safety and interrupt handling ----------------------------------


def test_cache_memory_tier_is_thread_safe(tmp_path):
    """Concurrent get/put from many threads: no exceptions, no corruption,
    LRU bound respected, and the hit/miss ledger stays consistent."""
    cache = CompileCache(cache_dir=str(tmp_path), max_entries=8)
    n_threads, n_ops = 8, 150
    errors = []
    barrier = threading.Barrier(n_threads)

    def hammer(seed):
        try:
            barrier.wait(10)
            for i in range(n_ops):
                key = f"key-{(seed * 7 + i) % 24}"
                value = cache.get(key)
                if value is None:
                    cache.put(key, {"payload": key})
                else:
                    assert value["payload"] == key
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(s,)) for s in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors
    # every get() was ledgered exactly once, under the lock
    stats = cache.stats
    assert stats.hits + stats.misses == n_threads * n_ops
    assert stats.stores == stats.misses  # each miss was followed by a put
    info = cache.info()
    assert info["memory_entries"] <= 8
    assert stats.memory_evictions > 0  # 24 keys through an 8-slot LRU


def test_compile_batch_process_interrupt_aborts_pool(monkeypatch):
    """A KeyboardInterrupt mid-batch must terminate the worker pool and
    re-raise — not hang joining workers or orphan them."""
    from repro.service import driver

    events = []

    class FakeProcess:
        def __init__(self, pid):
            self.pid = pid

        def terminate(self):
            events.append(("terminate", self.pid))

        def join(self, timeout=None):
            events.append(("join", self.pid))

    class FakeFuture:
        def result(self):
            raise KeyboardInterrupt

    class FakePool:
        def __init__(self, max_workers=None):
            self._processes = {pid: FakeProcess(pid) for pid in (101, 102)}

        def submit(self, fn, payload):
            return FakeFuture()

        def shutdown(self, wait=True, cancel_futures=False):
            events.append(("shutdown", wait, cancel_futures))

    monkeypatch.setattr(driver, "ProcessPoolExecutor", FakePool)
    requests = [
        CompileRequest(build_conv(16, 16)),
        CompileRequest(build_conv(24, 24)),
    ]
    with pytest.raises(KeyboardInterrupt):
        compile_batch(requests, options=CompileOptions(mode="process"))
    assert ("shutdown", False, True) in events  # cancel_futures, no wait
    assert ("terminate", 101) in events and ("terminate", 102) in events
    assert ("join", 101) in events and ("join", 102) in events


def test_compile_batch_auto_mode_degrades_but_reraises_interrupt(monkeypatch):
    """auto mode falls back to threads on ordinary pool failures, but a
    KeyboardInterrupt still aborts the pool and propagates."""
    from repro.service import driver

    class FakeFuture:
        def result(self):
            raise KeyboardInterrupt

    class FakePool:
        def __init__(self, max_workers=None):
            self._processes = {}

        def submit(self, fn, payload):
            return FakeFuture()

        def shutdown(self, wait=True, cancel_futures=False):
            pass

    monkeypatch.setattr(driver, "ProcessPoolExecutor", FakePool)
    requests = [
        CompileRequest(build_conv(16, 16)),
        CompileRequest(build_conv(24, 24)),
    ]
    with pytest.raises(KeyboardInterrupt):
        compile_batch(requests, options=CompileOptions(mode="auto"))
