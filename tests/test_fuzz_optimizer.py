"""Property-based fuzzing of the whole pass.

Hypothesis generates random multi-stage image pipelines — pointwise maps,
stencils, down/upsampling, diamonds (stages with multiple consumers) —
and random tile sizes; the optimized schedule must (a) execute
bit-identically to naive program order on the live-out tensor and (b) pass
the dependence-order validator.  This is the strongest guarantee in the
repository: Algorithms 1-3 are exercised over arbitrary DAG shapes, not
just the named benchmarks.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CompileOptions
from repro.codegen import execute_naive, make_store, run_program
from repro.core import optimize
from repro.core.validate import validate_tree
from repro.pipelines.common import ImagePipeline

pytestmark = pytest.mark.slow

SIZE = 18  # small enough to execute, large enough for 2-3 tiles per dim

OPS = ("pointwise", "stencil_x", "stencil_y", "down", "up", "combine")


@st.composite
def pipelines(draw):
    """A random DAG of 2-7 stages over a SIZE x SIZE image."""
    p = ImagePipeline("fuzz")
    img = p.source("in_img", SIZE, SIZE)
    produced = [img]
    n_stages = draw(st.integers(2, 7))
    for k in range(n_stages):
        op = draw(st.sampled_from(OPS))
        src = produced[draw(st.integers(0, len(produced) - 1))]
        if op == "pointwise":
            out = p.pointwise(f"pw{k}", [src], lambda a: a * 1.5 + 0.25)
        elif op == "stencil_x" and src.w >= 4:
            out = p.stencil(f"sx{k}", src, [(0, 0), (0, 1), (0, 2)])
        elif op == "stencil_y" and src.h >= 4:
            out = p.stencil(f"sy{k}", src, [(0, 0), (1, 0), (2, 0)])
        elif op == "down" and src.h >= 8 and src.w >= 8:
            out = p.downsample(f"dn{k}", src, factor=2)
        elif op == "up" and src.h * 2 <= 64:
            out = p.upsample(f"up{k}", src, factor=2)
        elif op == "combine" and len(produced) >= 2:
            other = produced[draw(st.integers(0, len(produced) - 1))]
            h, w = min(src.h, other.h), min(src.w, other.w)
            from repro.pipelines.common import Image

            a = Image(src.tensor, h, w)
            b = Image(other.tensor, h, w)
            out = p.pointwise(f"cb{k}", [a, b], lambda x, y: x + y * 0.5)
        else:
            out = p.pointwise(f"pw{k}", [src], lambda a: a * 0.75)
        produced.append(out)
    return p.build([produced[-1]])


@settings(max_examples=25, deadline=None)
@given(pipelines(), st.sampled_from([(2, 2), (4, 4), (4, 8), (8, 8)]))
def test_fuzzed_pipeline_executes_correctly(prog, tiles):
    ref = make_store(prog)
    execute_naive(prog, ref)
    result = optimize(prog, CompileOptions(target="cpu", tile_sizes=tiles))
    store, _ = run_program(prog, result.tree)
    out = prog.liveout[0]
    np.testing.assert_allclose(store[out], ref[out], rtol=1e-9, atol=1e-12)


@settings(max_examples=12, deadline=None)
@given(pipelines())
def test_fuzzed_pipeline_schedule_is_legal(prog):
    result = optimize(prog, CompileOptions(target="cpu", tile_sizes=(4, 4)))
    report = validate_tree(result.tree, prog, max_pairs_per_dep=4000)
    assert report.ok, str(report)


@settings(max_examples=10, deadline=None)
@given(pipelines())
def test_fuzzed_pipeline_gpu_target(prog):
    ref = make_store(prog)
    execute_naive(prog, ref)
    result = optimize(prog, CompileOptions(target="gpu", tile_sizes=(4, 4)))
    store, _ = run_program(prog, result.tree)
    out = prog.liveout[0]
    np.testing.assert_allclose(store[out], ref[out], rtol=1e-9, atol=1e-12)
