"""Unit tests for schedule trees and their transformations."""

import pytest

from repro.pipelines import conv2d
from repro.presburger import LinExpr, parse_union_map
from repro.schedule import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    MarkNode,
    SequenceNode,
    band_from_dims,
    collect_bands,
    filter_of_statement,
    initial_tree,
    insert_extension_below,
    is_skipped,
    mark_skipped,
    split_band,
    top_level_filters,
    tree_statements,
    unmark_skipped,
)


@pytest.fixture()
def tree():
    return initial_tree(conv2d.build({"H": 8, "W": 8}))


class TestInitialTree:
    def test_structure(self, tree):
        assert isinstance(tree, DomainNode)
        seq = tree.child
        assert isinstance(seq, SequenceNode)
        assert [f.statements for f in seq.filters] == [
            ("S0",), ("S1",), ("S2",), ("S3",)
        ]

    def test_bands_cover_statement_dims(self, tree):
        bands = collect_bands(tree)
        by_stmt = {b.statements()[0]: b for b in bands}
        assert by_stmt["S2"].n_dims == 4
        assert by_stmt["S0"].n_dims == 2

    def test_walk_visits_all(self, tree):
        kinds = [type(n).__name__ for n in tree.walk()]
        assert kinds.count("FilterNode") == 4
        assert kinds.count("BandNode") == 4
        assert kinds.count("LeafNode") == 4

    def test_pretty_renders(self, tree):
        text = tree.pretty()
        assert "domain" in text
        assert "sequence" in text
        assert "band" in text


class TestBandNode:
    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            BandNode({"S": [LinExpr.var("i")]}, ["a", "b"])

    def test_tile_sizes_arity_checked(self):
        with pytest.raises(ValueError):
            BandNode({"S": [LinExpr.var("i")]}, ["a"], tile_sizes=[4, 4])

    def test_n_parallel_prefix(self):
        b = band_from_dims({"S": ["i", "j", "k"]}, ["a", "b", "c"],
                           coincident=[True, True, False])
        assert b.n_parallel() == 2

    def test_copy_is_deep(self, tree):
        clone = tree.copy()
        mark_skipped(top_level_filters(clone)[0])
        assert not is_skipped(top_level_filters(tree)[0])


class TestSplitBand:
    def test_split(self):
        b = band_from_dims({"S": ["i", "j"]}, ["a", "b"], coincident=[True, False])
        outer, inner = split_band(b, 1)
        assert outer.n_dims == 1 and inner.n_dims == 1
        assert outer.child is inner
        assert outer.coincident == [True]
        assert inner.coincident == [False]

    def test_split_bounds_checked(self):
        b = band_from_dims({"S": ["i", "j"]}, ["a", "b"])
        with pytest.raises(ValueError):
            split_band(b, 0)
        with pytest.raises(ValueError):
            split_band(b, 2)


class TestMarks:
    def test_mark_and_unmark(self, tree):
        filt = top_level_filters(tree)[0]
        mark_skipped(filt)
        assert is_skipped(filt)
        mark_skipped(filt)  # idempotent
        assert isinstance(filt.child, MarkNode)
        assert not isinstance(filt.child.child, MarkNode)
        unmark_skipped(filt)
        assert not is_skipped(filt)


class TestExtensionInsertion:
    def test_insert_below_band(self, tree):
        filt = filter_of_statement(tree, "S2")
        band = filt.child
        ext_map = parse_union_map("{ [t0, t1] -> S0[h, w] : t0 <= h < t0 + 4 }")
        node = insert_extension_below(band, ext_map, LeafNode())
        assert isinstance(band.child, ExtensionNode)
        assert node.added_statements() == ("S0",)
        seq = node.child
        assert isinstance(seq, SequenceNode)
        assert seq.filters[0].statements == ("S0",)

    def test_tree_statements(self, tree):
        assert set(tree_statements(tree)) == {"S0", "S1", "S2", "S3"}
