"""Byte-stability of compiles across processes and hash seeds.

The paper's pipeline is deterministic, so two processes given the same
program must emit byte-identical code — that guarantee is what makes the
cross-process compile/memo caches sound.  Python salts ``set`` iteration
per process via ``PYTHONHASHSEED``, so these tests compile each workload
in two subprocesses under *different* seeds and compare every observable
output byte for byte: the printed schedule-tree code, the compilable C
source, and a digest of the interpreter's live-out tensors.
"""

import os
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "src")

#: Small sizes keep two subprocess compiles (plus interp) per workload fast.
QUICK_WORKLOADS = [("conv2d", 48), ("atax", 96), ("harris", 96)]

#: The 15 benchmark workloads of the paper's evaluation.
ALL_WORKLOADS = [
    ("bilateral_grid", 128),
    ("camera_pipeline", 128),
    ("harris", 128),
    ("local_laplacian", 128),
    # The 8-level pyramid needs the full image or a level collapses to
    # extent 0 and the C backend (rightly) refuses to allocate it.
    ("multiscale_interp", 2048),
    ("unsharp_mask", 128),
    ("2mm", 64),
    ("3mm", 64),
    ("atax", 64),
    ("bicg", 64),
    ("covariance", 64),
    ("doitgen", 16),
    ("gemver", 64),
    ("mvt", 64),
    ("conv2d", 48),
]

CHILD = """
import hashlib, sys
from repro import CompileOptions
from repro.__main__ import _build_workload, _default_tiles
from repro.codegen import print_tree, run_program
from repro.codegen.cbackend import generate_c
from repro.core import optimize

name, size, with_interp = sys.argv[1], int(sys.argv[2]), sys.argv[3] == "1"
prog = _build_workload(name, size)
result = optimize(prog, CompileOptions(tile_sizes=_default_tiles(name)))
chunks = [print_tree(result.tree, prog, style="openmp")]
chunks.append(generate_c(result.tree, prog))
if with_interp:
    store, counts = run_program(prog, result.tree)
    digest = hashlib.sha256()
    for t in sorted(prog.liveout):
        digest.update(t.encode())
        digest.update(store[t].tobytes())
    chunks.append("interp:" + digest.hexdigest())
    chunks.append("counts:" + repr(sorted(counts.items())))
sys.stdout.write("\\n@@\\n".join(chunks))
"""


def _compile_under_seed(name: str, size: int, seed: int, with_interp: bool) -> bytes:
    env = dict(os.environ, PYTHONHASHSEED=str(seed), PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, name, str(size), "1" if with_interp else "0"],
        capture_output=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (name, proc.stderr.decode())
    return proc.stdout


@pytest.mark.parametrize("name,size", QUICK_WORKLOADS)
def test_codegen_and_interp_stable_across_hashseeds(name, size):
    a = _compile_under_seed(name, size, seed=0, with_interp=True)
    b = _compile_under_seed(name, size, seed=42, with_interp=True)
    assert a == b, f"{name}: output differs between PYTHONHASHSEED=0 and 42"


@pytest.mark.slow
@pytest.mark.parametrize("name,size", ALL_WORKLOADS)
def test_all_benchmark_workloads_byte_stable(name, size):
    a = _compile_under_seed(name, size, seed=1, with_interp=False)
    b = _compile_under_seed(name, size, seed=4242, with_interp=False)
    assert a == b, f"{name}: generated code differs across hash seeds"
    assert b"@@" in a  # both backends actually produced output
