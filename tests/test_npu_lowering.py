"""Tests for GPU mapping, CCE lowering and parametric tile sizes."""

import pytest

from repro import CompileOptions
from repro.codegen import print_tree
from repro.codegen.cce import (
    CCELoweringError,
    L0A,
    L0B,
    L0C,
    UB,
    lower_to_cce,
)
from repro.codegen.gpu_mapping import map_to_gpu
from repro.core import TILE_TUPLE, optimize, tile_footprint, liveout_groups
from repro.machine.npu import NPUSpec
from repro.pipelines import conv2d, resnet
from repro.scheduler import SMARTFUSE, schedule_program

PARAMS = {"H": 16, "W": 16, "KH": 3, "KW": 3}


class TestGPUMapping:
    def test_kernel_per_cluster(self):
        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="gpu", tile_sizes=(4, 4)))
        kernels = map_to_gpu(res)
        # one fused kernel for the whole pipeline + one skipped original
        live = [k for k in kernels if len(k.statements) > 1]
        assert len(live) == 1
        assert set(live[0].statements) == {"S1", "S2", "S3"}
        assert live[0].shared_tensors == ("A",)
        assert len(live[0].grid_dims) >= 1

    def test_sync_emitted_in_cuda(self):
        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="gpu", tile_sizes=(4, 4)))
        map_to_gpu(res)
        code = print_tree(res.tree, prog, style="cuda")
        assert "__syncthreads();" in code
        assert "__global__" in code

    def test_mapping_is_idempotent(self):
        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="gpu", tile_sizes=(4, 4)))
        k1 = map_to_gpu(res)
        k2 = map_to_gpu(res)
        assert [k.name for k in k1] == [k.name for k in k2]

    def test_execution_unaffected_by_marks(self):
        import numpy as np

        from repro.codegen import execute_naive, make_store, run_program

        prog = conv2d.build(PARAMS)
        res = optimize(prog, CompileOptions(target="gpu", tile_sizes=(4, 4)))
        map_to_gpu(res)
        ref = make_store(prog)
        execute_naive(prog, ref)
        store, _ = run_program(prog, res.tree)
        np.testing.assert_allclose(store["C"], ref["C"])


class TestCCELowering:
    def test_conv_bn_pair_lowering(self):
        pair = resnet.build_operator_pair(16, 16)
        res = optimize(pair, CompileOptions(target="npu", tile_sizes=(4, 4)))
        (kernel,) = lower_to_cce(res)
        mems = {b.tensor: b.memory for b in kernel.buffers}
        assert mems["X"] == L0A
        assert mems["K"] == L0B
        assert mems["F"] == L0C
        assert mems["Y"] == UB

    def test_fused_pair_forwards_on_chip(self):
        pair = resnet.build_operator_pair(16, 16)
        res = optimize(pair, CompileOptions(target="npu", tile_sizes=(4, 4)))
        (kernel,) = lower_to_cce(res)
        assert kernel.onchip_forward == ["F"]
        text = kernel.render()
        assert "L0C -> UB" in text
        assert "mmad" in text

    def test_unfused_pair_does_not_forward(self):
        """With fusion disabled (minfuse start-up, zero recompute budget)
        the conv output is not forwarded on chip: each cluster reloads it
        through global memory — the Table III 'smartfuse' configuration."""
        from repro.core import composite_tiling_fusion
        from repro.core.pipeline import OptimizeResult
        from repro.core.tile_shapes import TargetSpec
        from repro.scheduler import MINFUSE

        pair = resnet.build_operator_pair(16, 16)
        sched = schedule_program(pair, MINFUSE)
        no_fuse = TargetSpec("npu-nofuse", 1, 1, max_recompute=0.0)
        mixed = composite_tiling_fusion(pair, sched, (4, 4), no_fuse)
        res = OptimizeResult(pair, no_fuse, (4, 4), sched, mixed, sched.tree, 0.0)
        kernels = lower_to_cce(res)
        assert len(kernels) >= 2
        assert all(not k.onchip_forward for k in kernels)

    def test_capacity_check(self):
        pair = resnet.build_operator_pair(64, 64)
        res = optimize(pair, CompileOptions(target="npu", tile_sizes=(32, 32)))
        tiny = NPUSpec(ub_bytes=64)
        with pytest.raises(CCELoweringError):
            lower_to_cce(res, spec=tiny)


class TestParametricTileSizes:
    def test_symbolic_footprint_matches_concrete(self):
        """Relation (4) with symbolic T, fixed to T=2, must equal the
        footprint computed with the concrete size."""
        prog = conv2d.build({"H": 6, "W": 6, "KH": 3, "KW": 3})
        sched = schedule_program(prog, SMARTFUSE)
        L = liveout_groups(prog, sched.groups)[0]

        sym = tile_footprint(prog, L, ("T0", "T1"), ("A",))
        conc = tile_footprint(prog, L, (2, 2), ("A",))
        m_sym = sym[(TILE_TUPLE, "A")].fix_params(
            {"H": 6, "W": 6, "KH": 3, "KW": 3, "T0": 2, "T1": 2}
        )
        m_conc = conc[(TILE_TUPLE, "A")].fix_params(prog.params)
        origin = {f"{L.name}_o0": 2, f"{L.name}_o1": 0}
        assert (
            m_sym.image_of_point(origin).count_points()
            == m_conc.image_of_point(origin).count_points()
            == 16
        )

    def test_symbolic_size_appears_as_param(self):
        prog = conv2d.build({"H": 6, "W": 6})
        sched = schedule_program(prog, SMARTFUSE)
        L = liveout_groups(prog, sched.groups)[0]
        fp = tile_footprint(prog, L, ("T0", "T1"), ("A",))
        m = fp[(TILE_TUPLE, "A")]
        assert "T0" in m.space.params
        assert "T1" in m.space.params
