"""PolyBench kernels used in Table II: 2mm, gemver, covariance."""

from __future__ import annotations

from typing import Optional

from ..ir import Program, ProgramBuilder

DEFAULT_N = 1024


def build_2mm(n: int = DEFAULT_N) -> Program:
    """tmp = alpha*A*B; D = beta*D0 + tmp*C — two chained matmuls."""
    b = ProgramBuilder("2mm", params={})
    A = b.tensor("A", (n, n))
    B = b.tensor("B", (n, n))
    C = b.tensor("C", (n, n))
    D0 = b.tensor("D0", (n, n))
    tmp = b.tensor("tmp", (n, n))
    D = b.tensor("D", (n, n))
    i, j, k = b.iters("i", "j", "k")
    box = f"0 <= i < {n} and 0 <= j < {n}"
    red = box + f" and 0 <= k < {n}"

    b.assign("St0", (i, j), box, tmp[i, j], 0)
    b.reduce("St1", (i, j, k), red, tmp[i, j], A[i, k] * B[k, j] * 1.5)
    b.assign("Sd0", (i, j), box, D[i, j], D0[i, j] * 1.2)
    b.reduce("Sd1", (i, j, k), red, D[i, j], tmp[i, k] * C[k, j])
    b.set_liveout("D")
    return b.build()


def build_gemver(n: int = DEFAULT_N) -> Program:
    """BLAS gemver: rank-2 update, transposed mat-vec, mat-vec.

    Two live-out tensors (x1 and w) share the updated matrix A2 — the
    multiple-live-out case of Algorithm 3, with fully overlapping needed
    subsets (both consumers read all of A2), so the shared space must not
    be fused (no redundant recomputation).
    """
    b = ProgramBuilder("gemver", params={})
    A = b.tensor("A", (n, n))
    u1 = b.tensor("u1", (n,))
    v1 = b.tensor("v1", (n,))
    u2 = b.tensor("u2", (n,))
    v2 = b.tensor("v2", (n,))
    A2 = b.tensor("A2", (n, n))
    y = b.tensor("y", (n,))
    z = b.tensor("z", (n,))
    x1 = b.tensor("x1", (n,))
    w = b.tensor("w", (n,))
    i, j = b.iters("i", "j")
    box = f"0 <= i < {n} and 0 <= j < {n}"
    vec = f"0 <= i < {n}"

    b.assign(
        "Sa", (i, j), box, A2[i, j], A[i, j] + u1[i] * v1[j] + u2[i] * v2[j]
    )
    b.assign("Sx0", (i,), vec, x1[i], z[i])
    b.reduce("Sx1", (i, j), box, x1[i], A2[j, i] * y[j] * 1.2)
    b.assign("Sw0", (i,), vec, w[i], 0)
    b.reduce("Sw1", (i, j), box, w[i], A2[i, j] * x1[j] * 1.5)
    b.set_liveout("x1", "w")
    return b.build()


def build_covariance(n: int = DEFAULT_N, m: Optional[int] = None) -> Program:
    """Covariance of data samples; the cov reduction domain is triangular
    (j >= i), which defeats hybridfuse (Table II's segfault)."""
    m = m if m is not None else n
    b = ProgramBuilder("covariance", params={})
    data = b.tensor("data", (m, n))
    mean = b.tensor("mean", (n,))
    cdata = b.tensor("cdata", (m, n))
    cov = b.tensor("cov", (n, n))
    i, j, k = b.iters("i", "j", "k")

    b.assign("Sm0", (j,), f"0 <= j < {n}", mean[j], 0)
    b.reduce(
        "Sm1", (j, k), f"0 <= j < {n} and 0 <= k < {m}", mean[j], data[k, j]
    )
    b.assign("Sm2", (j,), f"0 <= j < {n}", mean[j], mean[j] * (1.0 / m))
    b.assign(
        "Sc",
        (i, j),
        f"0 <= i < {m} and 0 <= j < {n}",
        cdata[i, j],
        data[i, j] - mean[j],
    )
    b.assign(
        "Sv0", (i, j), f"0 <= i < {n} and i <= j < {n}", cov[i, j], 0
    )
    b.reduce(
        "Sv1",
        (i, j, k),
        f"0 <= i < {n} and i <= j < {n} and 0 <= k < {m}",
        cov[i, j],
        cdata[k, i] * cdata[k, j],
    )
    b.assign(
        "Sv2",
        (i, j),
        f"0 <= i < {n} and i <= j < {n}",
        cov[i, j],
        cov[i, j] * (1.0 / (m - 1)),
    )
    b.set_liveout("cov")
    return b.build()


BUILDERS = {
    "2mm": build_2mm,
    "gemver": build_gemver,
    "covariance": build_covariance,
}


def build_3mm(n: int = DEFAULT_N) -> Program:
    """E = A*B; F = C*D; G = E*F — three chained matmuls."""
    b = ProgramBuilder("3mm", params={})
    A = b.tensor("A", (n, n))
    B = b.tensor("B", (n, n))
    C = b.tensor("C", (n, n))
    D = b.tensor("D", (n, n))
    E = b.tensor("E", (n, n))
    F = b.tensor("F", (n, n))
    G = b.tensor("G", (n, n))
    i, j, k = b.iters("i", "j", "k")
    box = f"0 <= i < {n} and 0 <= j < {n}"
    red = box + f" and 0 <= k < {n}"

    b.assign("Se0", (i, j), box, E[i, j], 0)
    b.reduce("Se1", (i, j, k), red, E[i, j], A[i, k] * B[k, j])
    b.assign("Sf0", (i, j), box, F[i, j], 0)
    b.reduce("Sf1", (i, j, k), red, F[i, j], C[i, k] * D[k, j])
    b.assign("Sg0", (i, j), box, G[i, j], 0)
    b.reduce("Sg1", (i, j, k), red, G[i, j], E[i, k] * F[k, j])
    b.set_liveout("G")
    return b.build()


def build_atax(n: int = DEFAULT_N) -> Program:
    """y = A^T (A x) — the canonical fusion-across-transpose kernel."""
    b = ProgramBuilder("atax", params={})
    A = b.tensor("A", (n, n))
    x = b.tensor("x", (n,))
    tmp = b.tensor("tmp", (n,))
    y = b.tensor("y", (n,))
    i, j = b.iters("i", "j")
    vec = f"0 <= i < {n}"
    box = f"0 <= i < {n} and 0 <= j < {n}"

    b.assign("St0", (i,), vec, tmp[i], 0)
    b.reduce("St1", (i, j), box, tmp[i], A[i, j] * x[j])
    b.assign("Sy0", (i,), vec, y[i], 0)
    b.reduce("Sy1", (i, j), box, y[i], A[j, i] * tmp[j])
    b.set_liveout("y")
    return b.build()


def build_bicg(n: int = DEFAULT_N) -> Program:
    """s = A^T r; q = A p — two independent mat-vecs sharing A.

    Two live-out vectors whose computations share only a *read-only* input
    (A); Algorithm 3 must not attempt any fusion between the live-out
    spaces themselves.
    """
    b = ProgramBuilder("bicg", params={})
    A = b.tensor("A", (n, n))
    r = b.tensor("r", (n,))
    p = b.tensor("p", (n,))
    s = b.tensor("s", (n,))
    q = b.tensor("q", (n,))
    i, j = b.iters("i", "j")
    vec = f"0 <= i < {n}"
    box = f"0 <= i < {n} and 0 <= j < {n}"

    b.assign("Ss0", (i,), vec, s[i], 0)
    b.reduce("Ss1", (i, j), box, s[i], A[j, i] * r[j])
    b.assign("Sq0", (i,), vec, q[i], 0)
    b.reduce("Sq1", (i, j), box, q[i], A[i, j] * p[j])
    b.set_liveout("s", "q")
    return b.build()


def build_mvt(n: int = DEFAULT_N) -> Program:
    """x1 += A y1; x2 += A^T y2 — in-place vector updates."""
    b = ProgramBuilder("mvt", params={})
    A = b.tensor("A", (n, n))
    y1 = b.tensor("y1", (n,))
    y2 = b.tensor("y2", (n,))
    x1 = b.tensor("x1", (n,))
    x2 = b.tensor("x2", (n,))
    i, j = b.iters("i", "j")
    box = f"0 <= i < {n} and 0 <= j < {n}"

    b.reduce("Sx1", (i, j), box, x1[i], A[i, j] * y1[j])
    b.reduce("Sx2", (i, j), box, x2[i], A[j, i] * y2[j])
    b.set_liveout("x1", "x2")
    return b.build()


def build_doitgen(n: int = 64, p: Optional[int] = None) -> Program:
    """sum[r, q, p] = A[r, q, s] * C4[s, p], copied back into A."""
    p = p if p is not None else n
    b = ProgramBuilder("doitgen", params={})
    A = b.tensor("A", (n, n, p))
    C4 = b.tensor("C4", (p, p))
    S = b.tensor("S", (n, n, p))
    Out = b.tensor("Out", (n, n, p))
    r, q, pp, s = b.iters("r", "q", "p", "s")
    box = f"0 <= r < {n} and 0 <= q < {n} and 0 <= p < {p}"
    red = box + f" and 0 <= s < {p}"

    b.assign("Sd0", (r, q, pp), box, S[r, q, pp], 0)
    b.reduce("Sd1", (r, q, pp, s), red, S[r, q, pp], A[r, q, s] * C4[s, pp])
    b.assign("Sd2", (r, q, pp), box, Out[r, q, pp], S[r, q, pp])
    b.set_liveout("Out")
    return b.build()


BUILDERS.update(
    {
        "3mm": build_3mm,
        "atax": build_atax,
        "bicg": build_bicg,
        "mvt": build_mvt,
        "doitgen": build_doitgen,
    }
)
