"""Camera Pipeline — 32 stages (Table I).

The FrankenCamera-style raw processing chain: hot-pixel suppression,
demosaicing (a bank of interpolation stencils), colour correction, tone
mapping and sharpening.  The stage structure (a wide demosaic fan-in
followed by long pointwise chains and a final stencil block) is what
stresses fusion heuristics — and what made maxfuse/smartfuse time out for
the paper.
"""

from __future__ import annotations

from typing import List

from ..ir import Program, vmax, vmin
from .common import ImagePipeline

CROSS = [((0, 0), 0.5), ((-1, 0), 0.125), ((1, 0), 0.125), ((0, -1), 0.125), ((0, 1), 0.125)]


def build(size: int = 2048) -> Program:
    p = ImagePipeline("camera_pipeline")
    raw = p.source("raw", size, size)

    # 1: hot pixel suppression
    denoised = p.stencil(
        "denoise", raw, [o for o, _ in CROSS], [w for _, w in CROSS]
    )

    # 2-9: demosaic interpolation bank (8 stencil stages over the mosaic)
    greens = []
    for k, offs in enumerate(
        [
            [(0, 0), (0, 1)],
            [(0, 0), (1, 0)],
            [(0, 0), (0, 1), (1, 0), (1, 1)],
            [(0, 0), (1, 1)],
        ]
    ):
        greens.append(p.stencil(f"dm_g{k}", denoised, offs))
    chans = []
    for k, offs in enumerate(
        [
            [(0, 0), (0, 1), (1, 0)],
            [(0, 0), (1, 1), (0, 1)],
            [(0, 0), (1, 0), (1, 1)],
            [(0, 0), (0, 1), (1, 0), (1, 1)],
        ]
    ):
        chans.append(p.stencil(f"dm_c{k}", greens[k], offs))

    # 10-12: channel assembly (pointwise fan-in of the demosaic bank)
    r = p.pointwise("asm_r", [chans[0], chans[1]], lambda a, b: a * 0.6 + b * 0.4)
    g = p.pointwise("asm_g", [chans[1], chans[2]], lambda a, b: a * 0.5 + b * 0.5)
    b_ = p.pointwise("asm_b", [chans[2], chans[3]], lambda a, b: a * 0.4 + b * 0.6)

    # 13-21: colour correction, a 3x3 matrix as nine pointwise stages
    corrected = []
    mat = [
        (1.6, -0.4, -0.2),
        (-0.3, 1.5, -0.2),
        (-0.1, -0.5, 1.6),
    ]
    for ci, (m0, m1, m2) in enumerate(mat):
        t0 = p.pointwise(f"cc{ci}_r", [r], lambda a, m=m0: a * m)
        t1 = p.pointwise(f"cc{ci}_g", [t0, g], lambda a, b, m=m1: a + b * m)
        corrected.append(
            p.pointwise(f"cc{ci}_b", [t1, b_], lambda a, c, m=m2: a + c * m)
        )

    # 22-27: tone curve (two pointwise stages per channel)
    toned = []
    for ci, chan in enumerate(corrected):
        clipped = p.pointwise(
            f"tone{ci}_clip", [chan], lambda a: vmin(vmax(a, 0.0), 1.0)
        )
        toned.append(
            p.pointwise(f"tone{ci}_gamma", [clipped], lambda a: a * a * 0.7 + a * 0.3)
        )

    # 28-31: luma sharpening (blur pair + unsharp combine + final mix)
    luma = p.pointwise(
        "luma", [toned[0], toned[1], toned[2]],
        lambda rr, gg, bb: rr * 0.3 + gg * 0.6 + bb * 0.1,
    )
    lbx = p.blur_x("luma_bx", luma, radius=1)
    lby = p.blur_y("luma_by", lbx, radius=1)

    # 31-32: final assembly and clamp
    mixed = p.pointwise(
        "final_mix", [luma, lby], lambda a, blur: a * 1.5 - blur * 0.5
    )
    out = p.pointwise("final_clamp", [mixed], lambda a: vmin(vmax(a, 0.0), 1.0))
    return p.build([out])


def halide_partition(prog: Program) -> List[List[str]]:
    """Manual schedule: demosaic bank fused, colour/tone fused, sharpening
    fused — three coarse groups (conservative vs. the paper's pass)."""
    s = prog.stages  # type: ignore[attr-defined]

    def flat(groups):
        return [name for g in groups for name in g]

    return [
        flat(s[0:9]),      # denoise + demosaic bank
        flat(s[9:12]),     # assembly
        flat(s[12:27]),    # colour correction + tone curve
        flat(s[27:33]),    # sharpening + final
    ]


TILE_SIZES = (64, 256)
GPU_GRID = (16, 32)
STAGE_COUNT = 32


def polymage_partition(prog: Program) -> List[List[str]]:
    """PolyMage finds the same (fully fused) grouping as the paper's pass
    here — the difference is its over-approximated overlap (Section VI-A)."""
    s = prog.stages  # type: ignore[attr-defined]
    return [[name for stage in s for name in stage]]
