"""``repro.pipelines`` — the workloads of the paper's evaluation.

Image processing (PolyMage benchmarks, Table I): bilateral_grid,
camera_pipeline, harris, local_laplacian, multiscale_interp, unsharp_mask.
Finite elements (SPEC CPU2000): equake.  Linear algebra / data mining
(PolyBench, Table II): polybench.  Neural networks (Table III): resnet and
the conv2d running example of Fig. 1.  Heterogeneous scenarios for the
cpu/gpu/npu partitioner: mixed (camera_resnet, edge_infer).
"""

from . import (
    bilateral_grid,
    camera_pipeline,
    conv2d,
    equake,
    harris,
    local_laplacian,
    mixed,
    multiscale_interp,
    polybench,
    resnet,
    unsharp_mask,
)

IMAGE_PIPELINES = {
    "bilateral_grid": bilateral_grid,
    "camera_pipeline": camera_pipeline,
    "harris": harris,
    "local_laplacian": local_laplacian,
    "multiscale_interp": multiscale_interp,
    "unsharp_mask": unsharp_mask,
}

__all__ = [
    "IMAGE_PIPELINES",
    "bilateral_grid",
    "camera_pipeline",
    "conv2d",
    "equake",
    "harris",
    "local_laplacian",
    "mixed",
    "multiscale_interp",
    "polybench",
    "resnet",
    "unsharp_mask",
]
