"""Harris Corner Detection — 11 stages (Table I).

gray → (Ix, Iy) derivative stencils → (Ixx, Iyy, Ixy) products →
(Sxx, Syy, Sxy) box sums → response → threshold.
"""

from __future__ import annotations

from typing import List

from ..ir import Program, vmax
from .common import ImagePipeline

SOBEL_X = [
    ((-1, -1), -1.0), ((-1, 1), 1.0),
    ((0, -1), -2.0), ((0, 1), 2.0),
    ((1, -1), -1.0), ((1, 1), 1.0),
]
SOBEL_Y = [
    ((-1, -1), -1.0), ((-1, 0), -2.0), ((-1, 1), -1.0),
    ((1, -1), 1.0), ((1, 0), 2.0), ((1, 1), 1.0),
]
BOX = [((dy, dx), 1.0 / 9.0) for dy in (-1, 0, 1) for dx in (-1, 0, 1)]


def build(size: int = 2048) -> Program:
    p = ImagePipeline("harris")
    img = p.source("in_img", size, size)
    gray = p.pointwise("gray", [img], lambda a: a * 0.587)
    ix = p.stencil("Ix", gray, [o for o, _ in SOBEL_X], [w for _, w in SOBEL_X])
    iy = p.stencil("Iy", gray, [o for o, _ in SOBEL_Y], [w for _, w in SOBEL_Y])
    ixx = p.pointwise("Ixx", [ix], lambda a: a * a)
    iyy = p.pointwise("Iyy", [iy], lambda a: a * a)
    ixy = p.pointwise("Ixy", [ix, iy], lambda a, b: a * b)
    sxx = p.stencil("Sxx", ixx, [o for o, _ in BOX], [w for _, w in BOX])
    syy = p.stencil("Syy", iyy, [o for o, _ in BOX], [w for _, w in BOX])
    sxy = p.stencil("Sxy", ixy, [o for o, _ in BOX], [w for _, w in BOX])
    resp = p.pointwise(
        "resp",
        [sxx, syy, sxy],
        lambda a, b, c: (a * b - c * c) - (a + b) * (a + b) * 0.04,
    )
    thresh = p.pointwise("thresh", [resp], lambda r: vmax(r, 0.0))
    return p.build([thresh])


def halide_partition(prog: Program) -> List[List[str]]:
    """The published manual schedule misses the inlining of the pointwise
    product stages: gray/Ix/Iy one group, products+sums+response another,
    with the products materialised (extra DRAM round trips)."""
    s = prog.stages  # type: ignore[attr-defined]
    return [
        s[0],                      # gray
        s[1], s[2],                # Ix, Iy materialised
        s[3] + s[4] + s[5],        # products materialised together
        s[6] + s[7] + s[8] + s[9] + s[10],  # sums + response + threshold
    ]


TILE_SIZES = (32, 256)
GPU_GRID = (16, 32)
STAGE_COUNT = 11


def polymage_partition(prog: Program) -> List[List[str]]:
    """PolyMage inlines the pointwise products: one fully fused group
    (the paper reports identical code to ours for this benchmark)."""
    s = prog.stages  # type: ignore[attr-defined]
    return [[name for stage in s for name in stage]]
