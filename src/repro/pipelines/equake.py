"""equake (SPEC CPU2000) — finite element method with a 3D SpMV core.

The original updates an unstructured mesh with a sparse matrix-vector
product whose inner loop is a ``while`` over each row's entries, followed
by a group of affine loop nests that scale and integrate the mesh state.

Substitution (documented in DESIGN.md): the unstructured sparsity becomes a
*banded* matrix — the affine equivalent of the "dynamic counted loop" form
the paper's enhancement [61] produces by preprocessing, using the mean row
length as the band width.  This exercises the same structure: an imperfect
reduction nest (init / reduce / gather) followed by elementary affine
nests, where only the outermost loop is tilable and fusion is the whole
game.

``PARTITIONS`` quotes the fusion groupings the paper reports for PPCG's
heuristics on this benchmark (Section VI-A); ``optimize()`` is free to find
its own (it fuses the gather with the follow-up nests, like maxfuse, plus
the SpMV component).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import Program, ProgramBuilder

SIZES = {"test": 8000, "train": 40000, "ref": 150000}
BAND = 27  # mean row length of the unstructured mesh
HALF = BAND // 2


def build(size: str = "test", n: Optional[int] = None) -> Program:
    N = n if n is not None else SIZES[size]
    b = ProgramBuilder("equake", params={})
    M = b.tensor("M", (N, BAND))
    x = b.tensor("x", (N,))
    r = b.tensor("r", (N,))
    disp = b.tensor("disp", (N,))
    vold = b.tensor("vold", (N,))
    v = b.tensor("v", (N,))
    w2 = b.tensor("w2", (N,))
    uold = b.tensor("uold", (N,))
    u = b.tensor("u", (N,))
    i, k = b.iters("i", "k")

    b.assign("Sinit", (i,), f"0 <= i < {N}", r[i], 0)
    b.reduce(
        "Sspmv",
        (i, k),
        f"0 <= i < {N} and 0 <= k < {BAND} "
        f"and 0 <= i + k - {HALF} < {N}",
        r[i],
        M[i, k] * x[i + k - HALF],
    )
    b.assign("Sgather", (i,), f"0 <= i < {N}", disp[i], r[i] * 0.5)
    b.assign("Sphi1", (i,), f"0 <= i < {N}", v[i], disp[i] * 2.0 + vold[i] * 0.9)
    b.assign("Sphi2", (i,), f"0 <= i < {N}", w2[i], v[i] * 0.02 + disp[i] * 0.1)
    b.assign("Supd", (i,), f"0 <= i < {N}", u[i], uold[i] + w2[i])
    b.set_liveout("u")
    return b.build()


#: Fusion groupings of PPCG's heuristics as reported in Section VI-A.
PARTITIONS: Dict[str, List[List[str]]] = {
    "minfuse": [["Sinit"], ["Sspmv"], ["Sgather"], ["Sphi1"], ["Sphi2"], ["Supd"]],
    "smartfuse": [["Sinit", "Sspmv", "Sgather"], ["Sphi1"], ["Sphi2"], ["Supd"]],
    "maxfuse": [["Sinit", "Sspmv"], ["Sgather", "Sphi1", "Sphi2", "Supd"]],
}
