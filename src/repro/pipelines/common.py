"""Shared machinery for building multi-stage image pipelines.

The PolyMage benchmarks are DAGs of stages over 2-D images: pointwise
maps, small stencils, strided downsampling and upsampling.  This builder
keeps all accesses affine (stencils as unrolled neighbour loads; up/down
sampling via constant-stride index expressions) and tracks PolyMage-style
*valid regions* — each stencil shrinks the domain by its radius, so no
boundary conditionals are needed.

All extents are concrete integers: the optimizer specialises on problem
sizes, which keeps every pyramid level's extent (H/2, H/4, ...) affine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..ir import Expr, Program, ProgramBuilder, Tensor, as_expr


@dataclass
class Image:
    """A tensor together with its valid-region extents."""

    tensor: Tensor
    h: int
    w: int

    @property
    def name(self) -> str:
        return self.tensor.name


class ImagePipeline:
    """Fluent builder for multi-stage 2-D pipelines.

    Every stage method returns the produced :class:`Image`; the builder
    records one *stage* (a list of statement names) per call, which the
    manual-schedule baselines use to express Halide-style groupings.
    """

    def __init__(self, name: str):
        self.b = ProgramBuilder(name, params={})
        self.stages: List[List[str]] = []
        self._counter = 0

    # -- naming -------------------------------------------------------------

    def _sname(self, label: str) -> str:
        name = f"S{self._counter}_{label}"
        self._counter += 1
        return name

    # -- sources ------------------------------------------------------------

    def source(self, name: str, h: int, w: int) -> Image:
        return Image(self.b.tensor(name, (h, w)), h, w)

    # -- stages ---------------------------------------------------------------

    def pointwise(
        self,
        label: str,
        srcs: Sequence[Image],
        fn: Callable[..., Expr],
        out_name: Optional[str] = None,
    ) -> Image:
        """out[h, w] = fn(src0[h, w], src1[h, w], ...)."""
        h = min(s.h for s in srcs)
        w = min(s.w for s in srcs)
        out = Image(self.b.tensor(out_name or f"t_{label}", (h, w)), h, w)
        hi, wi = self.b.iters("h", "w")
        loads = [s.tensor[hi, wi] for s in srcs]
        stmt = self.b.assign(
            self._sname(label),
            (hi, wi),
            f"0 <= h < {h} and 0 <= w < {w}",
            out.tensor[hi, wi],
            fn(*loads),
        )
        self.stages.append([stmt.name])
        return out

    def stencil(
        self,
        label: str,
        src: Image,
        offsets: Sequence[Tuple[int, int]],
        weights: Optional[Sequence[float]] = None,
        out_name: Optional[str] = None,
        post: Optional[Callable[[Expr], Expr]] = None,
    ) -> Image:
        """out[h, w] = sum w_k * src[h + dy_k, w + dx_k], valid region only."""
        max_dy = max(dy for dy, _ in offsets)
        max_dx = max(dx for _, dx in offsets)
        min_dy = min(dy for dy, _ in offsets)
        min_dx = min(dx for _, dx in offsets)
        if min_dy < 0 or min_dx < 0:
            # Shift so all offsets are non-negative; shrink accordingly.
            offsets = [(dy - min_dy, dx - min_dx) for dy, dx in offsets]
            max_dy -= min_dy
            max_dx -= min_dx
        h = src.h - max_dy
        w = src.w - max_dx
        out = Image(self.b.tensor(out_name or f"t_{label}", (h, w)), h, w)
        hi, wi = self.b.iters("h", "w")
        if weights is None:
            weights = [1.0 / len(offsets)] * len(offsets)
        expr: Expr = as_expr(0)
        for (dy, dx), wk in zip(offsets, weights):
            expr = expr + src.tensor[hi + dy, wi + dx] * wk
        if post is not None:
            expr = post(expr)
        stmt = self.b.assign(
            self._sname(label),
            (hi, wi),
            f"0 <= h < {h} and 0 <= w < {w}",
            out.tensor[hi, wi],
            expr,
        )
        self.stages.append([stmt.name])
        return out

    def blur_x(self, label: str, src: Image, radius: int = 1) -> Image:
        offs = [(0, dx) for dx in range(2 * radius + 1)]
        return self.stencil(label, src, offs)

    def blur_y(self, label: str, src: Image, radius: int = 1) -> Image:
        offs = [(dy, 0) for dy in range(2 * radius + 1)]
        return self.stencil(label, src, offs)

    def downsample(self, label: str, src: Image, factor: int = 2) -> Image:
        """out[i, j] = mean of the factor x factor block of src."""
        h, w = src.h // factor, src.w // factor
        out = Image(self.b.tensor(f"t_{label}", (h, w)), h, w)
        hi, wi = self.b.iters("h", "w")
        expr: Expr = as_expr(0)
        weight = 1.0 / (factor * factor)
        for dy in range(factor):
            for dx in range(factor):
                expr = expr + src.tensor[factor * hi + dy, factor * wi + dx] * weight
        stmt = self.b.assign(
            self._sname(label),
            (hi, wi),
            f"0 <= h < {h} and 0 <= w < {w}",
            out.tensor[hi, wi],
            expr,
        )
        self.stages.append([stmt.name])
        return out

    def upsample(self, label: str, src: Image, factor: int = 2) -> Image:
        """Nearest-neighbour expansion: out[f*i+di, f*j+dj] = src[i, j]."""
        h, w = src.h * factor, src.w * factor
        out = Image(self.b.tensor(f"t_{label}", (h, w)), h, w)
        hi, wi, di, dj = self.b.iters("h", "w", "dh", "dw")
        stmt = self.b.assign(
            self._sname(label),
            (hi, wi, di, dj),
            f"0 <= h < {src.h} and 0 <= w < {src.w} "
            f"and 0 <= dh < {factor} and 0 <= dw < {factor}",
            out.tensor[factor * hi + di, factor * wi + dj],
            src.tensor[hi, wi],
        )
        self.stages.append([stmt.name])
        return out

    # -- finish ---------------------------------------------------------------

    def build(self, liveout: Sequence[Image]) -> Program:
        self.b.set_liveout(*[img.name for img in liveout])
        prog = self.b.build()
        prog.stages = [list(s) for s in self.stages]  # type: ignore[attr-defined]
        return prog


def crop_to(pipe: ImagePipeline, label: str, src: Image, h: int, w: int) -> Image:
    """Pointwise copy into a smaller valid region (aligns pyramid levels)."""
    out = Image(pipe.b.tensor(f"t_{label}", (h, w)), h, w)
    hi, wi = pipe.b.iters("h", "w")
    stmt = pipe.b.assign(
        pipe._sname(label),
        (hi, wi),
        f"0 <= h < {h} and 0 <= w < {w}",
        out.tensor[hi, wi],
        src.tensor[hi, wi],
    )
    pipe.stages.append([stmt.name])
    return out
