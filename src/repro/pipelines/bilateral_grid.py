"""Bilateral Grid — 7 stages (Table I).

Grid construction by 8x downsampling, three grid-space blurs, slicing back
up to full resolution, combination with the input and normalisation.  The
strided construction/slice stages exercise non-unit-coefficient access
relations in the footprint algebra.
"""

from __future__ import annotations

from typing import List

from ..ir import Program
from .common import ImagePipeline

SIGMA_S = 8  # spatial downsampling factor of the grid


def build(size: int = 2048) -> Program:
    p = ImagePipeline("bilateral_grid")
    img = p.source("in_img", size, size)
    grid = p.downsample("grid", img, factor=SIGMA_S)
    b1 = p.blur_x("grid_bx", grid, radius=1)
    b2 = p.blur_y("grid_by", b1, radius=1)
    b3 = p.stencil(
        "grid_bz",
        b2,
        [(0, 0), (1, 0), (0, 1)],
        [0.5, 0.25, 0.25],
    )
    sliced = p.upsample("slice", b3, factor=SIGMA_S)
    combined = p.pointwise("combine", [img, sliced], lambda a, g: a * 0.3 + g * 0.7)
    norm = p.pointwise("norm", [combined], lambda c: c * (1.0 / 1.2))
    return p.build([norm])


def halide_partition(prog: Program) -> List[List[str]]:
    """Manual schedule: the grid pyramid is one group, slicing another."""
    s = prog.stages  # type: ignore[attr-defined]
    return [s[0] + s[1] + s[2] + s[3], s[4] + s[5] + s[6]]


TILE_SIZES = (8, 128)
GPU_GRID = (8, 64)
STAGE_COUNT = 7


def polymage_partition(prog: Program) -> List[List[str]]:
    """PolyMage keeps the grid pyramid and the slice path separate."""
    s = prog.stages  # type: ignore[attr-defined]
    return [s[0] + s[1] + s[2] + s[3], s[4] + s[5] + s[6]]
