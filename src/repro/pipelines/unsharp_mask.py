"""Unsharp Mask — 4 stages (Table I).

blur_x → blur_y → sharpen (against the original) → masked select.  The
original input is read again by the two late stages, which is what makes
fusion profitable and tile footprints overlap.
"""

from __future__ import annotations

from typing import List

from ..ir import Program, vmax
from .common import ImagePipeline


def build(size: int = 2048) -> Program:
    p = ImagePipeline("unsharp_mask")
    img = p.source("in_img", size, size)
    bx = p.blur_x("blurx", img, radius=1)
    by = p.blur_y("blury", bx, radius=1)
    sharpen = p.pointwise(
        "sharpen", [img, by], lambda a, b: a * 2.0 - b
    )
    masked = p.pointwise(
        "masked",
        [img, sharpen, by],
        lambda a, s, b: vmax(a - b, 0.0) * 0.0 + s * 0.5 + a * 0.5,
    )
    return p.build([masked])


def halide_partition(prog: Program) -> List[List[str]]:
    """Halide's manual schedule: blur_x materialised, the rest fused."""
    stages = prog.stages  # type: ignore[attr-defined]
    return [stages[0], stages[1] + stages[2] + stages[3]]


# Auto-tuned parameters from Table I.
TILE_SIZES = (8, 512)
GPU_GRID = (8, 32)
STAGE_COUNT = 4


def polymage_partition(prog: Program) -> List[List[str]]:
    """PolyMage's grouping model stops at the blur_x boundary."""
    s = prog.stages  # type: ignore[attr-defined]
    return [s[0], s[1] + s[2] + s[3]]
