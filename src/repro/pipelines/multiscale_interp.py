"""Multiscale Interpolation — 49 stages (Table I).

An 8-level analysis/synthesis pyramid: a normalisation prelude, a descent
of (downsample, blur_x, blur_y) per level, and an ascent of (upsample,
interpolate, weight) per level: 1 + 8*3 + 8*3 = 49 stages.  The strided
pyramid accesses and deep producer chains are the stress test for
Algorithm 1's transitive footprint extension.
"""

from __future__ import annotations

from typing import List

from ..ir import Program
from .common import ImagePipeline

LEVELS = 8


def build(size: int = 2048, levels: int = LEVELS) -> Program:
    p = ImagePipeline("multiscale_interp")
    img = p.source("in_img", size, size)

    base = p.pointwise("normalize", [img], lambda a: a * (1.0 / 255.0))

    # Descent: per level downsample + separable blur.
    down = [base]
    for l in range(levels):
        d = p.downsample(f"down{l}", down[-1], factor=2)
        bx = p.blur_x(f"dbx{l}", d, radius=1)
        by = p.blur_y(f"dby{l}", bx, radius=1)
        down.append(by)

    # Ascent: upsample, interpolate against the matching level, weight.
    up = down[-1]
    for l in range(levels - 1, -1, -1):
        u = p.upsample(f"up{l}", up, factor=2)
        ref = down[l]
        h = min(u.h, ref.h)
        w = min(u.w, ref.w)
        interp = p.pointwise(
            f"interp{l}",
            [crop_like(p, u, h, w), crop_like(p, ref, h, w)],
            lambda a, b: a * 0.5 + b * 0.5,
        )
        weighted = p.pointwise(
            f"weight{l}", [interp], lambda a, s=l: a * (1.0 - 0.05 * s)
        )
        up = weighted
    return p.build([up])


def crop_like(p: ImagePipeline, img, h, w):
    if img.h == h and img.w == w:
        return img
    from .common import Image

    return Image(img.tensor, h, w)


def halide_partition(prog: Program) -> List[List[str]]:
    """Manual schedule: each pyramid level is its own group of three."""
    s = prog.stages  # type: ignore[attr-defined]
    groups: List[List[str]] = [list(s[0])]
    i = 1
    while i + 2 <= len(s) - 1:
        groups.append(s[i] + s[i + 1] + s[i + 2])
        i += 3
    while i < len(s):
        groups.append(list(s[i]))
        i += 1
    return groups


TILE_SIZES = (32, 128)
GPU_GRID = (32, 16)
STAGE_COUNT = 49


def polymage_partition(prog: Program) -> List[List[str]]:
    """PolyMage groups two pyramid levels at a time (coarser than ours)."""
    s = prog.stages  # type: ignore[attr-defined]
    groups: List[List[str]] = [list(s[0])]
    i = 1
    while i + 6 <= len(s) - 1:
        groups.append([n for stage in s[i : i + 6] for n in stage])
        i += 6
    groups.append([n for stage in s[i:] for n in stage])
    return groups
