"""ResNet-50 layer table for the AI-accelerator experiment (Table III).

The 53 convolutions of ResNet-50 (He et al., CVPR 2016), each followed by
a batch normalisation (and ReLU), at training batch size.  The NPU model
consumes these shapes directly; the polyhedral machinery is exercised by a
representative conv+bn+relu operator pair lowered through ``optimize()``
(see :func:`build_operator_pair`).
"""

from __future__ import annotations

from typing import List

from ..ir import Program, ProgramBuilder, relu
from ..machine.npu import ConvLayer

BATCH = 32


def resnet50_layers(batch: int = BATCH) -> List[ConvLayer]:
    """All 53 forward convolutions of ResNet-50."""
    layers: List[ConvLayer] = [
        ConvLayer("conv1", batch, 224, 224, 3, 64, k=7, stride=2)
    ]
    # (blocks, mid channels, in channels at stage entry, spatial size)
    stages = [
        (3, 64, 64, 56),
        (4, 128, 256, 28),
        (6, 256, 512, 14),
        (3, 512, 1024, 7),
    ]
    for si, (blocks, mid, c_in_entry, hw) in enumerate(stages, start=2):
        c_out = mid * 4
        c_in = c_in_entry
        for bi in range(blocks):
            prefix = f"res{si}{chr(ord('a') + bi)}"
            stride = 2 if (bi == 0 and si > 2) else 1
            in_hw = hw * stride if stride == 2 else hw
            if bi == 0:
                layers.append(
                    ConvLayer(
                        f"{prefix}_proj", batch, in_hw, in_hw, c_in, c_out,
                        k=1, stride=stride,
                    )
                )
            layers.append(
                ConvLayer(
                    f"{prefix}_1x1a", batch, in_hw, in_hw, c_in, mid,
                    k=1, stride=stride,
                )
            )
            layers.append(
                ConvLayer(f"{prefix}_3x3", batch, hw, hw, mid, mid, k=3)
            )
            layers.append(
                ConvLayer(f"{prefix}_1x1b", batch, hw, hw, mid, c_out, k=1)
            )
            c_in = c_out
    return layers


def build_operator_pair(
    h: int = 16, w: int = 16, kh: int = 3, kw: int = 3
) -> Program:
    """A conv + batchnorm + ReLU operator pair as a polyhedral program.

    This is the shape the akg integration lowers per pair of operators:
    the conv writes an intermediate feature map; batchnorm scale/shift and
    ReLU consume it.  Post-tiling fusion keeps the feature map on chip.
    """
    b = ProgramBuilder("conv_bn", params={"H": h, "W": w, "KH": kh, "KW": kw})
    X = b.tensor("X", ("H", "W"))
    K = b.tensor("K", ("KH", "KW"))
    F = b.tensor(
        "F", (b.param("H") - b.param("KH") + 1, b.param("W") - b.param("KW") + 1)
    )
    G = b.tensor("gamma", (1,))
    B2 = b.tensor("beta", (1,))
    Y = b.tensor(
        "Y", (b.param("H") - b.param("KH") + 1, b.param("W") - b.param("KW") + 1)
    )
    hi, wi, khi, kwi = b.iters("h", "w", "kh", "kw")
    out_box = "0 <= h <= H - KH and 0 <= w <= W - KW"

    b.assign("Sconv0", (hi, wi), out_box, F[hi, wi], 0)
    b.reduce(
        "Sconv1",
        (hi, wi, khi, kwi),
        out_box + " and 0 <= kh < KH and 0 <= kw < KW",
        F[hi, wi],
        X[hi + khi, wi + kwi] * K[khi, kwi],
    )
    b.assign(
        "Sbn",
        (hi, wi),
        out_box,
        Y[hi, wi],
        relu(F[hi, wi] * G[0] + B2[0]),
    )
    b.set_liveout("Y")
    return b.build()
