"""Local Laplacian Filter — 99 stages (Table I).

The deepest pipeline of the suite: a two-stage prelude, eight remap/
pyramid blocks of twelve stages each, and a final collapse stage
(2 + 8*12 + 1 = 99).  Each block contains a pointwise remap, a
down/blur/up excursion, a laplacian-style combine against the block input
and a second blur/weight chain — the structure that makes maxfuse's
compilation time explode in the paper.
"""

from __future__ import annotations

from typing import List

from ..ir import Program, vmax
from .common import Image, ImagePipeline

BLOCKS = 8


def _crop(img: Image, h: int, w: int) -> Image:
    if img.h == h and img.w == w:
        return img
    return Image(img.tensor, h, w)


def build(size: int = 2048, blocks: int = BLOCKS) -> Program:
    p = ImagePipeline("local_laplacian")
    img = p.source("in_img", size, size)

    # Prelude: grayscale + contrast normalisation (2 stages).
    gray = p.pointwise("gray", [img], lambda a: a * 0.5)
    cur = p.pointwise("normed", [gray], lambda a: a * 1.1)

    for k in range(blocks):
        # 1 remap
        remap = p.pointwise(f"b{k}_remap", [cur], lambda a, s=k: a * (1.0 + 0.1 * s))
        # 2-4 down + separable blur
        d = p.downsample(f"b{k}_down", remap, factor=2)
        bx = p.blur_x(f"b{k}_bx", d, radius=1)
        by = p.blur_y(f"b{k}_by", bx, radius=1)
        # 5 upsample back
        u = p.upsample(f"b{k}_up", by, factor=2)
        # 6 laplacian-style combine against the block input
        h = min(u.h, remap.h)
        w = min(u.w, remap.w)
        lap = p.pointwise(
            f"b{k}_lap", [_crop(remap, h, w), _crop(u, h, w)], lambda a, b: a - b * 0.9
        )
        # 7-8 second blur pair on the detail signal
        dbx = p.blur_x(f"b{k}_dbx", lap, radius=1)
        dby = p.blur_y(f"b{k}_dby", dbx, radius=1)
        # 9 clamp
        clamped = p.pointwise(f"b{k}_clamp", [dby], lambda a: vmax(a, -1.0))
        # 10 weight
        weighted = p.pointwise(f"b{k}_wt", [clamped], lambda a, s=k: a * (1.0 - 0.04 * s))
        # 11-12 accumulate with the carried signal (two pointwise stages)
        h2 = min(weighted.h, cur.h)
        w2 = min(weighted.w, cur.w)
        mixed = p.pointwise(
            f"b{k}_mix",
            [_crop(cur, h2, w2), _crop(weighted, h2, w2)],
            lambda a, b: a * 0.8 + b * 0.2,
        )
        cur = p.pointwise(f"b{k}_gain", [mixed], lambda a: a * 1.02)

    out = p.pointwise("collapse", [cur], lambda a: vmax(a, 0.0))
    return p.build([out])


def halide_partition(prog: Program) -> List[List[str]]:
    """Manual schedule: the prelude, one group per block, the collapse."""
    s = prog.stages  # type: ignore[attr-defined]
    groups: List[List[str]] = [s[0] + s[1]]
    i = 2
    while i + 12 <= len(s) - 1:
        groups.append([name for stage in s[i : i + 12] for name in stage])
        i += 12
    groups.append([name for stage in s[i:] for name in stage])
    return groups


TILE_SIZES = (8, 256)
GPU_GRID = (8, 64)
STAGE_COUNT = 99


def polymage_partition(prog: Program) -> List[List[str]]:
    """PolyMage fuses pairs of blocks (coarser than full fusion)."""
    s = prog.stages  # type: ignore[attr-defined]
    groups: List[List[str]] = [s[0] + s[1]]
    i = 2
    while i + 24 <= len(s) - 1:
        groups.append([n for stage in s[i : i + 24] for n in stage])
        i += 24
    groups.append([n for stage in s[i:] for n in stage])
    return groups
