"""The paper's running example (Fig. 1a): quantise → conv2d → ReLU.

Four statements over an ``H×W`` image ``A`` and a ``KH×KW`` kernel ``B``:

* ``S0`` quantisation of the input (writes the intermediate tensor ``A``),
* ``S1`` initialisation of the output ``C``,
* ``S2`` the convolution reduction reading ``A[h+kh, w+kw]``,
* ``S3`` ReLU over ``C``.

``C`` is live-out; ``A`` is intermediate and is the tensor whose tile
footprints drive the whole paper.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..ir import ProgramBuilder, Program, quant, relu


def build(params: Optional[Mapping[str, int]] = None) -> Program:
    p = {"H": 16, "W": 16, "KH": 3, "KW": 3}
    p.update(params or {})
    b = ProgramBuilder("conv2d", params=p)
    A = b.tensor("A", ("H", "W"))
    B = b.tensor("B", ("KH", "KW"))
    C = b.tensor(
        "C",
        (b.param("H") - b.param("KH") + 1, b.param("W") - b.param("KW") + 1),
    )
    h, w, kh, kw = b.iters("h", "w", "kh", "kw")

    b.assign("S0", (h, w), "0 <= h < H and 0 <= w < W", A[h, w], quant(A[h, w]))
    b.assign(
        "S1", (h, w), "0 <= h <= H - KH and 0 <= w <= W - KW", C[h, w], 0
    )
    b.reduce(
        "S2",
        (h, w, kh, kw),
        "0 <= h <= H - KH and 0 <= w <= W - KW and 0 <= kh < KH and 0 <= kw < KW",
        C[h, w],
        A[h + kh, w + kw] * B[kh, kw],
    )
    b.assign(
        "S3", (h, w), "0 <= h <= H - KH and 0 <= w <= W - KW", C[h, w], relu(C[h, w])
    )
    b.set_liveout("C")
    return b.build()
