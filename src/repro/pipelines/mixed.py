"""Mixed heterogeneous pipelines: the partitioner's scenario family.

Two NPU-offload-with-CPU-fallback shapes.  Each opens with an **in-place**
stage (an ASSIGN reading the tensor it writes, like conv2d's
quantisation) — the pattern that has no dataflow mapping on the NPU, so a
pure-NPU compile of the pipeline is illegal and the partitioner must keep
that stage on a host-class target while offloading the convolution body:

* ``camera_resnet`` — in-place sensor quantisation, then two stacked
  large-kernel conv + batchnorm/ReLU pairs (a camera front-end feeding
  ResNet-style layers).  The big kernels give the convolutions the
  arithmetic intensity that maps them onto the NPU's cube unit.
* ``edge_infer`` — in-place normalisation, a 2×2 box-filter preprocess,
  one large-kernel convolution, and an in-place ReLU on the result
  (illegal on the NPU at *both* ends of the pipeline).

Sizes follow the registry convention: ``build(size)`` scales the image;
kernel extents stay fixed so the intensity (and hence the NPU's
advantage) is size-independent.
"""

from __future__ import annotations


from ..ir import Program, ProgramBuilder, quant, relu

#: Kernel extent of the ResNet-style convolutions.  Large on purpose: a
#: K×K conv reduction has stage-level arithmetic intensity ~K²/12 ops per
#: DRAM byte, and the NPU's cube unit needs ≥ 8 to engage.
CAMERA_K = 15
EDGE_K = 13

TILE_SIZES = (32, 32)


def build_camera_resnet(size: int = 512, k: int = CAMERA_K) -> Program:
    """Quantise in place, then two conv+bn/ReLU pairs (kernels ``k``)."""
    if size < 2 * k + 2:
        raise ValueError(
            f"camera_resnet needs size >= {2 * k + 2} for k={k}, got {size}"
        )
    p = {"H": size, "W": size, "KH": k, "KW": k}
    b = ProgramBuilder("camera_resnet", params=p)
    H, W, KH, KW = (b.param(n) for n in ("H", "W", "KH", "KW"))
    X = b.tensor("X", ("H", "W"))
    K1 = b.tensor("K1", ("KH", "KW"))
    K2 = b.tensor("K2", ("KH", "KW"))
    F = b.tensor("F", (H - KH + 1, W - KW + 1))
    Y = b.tensor("Y", (H - KH + 1, W - KW + 1))
    G = b.tensor("G", (H - 2 * KH + 2, W - 2 * KW + 2))
    Z = b.tensor("Z", (H - 2 * KH + 2, W - 2 * KW + 2))
    gamma = b.tensor("gamma", (1,))
    beta = b.tensor("beta", (1,))
    h, w, kh, kw = b.iters("h", "w", "kh", "kw")

    box1 = "0 <= h <= H - KH and 0 <= w <= W - KW"
    box2 = "0 <= h <= H - 2*KH + 1 and 0 <= w <= W - 2*KW + 1"
    kbox = " and 0 <= kh < KH and 0 <= kw < KW"

    # In-place sensor quantisation: no NPU mapping exists for this stage.
    b.assign("Squant", (h, w), "0 <= h < H and 0 <= w < W", X[h, w], quant(X[h, w]))
    b.assign("Sconv1_init", (h, w), box1, F[h, w], 0)
    b.reduce(
        "Sconv1", (h, w, kh, kw), box1 + kbox,
        F[h, w], X[h + kh, w + kw] * K1[kh, kw],
    )
    b.assign("Sbn1", (h, w), box1, Y[h, w], relu(F[h, w] * gamma[0] + beta[0]))
    b.assign("Sconv2_init", (h, w), box2, G[h, w], 0)
    b.reduce(
        "Sconv2", (h, w, kh, kw), box2 + kbox,
        G[h, w], Y[h + kh, w + kw] * K2[kh, kw],
    )
    b.assign("Sbn2", (h, w), box2, Z[h, w], relu(G[h, w] * gamma[0] + beta[0]))
    b.set_liveout("Z")
    return b.build()


def build_edge_infer(size: int = 512, k: int = EDGE_K) -> Program:
    """Normalise in place, box-filter, one big conv, ReLU in place."""
    if size < k + 3:
        raise ValueError(
            f"edge_infer needs size >= {k + 3} for k={k}, got {size}"
        )
    p = {"H": size, "W": size, "KH": k, "KW": k}
    b = ProgramBuilder("edge_infer", params=p)
    H, W, KH, KW = (b.param(n) for n in ("H", "W", "KH", "KW"))
    A = b.tensor("A", ("H", "W"))
    Kw = b.tensor("Kw", ("KH", "KW"))
    Bt = b.tensor("B", (H - 1, W - 1))
    C = b.tensor("C", (H - KH, W - KW))
    h, w, kh, kw = b.iters("h", "w", "kh", "kw")

    boxb = "0 <= h <= H - 2 and 0 <= w <= W - 2"
    boxc = "0 <= h <= H - KH - 1 and 0 <= w <= W - KW - 1"
    kbox = " and 0 <= kh < KH and 0 <= kw < KW"

    # In-place normalisation (NPU-illegal).
    b.assign("Snorm", (h, w), "0 <= h < H and 0 <= w < W", A[h, w], quant(A[h, w]))
    # 2×2 box filter: cheap, memory-bound preprocess.
    b.assign(
        "Sbox", (h, w), boxb,
        Bt[h, w],
        (A[h, w] + A[h + 1, w] + A[h, w + 1] + A[h + 1, w + 1]) * 0.25,
    )
    b.assign("Sconv_init", (h, w), boxc, C[h, w], 0)
    b.reduce(
        "Sconv", (h, w, kh, kw), boxc + kbox,
        C[h, w], Bt[h + kh, w + kw] * Kw[kh, kw],
    )
    # In-place ReLU on the result (NPU-illegal again).
    b.assign("Srelu", (h, w), boxc, C[h, w], relu(C[h, w]))
    b.set_liveout("C")
    return b.build()


#: Registry hooks: ``build_workload("camera_resnet"/"edge_infer", size)``.
MIXED_BUILDERS = {
    "camera_resnet": build_camera_resnet,
    "edge_infer": build_edge_infer,
}


def build(size: int = 512) -> Program:
    return build_camera_resnet(size)
