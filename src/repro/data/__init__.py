"""``repro.data`` — the autotune candidate dataset (LOOPerSet direction).

Every autotune sweep (and, opted in, every batch compile) already computes
the tuples a data-driven optimizer needs: program fingerprint, target,
tile sizes, the cost model's footprint/traffic internals and the exact
analytical cost.  This package persists them: one JSONL record per
evaluated candidate, schema-validated like ``repro-metrics/1``, appended
under the cache directory so every sweep grows the training set the
:mod:`repro.learn` ranker fits on.
"""

from .dataset import (
    DATASET_SCHEMA,
    ENV_DATASET,
    Dataset,
    collection_enabled,
    dataset_from_env,
    default_dataset_path,
    make_record,
    resolve_dataset,
    validate_record,
)

__all__ = [
    "DATASET_SCHEMA",
    "ENV_DATASET",
    "Dataset",
    "collection_enabled",
    "dataset_from_env",
    "default_dataset_path",
    "make_record",
    "resolve_dataset",
    "validate_record",
]
