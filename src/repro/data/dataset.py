"""The autotune candidate store: append-only JSONL under the cache dir.

One record per evaluated tile-size candidate::

    {"schema": "repro-autotune-dataset/1",
     "fingerprint": "<sha256 of the program structure>",
     "program": "unsharp_mask", "target": "cpu", "startup": "smartfuse",
     "threads": 32, "dims": 2, "tile_sizes": [32, 128],
     "cost": 0.0123,                  # exact analytical cost, seconds
     "features": {...},               # cheap ranking features (no compile)
     "work": {...},                   # cost-model internals (footprints,
     "source": "autotune"}            #   traffic, reuse) for the candidate

Records are validated on append *and* on read (a corrupt line is counted
and skipped, never fatal), and serialized with sorted keys so the store
is byte-deterministic across processes and ``PYTHONHASHSEED`` values —
the same property the compile cache keys rely on.

``$REPRO_DATASET`` opts collection in globally: ``1``/``true`` appends to
the default store (``<cache dir>/datasets/autotune.jsonl``), any other
non-empty value is used as an explicit path.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Bump on any change to the record layout.
DATASET_SCHEMA = "repro-autotune-dataset/1"

#: Opt-in switch for ambient collection (autotune sweeps, batch compiles).
ENV_DATASET = "REPRO_DATASET"

_NUM = (int, float)

#: Serializes concurrent appends from worker threads within one process;
#: cross-process appends rely on O_APPEND line-sized writes.
_append_lock = threading.Lock()


def default_dataset_path() -> str:
    from ..service.cache import default_cache_dir

    return os.path.join(default_cache_dir(), "datasets", "autotune.jsonl")


def collection_enabled() -> bool:
    """Whether ambient dataset collection is switched on via the env."""
    spec = os.environ.get(ENV_DATASET, "")
    return bool(spec) and spec.lower() not in ("0", "false", "no")


def dataset_from_env() -> Optional["Dataset"]:
    """The ambient collection target, or ``None`` when collection is off."""
    if not collection_enabled():
        return None
    spec = os.environ.get(ENV_DATASET, "")
    if spec.lower() in ("1", "true", "yes"):
        return Dataset()
    return Dataset(spec)


def resolve_dataset(spec) -> Optional["Dataset"]:
    """Normalize a ``collect=`` spelling to a :class:`Dataset` (or None).

    ``None`` defers to ``$REPRO_DATASET``; ``False`` disables collection;
    ``True`` uses the default store; a path opens that store; a
    :class:`Dataset` passes through.
    """
    if spec is None:
        return dataset_from_env()
    if spec is False:
        return None
    if spec is True:
        return Dataset()
    if isinstance(spec, Dataset):
        return spec
    return Dataset(os.fspath(spec))


def make_record(
    fingerprint: str,
    tile_sizes: Sequence[int],
    cost: float,
    features: Mapping[str, float],
    program: str = "",
    target: str = "cpu",
    startup: str = "smartfuse",
    threads: int = 32,
    dims: Optional[int] = None,
    work: Optional[Mapping[str, float]] = None,
    source: str = "autotune",
) -> Dict[str, object]:
    """One schema-complete candidate record (floats coerced, keys fixed)."""
    record: Dict[str, object] = {
        "schema": DATASET_SCHEMA,
        "fingerprint": fingerprint,
        "program": program,
        "target": target,
        "startup": startup,
        "threads": int(threads),
        "dims": int(dims if dims is not None else len(tile_sizes)),
        "tile_sizes": [int(s) for s in tile_sizes],
        "cost": float(cost),
        "features": {k: float(v) for k, v in sorted(features.items())},
        "source": source,
    }
    if work is not None:
        record["work"] = {k: float(v) for k, v in sorted(work.items())}
    return record


def _is_finite_number(v) -> bool:
    return isinstance(v, _NUM) and not isinstance(v, bool) and math.isfinite(v)


def validate_record(obj: object) -> List[str]:
    """Errors in one candidate record (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(obj, Mapping):
        return ["record is not an object"]
    if obj.get("schema") != DATASET_SCHEMA:
        errors.append(
            f"schema is {obj.get('schema')!r}, expected {DATASET_SCHEMA!r}"
        )
    for key in ("fingerprint", "target", "startup", "source", "program"):
        v = obj.get(key)
        if not isinstance(v, str):
            errors.append(f"{key} must be a string, got {v!r}")
        elif key == "fingerprint" and not v:
            errors.append("fingerprint must be non-empty")
    for key in ("threads", "dims"):
        v = obj.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 1:
            errors.append(f"{key} must be a positive int, got {v!r}")
    sizes = obj.get("tile_sizes")
    if (
        not isinstance(sizes, list)
        or not sizes
        or any(not isinstance(s, int) or isinstance(s, bool) or s <= 0 for s in sizes)
    ):
        errors.append(f"tile_sizes must be a non-empty list of positive ints, got {sizes!r}")
    cost = obj.get("cost")
    if not _is_finite_number(cost) or cost <= 0:
        errors.append(f"cost must be a finite positive number, got {cost!r}")
    feats = obj.get("features")
    if not isinstance(feats, Mapping) or not feats:
        errors.append("features must be a non-empty object")
    else:
        for k, v in feats.items():
            if not isinstance(k, str) or not _is_finite_number(v):
                errors.append(f"features[{k!r}]: bad value {v!r}")
    work = obj.get("work")
    if work is not None:
        if not isinstance(work, Mapping):
            errors.append("work must be an object when present")
        else:
            for k, v in work.items():
                if not isinstance(k, str) or not _is_finite_number(v):
                    errors.append(f"work[{k!r}]: bad value {v!r}")
    return errors


def _dump(record: Mapping[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class Dataset:
    """One append-only JSONL candidate store.

    Thread-safe within a process; concurrent processes interleave whole
    lines (each batch is one ``write`` on an ``O_APPEND`` descriptor).
    """

    def __init__(self, path: Optional[str] = None):
        self.path = os.fspath(path) if path is not None else default_dataset_path()

    # -- writing -----------------------------------------------------------

    def append(self, records: Iterable[Mapping[str, object]]) -> int:
        """Validate and append ``records``; returns how many were written.

        Invalid records raise ``ValueError`` (callers construct records
        through :func:`make_record`, so an invalid one is a bug, not data).
        """
        lines: List[str] = []
        for record in records:
            errors = validate_record(record)
            if errors:
                raise ValueError(
                    f"invalid dataset record: {'; '.join(errors)}"
                )
            lines.append(_dump(record))
        if not lines:
            return 0
        payload = "\n".join(lines) + "\n"
        with _append_lock:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as f:
                f.write(payload)
        from ..service import instrument

        instrument.count("data.records_appended", len(lines))
        return len(lines)

    # -- reading -----------------------------------------------------------

    def _scan(self) -> Iterator[Tuple[Optional[Dict[str, object]], int]]:
        """Yield ``(record, line_no)`` pairs; invalid lines yield ``None``."""
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as f:
            for i, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except ValueError:
                    yield None, i
                    continue
                yield (obj if not validate_record(obj) else None), i

    def records(self) -> Iterator[Dict[str, object]]:
        """Every valid record, in append order; corrupt lines are skipped."""
        for record, _ in self._scan():
            if record is not None:
                yield record

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return self.records()

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # -- maintenance -------------------------------------------------------

    def info(self) -> Dict[str, object]:
        """Counts per program/target plus size and corruption tallies."""
        n = invalid = 0
        by_program: Dict[str, int] = {}
        by_target: Dict[str, int] = {}
        fingerprints = set()
        for record, _ in self._scan():
            if record is None:
                invalid += 1
                continue
            n += 1
            name = record.get("program") or record.get("fingerprint", "")[:12]
            by_program[name] = by_program.get(name, 0) + 1
            by_target[record["target"]] = by_target.get(record["target"], 0) + 1
            fingerprints.add(record["fingerprint"])
        return {
            "path": self.path,
            "schema": DATASET_SCHEMA,
            "records": n,
            "invalid_lines": invalid,
            "bytes": os.path.getsize(self.path) if os.path.exists(self.path) else 0,
            "programs": len(fingerprints),
            "by_program": dict(sorted(by_program.items())),
            "by_target": dict(sorted(by_target.items())),
        }

    def export(self, out, limit: Optional[int] = None) -> int:
        """Write the valid records to a file object as JSONL; returns the
        number exported.  Re-serializes (sorted keys), so an exported
        store is canonical even if the source interleaved writers."""
        n = 0
        for record in self.records():
            if limit is not None and n >= limit:
                break
            out.write(_dump(record) + "\n")
            n += 1
        return n

    def clear(self) -> int:
        """Delete the store; returns the number of records removed."""
        n = len(self)
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass
        return n
