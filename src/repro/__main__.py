"""Command-line interface: ``python -m repro``.

Subcommands:

* ``list`` — show the available workloads;
* ``optimize <workload>`` — run the paper's pass and print the fusion
  result, schedule tree and compile time;
* ``code <workload>`` — print the generated OpenMP or CUDA code;
* ``time <workload>`` — predicted execution times for our pass and the
  PPCG fusion heuristics on the modeled machines;
* ``partition <workload> --targets cpu,gpu,npu`` — assign pipeline stages
  across heterogeneous targets with the beam-search partitioner, compile
  each partition for its target and print the assignment, cut edges and
  modeled mixed-vs-single-target costs;
* ``tune <workload>`` — tile-size auto-tuning against the machine model
  (``--jobs N`` fans candidates out over the batch-compile driver;
  ``--search pruned`` ranks the grid with the learned model and runs
  exact evaluation only on the top-k; ``--collect`` appends every
  evaluated candidate to the autotune dataset);
* ``data info|export|clear`` — inspect, export or delete the autotune
  candidate dataset (``<cache dir>/datasets/autotune.jsonl``, or
  ``$REPRO_DATASET`` / ``--dataset PATH``);
* ``learn fit`` — fit the tile-size ranking model on the dataset and
  pickle it for ``tune --search pruned`` (``learn info`` shows a fitted
  model's metadata);
* ``trace <workload> -o trace.json`` — compile under a tracing collector
  and export the hierarchical span events as Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``) or JSONL;
* ``profile <workload>`` — the same compile, rendered as a span tree with
  self/total time per pass;
* ``stats diff A.json B.json`` — compare two metric snapshots
  (``repro-metrics/1``) and print what changed;
* ``cache info`` / ``cache clear`` / ``cache gc`` — inspect, empty or
  garbage-collect the on-disk compile cache (``$REPRO_CACHE_DIR``,
  default ``~/.cache/repro``; GC budgets via ``--max-bytes``/``--max-age``
  or ``$REPRO_CACHE_MAX_BYTES``/``$REPRO_CACHE_MAX_AGE``);
* ``cache serve`` — run the shared remote cache tier: an HTTP store
  server other daemons layer over via ``--cache-remote`` /
  ``$REPRO_CACHE_REMOTE`` or a ``tiered:<local>|<remote>`` cache spec;
* ``serve`` — run the long-lived compile server (unix socket and/or TCP)
  that keeps caches warm and deduplicates identical in-flight requests;
* ``client compile|tune|partition|stats|health|shutdown`` — talk to a running
  server (``client stats --json`` emits the raw ``repro-metrics/1``
  snapshot).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .codegen import print_tree
from .core import optimize
from .machine import analyze_optimized, analyze_scheduled, cpu_time, gpu_time
from .options import CompileOptions
from .pipelines import IMAGE_PIPELINES, mixed, polybench
from .scheduler import HEURISTICS, SchedulerError, schedule_program
from .workloads import UnknownWorkloadError, build_workload, default_tile_sizes


def _build_workload(name: str, size: Optional[int]):
    try:
        return build_workload(name, size)
    except UnknownWorkloadError:
        raise SystemExit(
            f"unknown workload {name!r}; try `python -m repro list`"
        )


def _default_tiles(name: str):
    return default_tile_sizes(name)


def cmd_list(_args) -> int:
    print("image pipelines: " + ", ".join(sorted(IMAGE_PIPELINES)))
    print("polybench:       " + ", ".join(sorted(polybench.BUILDERS)))
    print("other:           conv2d, conv_bn, equake")
    print("mixed-target:    " + ", ".join(sorted(mixed.MIXED_BUILDERS)))
    return 0


def cmd_optimize(args) -> int:
    from .obs import write_trace
    from .service import cached_optimize, default_cache, instrument

    prog = _build_workload(args.workload, args.size)
    tiles = tuple(args.tile) if args.tile else _default_tiles(args.workload)
    cache = None if args.no_cache else default_cache()
    options = CompileOptions(target=args.target, tile_sizes=tiles, cache=cache)
    with instrument.collect(trace=bool(args.trace)) as report:
        if cache is None:
            result = optimize(prog, options)
        else:
            result = cached_optimize(prog, options=options)
    cached = cache is not None and cache.stats.hits > 0
    print(f"workload:     {prog.name} ({len(prog.statements)} statements)")
    print(f"target:       {result.target.name}, tile sizes {tiles}")
    print(f"compile time: {result.compile_seconds * 1e3:.1f} ms"
          + (" (served from cache)" if cached else ""))
    print(f"fusion:       {result.fusion_summary()}")
    if args.trace:
        write_trace(report, args.trace)
        print(f"trace:        {args.trace} ({len(report.events)} spans)")
    if args.stats:
        if cache is not None:
            report.merge_cache_stats(cache.stats.as_dict())
        print()
        print(report.format())
    if args.tree:
        print()
        print(result.tree.pretty())
    return 0


def _traced_compile(args):
    """One full cold compile (optimize + codegen) under a tracing collector.

    Returns ``(program, report, wall_seconds)``.  The compile cache is
    bypassed on purpose: a trace of a cache hit shows nothing.
    """
    from time import perf_counter

    from .obs import collect, span

    prog = _build_workload(args.workload, args.size)
    tiles = tuple(args.tile) if args.tile else _default_tiles(args.workload)
    style = "cuda" if args.target == "gpu" else "openmp"
    t0 = perf_counter()
    with collect(trace=True) as report:
        with span("compile", workload=args.workload, target=args.target):
            result = optimize(
                prog, CompileOptions(target=args.target, tile_sizes=tiles)
            )
            if args.target == "gpu":
                from .codegen.gpu_mapping import map_to_gpu

                map_to_gpu(result)
            with span("codegen"):
                print_tree(result.tree, prog, style=style)
    return prog, report, perf_counter() - t0


def cmd_trace(args) -> int:
    from .obs import chrome_trace, trace_nesting_depth, write_trace

    if args.request:
        return _cmd_trace_request(args)
    if not args.workload:
        raise SystemExit("trace: need a workload (or --request <trace-id>)")
    prog, report, wall = _traced_compile(args)
    write_trace(report, args.output, format=args.format)
    depth = (
        trace_nesting_depth(chrome_trace(report))
        if args.format == "chrome"
        else "-"
    )
    dropped = f", {report.dropped_events} dropped" if report.dropped_events else ""
    print(
        f"{prog.name}: {len(report.events)} spans{dropped} "
        f"(nesting depth {depth}) in {wall * 1e3:.1f} ms -> {args.output}"
    )
    return 0


def _cmd_trace_request(args) -> int:
    """Stitch one distributed request's spans out of event-log files."""
    import json

    from .obs import stitch_event_logs

    logs = args.log or []
    if not logs:
        raise SystemExit("trace --request: need at least one --log PATH")
    chrome, n_streams = stitch_event_logs(logs, args.request)
    if n_streams == 0:
        print(
            f"no trace records for {args.request} in {len(logs)} log(s)",
            file=sys.stderr,
        )
        return 1
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(chrome, f)
    other = chrome["otherData"]
    print(
        f"request {args.request}: {other['spans']} spans from "
        f"{n_streams} stream(s) ({', '.join(other['services'])}) "
        f"-> {args.output}"
    )
    return 0


def cmd_profile(args) -> int:
    from .obs import format_profile, profile_tree

    if args.critical_path:
        return _cmd_profile_critical_path(args)
    prog, report, wall = _traced_compile(args)
    roots = profile_tree(report)
    print(f"{prog.name} compile profile ({args.target}):")
    print(
        format_profile(
            roots, top=args.top, max_depth=args.depth, wall_seconds=wall
        )
    )
    return 0


def _cmd_profile_critical_path(args) -> int:
    """Partition the workload, run it, and report the critical path —
    measured span durations next to the partitioner's analytical model."""
    from .obs import collect, critical_path
    from .options import PartitionOptions
    from .partition import partition_pipeline
    from .partition.host import execute_partitioned

    prog = _build_workload(args.workload, args.size)
    options = PartitionOptions(
        targets=_parse_targets(args.targets),
        tile_sizes=_default_tiles(args.workload),
    )
    sched = partition_pipeline(prog, options=options)
    with collect(trace=True) as report:
        execute_partitioned(sched)

    measured_nodes: dict = {}
    transfers: dict = {}
    for e in report.events:
        if e.name == "partition.compute":
            measured_nodes[e.attrs["partition"]] = e.duration
        elif e.name == "partition.transfer":
            key = (e.attrs["tensor"], e.attrs["src"], e.attrs["dst"])
            transfers[key] = transfers.get(key, 0.0) + e.duration
    modeled_nodes = {p.name: p.modeled_seconds for p in sched.partitions}

    modeled_edges = []
    measured_edges = []
    for cut in sched.cuts:
        modeled_edges.append((cut.src, cut.dst, cut.seconds))
        # The host stages a cut tensor out of src then into dst; the
        # measured edge cost is both copies.
        measured = transfers.get((cut.tensor, cut.src, "host"), 0.0) + \
            transfers.get((cut.tensor, "host", cut.dst), 0.0)
        measured_edges.append((cut.src, cut.dst, measured))

    meas_total, meas_path = critical_path(measured_nodes, measured_edges)
    model_total, model_path = critical_path(modeled_nodes, modeled_edges)

    print(f"{prog.name} critical path "
          f"({', '.join(options.target_names)} partitioning):")
    print(f"  {'partition':<16} {'target':<6} "
          f"{'measured':>12} {'modeled':>12}")
    for part in sched.partitions:
        meas = measured_nodes.get(part.name, 0.0)
        print(f"  {part.name:<16} {part.target:<6} "
              f"{meas * 1e6:>9.1f} us {part.modeled_seconds * 1e6:>9.1f} us")
    for cut, (_, _, meas) in zip(sched.cuts, measured_edges):
        print(f"  cut {cut.tensor:<12} {cut.src}->{cut.dst:<10} "
              f"{meas * 1e6:>9.1f} us {cut.seconds * 1e6:>9.1f} us")
    print(f"  critical path (measured): {meas_total * 1e6:.1f} us "
          f"via {' -> '.join(meas_path)}")
    print(f"  critical path (modeled):  {model_total * 1e6:.1f} us "
          f"via {' -> '.join(model_path)}")
    return 0


def cmd_stats(args) -> int:
    import json

    from .obs import diff_snapshots, format_diff, validate_metrics_snapshot

    snaps = []
    for path in (args.a, args.b):
        with open(path) as f:
            snap = json.load(f)
        errors = validate_metrics_snapshot(snap)
        if errors:
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
            return 2
        snaps.append(snap)
    deltas = diff_snapshots(snaps[0], snaps[1])
    print(format_diff(deltas, only_changed=not args.all))
    return 0


def cmd_code(args) -> int:
    prog = _build_workload(args.workload, args.size)
    tiles = tuple(args.tile) if args.tile else _default_tiles(args.workload)
    result = optimize(prog, CompileOptions(target=args.target, tile_sizes=tiles))
    style = "cuda" if args.target == "gpu" else "openmp"
    if args.target == "gpu":
        from .codegen.gpu_mapping import map_to_gpu

        map_to_gpu(result)
    print(print_tree(result.tree, prog, style=style))
    return 0


def cmd_time(args) -> int:
    prog = _build_workload(args.workload, args.size)
    tiles = tuple(args.tile) if args.tile else _default_tiles(args.workload)
    result = optimize(prog, CompileOptions(target=args.target, tile_sizes=tiles))
    work = analyze_optimized(result)
    rows = []
    if args.target == "gpu":
        rows.append(("ours", gpu_time(work)))
    else:
        rows.append(("ours", cpu_time(work, args.threads)))
    for heuristic in HEURISTICS:
        try:
            sched = schedule_program(prog, heuristic)
        except SchedulerError as exc:
            rows.append((heuristic, None))
            continue
        hwork = analyze_scheduled(sched, tiles)
        t = gpu_time(hwork) if args.target == "gpu" else cpu_time(hwork, args.threads)
        rows.append((heuristic, t))
    print(f"{prog.name} on modeled {args.target} "
          f"({args.threads} threads):" if args.target == "cpu" else "")
    for name, t in rows:
        text = "failed" if t is None else f"{t * 1e3:10.3f} ms"
        print(f"  {name:12s} {text}")
    return 0


def cmd_tune(args) -> int:
    from .scheduler.autotune import autotune_tile_sizes
    from .service import default_cache

    prog = _build_workload(args.workload, args.size)
    candidates = tuple(args.candidates) if args.candidates else (8, 32, 128)
    options = CompileOptions(
        target=args.target,
        mode="auto" if args.jobs else "serial",
        jobs=args.jobs,
        cache=None if args.no_cache else default_cache(),
    )
    collect = args.collect if args.collect is not None else None
    if collect == "":
        collect = True  # bare --collect: the default store
    result = autotune_tile_sizes(
        prog,
        threads=args.threads,
        candidates=candidates,
        options=options,
        search=args.search,
        model=args.model,
        top_k=args.top_k,
        collect=collect,
    )
    print(f"searched {len(result.evaluations)} tilings "
          f"in {result.tuning_seconds:.1f} s ({result.search})")
    if result.pruned_out:
        print(f"pruned:          {result.pruned_out} candidates cut by the model")
    if result.fallback_reason:
        print(f"fallback:        {result.fallback_reason}")
    print(f"best tile sizes: {result.best_sizes} "
          f"({result.best_time * 1e3:.3f} ms modeled)")
    for sizes, t in result.top(5):
        print(f"  {str(sizes):14s} {t * 1e3:9.3f} ms")
    return 0


def _parse_targets(text):
    targets = tuple(t.strip() for t in text.split(",") if t.strip())
    bad = [t for t in targets if t not in ("cpu", "gpu", "npu")]
    if bad or not targets:
        raise SystemExit(
            f"--targets must be a comma-separated subset of cpu,gpu,npu; "
            f"got {text!r}"
        )
    return targets


def cmd_partition(args) -> int:
    from .options import PartitionOptions
    from .partition import partition_pipeline
    from .service import default_cache, instrument

    prog = _build_workload(args.workload, args.size)
    options = PartitionOptions(
        targets=_parse_targets(args.targets),
        tile_sizes=_default_tiles(args.workload),
        cache=None if args.no_cache else default_cache(),
    )
    with instrument.collect() as report:
        sched = partition_pipeline(prog, options=options)
    mixed = sched.modeled["mixed"]
    single = sched.modeled["single"]
    print(f"workload:   {prog.name} ({len(prog.statements)} statements)")
    print(f"targets:    {', '.join(options.target_names)}"
          + (" (degenerate: one partition)" if sched.is_degenerate else ""))
    print("assignment: "
          + ", ".join(f"{s}:{t}" for s, t in sched.assignment.items()))
    for part in sched.partitions:
        tiles = part.result.tile_sizes
        print(f"  {part.name} [{part.target}] "
              f"{len(part.statements)} stmts, tiles {tiles}, "
              f"{part.modeled_seconds * 1e6:9.1f} us   "
              f"({', '.join(part.statements)})")
    for cut in sched.cuts:
        print(f"  cut {cut.tensor}: {cut.src}[{cut.src_target}] -> "
              f"{cut.dst}[{cut.dst_target}], {cut.nbytes} bytes, "
              f"{cut.seconds * 1e6:.1f} us")
    print(f"modeled:    mixed {mixed['total_seconds'] * 1e6:.1f} us "
          f"(compute {mixed['compute_seconds'] * 1e6:.1f} "
          f"+ transfer {mixed['transfer_seconds'] * 1e6:.1f})")
    for target, seconds in single.items():
        text = "illegal" if seconds is None else f"{seconds * 1e6:.1f} us"
        print(f"            single {target:4s} {text}")
    if args.stats:
        print()
        print(report.format())
    return 0


def cmd_data(args) -> int:
    from .data import Dataset

    dataset = Dataset(args.dataset) if args.dataset else Dataset()
    if args.action == "info":
        info = dataset.info()
        print(f"dataset:       {info['path']}")
        print(f"schema:        {info['schema']}")
        print(f"records:       {info['records']} "
              f"({info['bytes'] / 1024:.1f} KiB, "
              f"{info['invalid_lines']} invalid lines)")
        print(f"programs:      {info['programs']}")
        for name, n in info["by_program"].items():
            print(f"  {name:24s} {n}")
        for name, n in info["by_target"].items():
            print(f"  target {name:17s} {n}")
        return 0
    if args.action == "export":
        if args.output in (None, "-"):
            n = dataset.export(sys.stdout, limit=args.limit)
        else:
            with open(args.output, "w", encoding="utf-8") as f:
                n = dataset.export(f, limit=args.limit)
            print(f"exported {n} records to {args.output}")
        return 0
    removed = dataset.clear()
    print(f"removed {removed} records from {dataset.path}")
    return 0


def cmd_learn(args) -> int:
    from .data import Dataset
    from .learn import default_model_path, fit_records, load_model, save_model

    if args.action == "info":
        path = args.output or default_model_path()
        try:
            model = load_model(path)
        except FileNotFoundError:
            print(f"no model at {path}", file=sys.stderr)
            return 1
        print(f"model:     {path}")
        print(f"kind:      {model.kind}")
        print(f"features:  {len(model.feature_names)}")
        for key, value in sorted(model.meta.items()):
            print(f"  {key:20s} {value}")
        return 0
    dataset = Dataset(args.dataset) if args.dataset else Dataset()
    try:
        model = fit_records(
            dataset.records(),
            kind=args.kind,
            rounds=args.rounds,
            min_program_rows=args.min_rows,
            min_coverage=args.min_rows,
        )
    except ValueError as exc:
        print(f"cannot fit: {exc}", file=sys.stderr)
        return 1
    path = save_model(model, args.output)
    meta = model.meta
    print(f"fitted {model.kind} ranker on {meta['rows']} records "
          f"({meta['programs']} programs, "
          f"{meta['per_program_heads']} per-program heads)")
    print(f"train rmse (log cost): {meta['train_rmse_log']:.4f}")
    print(f"model: {path}")
    return 0


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}
_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def _parse_size(text):
    """``"500M"`` → bytes; bare numbers are bytes already."""
    if text is None:
        return None
    text = text.strip().lower().rstrip("b").rstrip("i")
    if text and text[-1] in _SIZE_SUFFIXES:
        return int(float(text[:-1]) * _SIZE_SUFFIXES[text[-1]])
    return int(float(text))


def _parse_age(text):
    """``"7d"`` → seconds; bare numbers are seconds already."""
    if text is None:
        return None
    text = text.strip().lower()
    if text and text[-1] in _AGE_SUFFIXES:
        return float(text[:-1]) * _AGE_SUFFIXES[text[-1]]
    return float(text)


def cmd_cache(args) -> int:
    from .service import resolve_cache

    if args.action == "serve":
        return _cmd_cache_serve(args)
    cache = resolve_cache(args.cache)
    if args.action == "clear":
        what = args.what
        removed = cache.clear(
            results=what in ("all", "results"),
            memos=what in ("all", "memos"),
        )
        kind = "" if what == "all" else f"{what} "
        print(f"removed {removed} {kind}entries from {cache.cache_dir}")
        return 0
    if args.action == "gc":
        report = cache.gc(
            max_bytes=_parse_size(args.max_bytes),
            max_age=_parse_age(args.max_age),
            dry_run=args.dry_run,
        )
        verb = "would remove" if report.dry_run else "removed"
        print(f"scanned {report.scanned} entries "
              f"({report.scanned_bytes / 1024:.1f} KiB) in {cache.cache_dir}")
        print(f"{verb} {report.removed} entries "
              f"({report.removed_bytes / 1024:.1f} KiB): "
              f"{report.expired} expired, {report.evicted} size-evicted")
        print(f"remaining: {report.remaining_entries} entries "
              f"({report.remaining_bytes / 1024:.1f} KiB)")
        if report.errors:
            print(f"errors: {report.errors}")
        return 0
    info = cache.info()
    print(f"cache dir:      {info['cache_dir']}")
    print(f"schema version: {info['schema_version']}")
    print(f"disk entries:   {info['disk_entries']} "
          f"({info['disk_bytes'] / 1024:.1f} KiB)")
    print(f"memo snapshots: {info['memo_entries']} "
          f"({info['memo_bytes'] / 1024:.1f} KiB)")
    print(f"memory entries: {info['memory_entries']} "
          f"({info['memory_bytes'] / 1024:.1f} KiB)")
    if info.get("gc_max_bytes") is not None or info.get("gc_max_age") is not None:
        print(f"gc budget:      max_bytes={info['gc_max_bytes']} "
              f"max_age={info['gc_max_age']}")
    remote = info.get("remote")
    if remote:
        state = "up" if remote.get("alive") else "down"
        print(f"remote tier:    {remote.get('spec')} ({state})")
    stats = info["stats"]
    print(f"session stats:  {stats['memory_hits']} memory hits, "
          f"{stats['disk_hits']} disk hits, {stats['misses']} misses, "
          f"{stats['stores']} stores ({stats['skipped_stores']} skipped)")
    print(f"memo stats:     {stats['memo_hits']} snapshot hits, "
          f"{stats['memo_misses']} misses, {stats['memo_stores']} stores")
    for tier, tstats in info.get("tiers", {}).items():
        print(f"tier {tier:<9}  {tstats.get('hits', 0)} hits, "
              f"{tstats.get('misses', 0)} misses, "
              f"{tstats.get('puts', 0)} puts "
              f"({tstats.get('put_skips', 0)} skipped), "
              f"get {tstats.get('get_ms_mean', 0.0):.2f}ms avg, "
              f"put {tstats.get('put_ms_mean', 0.0):.2f}ms avg")
    return 0


def _cmd_cache_serve(args) -> int:
    """Run the shared remote tier: an HTTP store server over a directory."""
    from .service.cache import default_cache_dir
    from .service.stores import StoreServer

    directory = args.dir or default_cache_dir()
    server = StoreServer(
        directory, host=args.host, port=args.port, events_path=args.events_log
    )
    host, port = server.address
    print(f"repro-store serving {directory} on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        return 130
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import os

    from .serve.server import CompileServer, ServeConfig

    cache_spec = None if args.no_cache else args.cache
    if cache_spec is not None and args.cache_remote:
        cache_spec = {"local": cache_spec, "remote": args.cache_remote}
    config = ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        workers=args.workers,
        client_limit=args.client_limit,
        request_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        cache=cache_spec,
        trace_sample=args.trace_sample,
        events_path=args.events_log,
        sample_interval=args.sample_interval,
    )
    server = CompileServer(config)

    async def _run():
        await server.start()
        where = []
        if config.socket_path:
            where.append(f"unix:{config.socket_path}")
        if server.tcp_address:
            where.append(f"tcp:{server.tcp_address[0]}:{server.tcp_address[1]}")
        print(
            f"repro-serve listening on {', '.join(where)} "
            f"(pid {os.getpid()}, {config.workers} workers)",
            flush=True,
        )
        await server.run()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        return 130
    print("repro-serve: drained, exiting")
    return 0


def _client_compile(client, args) -> int:
    if getattr(args, "trace", None):
        return _client_compile_traced(client, args)
    out = client.compile(
        args.workload,
        size=args.size,
        target=args.target,
        tile_sizes=args.tile,
        startup=args.startup,
    )
    print(f"workload:     {out['workload']}")
    print(f"fingerprint:  {out['fingerprint']}")
    print(f"tile sizes:   {out.get('tile_sizes')}")
    print(f"compile time: {out['compile_ms']:.1f} ms (server-side)")
    print(f"from cache:   {'yes' if out['from_cache'] else 'no'}")
    print(f"deduped:      {'yes' if out.get('deduped') else 'no'}")
    if out.get("fusion"):
        print(f"fusion:       {out['fusion']}")
    return 0


def _client_compile_traced(client, args) -> int:
    """One traced compile RPC, stitched into a Perfetto-loadable file.

    The client lane comes from a local tracing collector around the RPC;
    the daemon lane rides back in the result's ``trace`` field; the store
    lane is derived from the server-side handling times the remote store
    echoed into the daemon's ``store.*`` spans.
    """
    import json

    from .obs import collect, span
    from .obs.distributed import derive_store_stream, stitch, stream_from_report

    ctx = client.new_trace(sampled=True)
    with collect(trace=True) as report:
        with span(
            "client.request",
            workload=args.workload,
            target=args.target,
            trace_id=ctx.trace_id,
        ):
            out = client.compile(
                args.workload,
                size=args.size,
                target=args.target,
                tile_sizes=args.tile,
                startup=args.startup,
                trace=ctx,
            )
    streams = [stream_from_report(report, "client", ctx)]
    daemon = out.get("trace")
    if daemon:
        streams.append(daemon)
        store = derive_store_stream(daemon)
        if store:
            streams.append(store)
    chrome = stitch(streams, trace_id=ctx.trace_id)
    with open(args.trace, "w", encoding="utf-8") as f:
        json.dump(chrome, f)
    other = chrome["otherData"]
    print(f"workload:     {out['workload']}")
    print(f"fingerprint:  {out['fingerprint']}")
    print(f"compile time: {out['compile_ms']:.1f} ms (server-side)")
    print(f"from cache:   {'yes' if out['from_cache'] else 'no'}")
    print(f"trace id:     {ctx.trace_id}")
    print(f"trace:        {other['spans']} spans across "
          f"{', '.join(other['services'])} -> {args.trace}")
    if not daemon:
        print("note: daemon returned no span payload (sampled out?)",
              file=sys.stderr)
    return 0


def _client_tune(client, args) -> int:
    out = client.autotune(
        args.workload,
        size=args.size,
        target=args.target,
        threads=args.threads,
        candidates=args.candidates,
        startup=args.startup,
    )
    print(f"workload:        {out['workload']}")
    print(f"searched:        {out['evaluations']} tilings "
          f"({out['failures']} infeasible) in {out['tuning_seconds']:.1f} s")
    print(f"best tile sizes: {tuple(out['best_tile_sizes'])} "
          f"({out['best_time_ms']:.3f} ms modeled)")
    return 0


def _client_partition(client, args) -> int:
    out = client.partition(
        args.workload,
        size=args.size,
        targets=_parse_targets(args.targets),
        startup=args.startup,
    )
    mixed = out["modeled"]["mixed"]
    print(f"workload:    {out['workload']}")
    print(f"targets:     {', '.join(out['targets_used'])}"
          + (" (degenerate)" if out.get("degenerate") else ""))
    print("assignment:  "
          + ", ".join(f"{s}:{t}" for s, t in out["assignment"].items()))
    for part in out["partitions"]:
        print(f"  {part['name']} [{part['target']}] "
              f"{len(part['statements'])} stmts  {part['fingerprint'][:12]}")
    print(f"cuts:        {len(out['cuts'])}")
    print(f"modeled:     mixed {mixed['total_seconds'] * 1e6:.1f} us")
    for target, seconds in out["modeled"]["single"].items():
        text = "illegal" if seconds is None else f"{seconds * 1e6:.1f} us"
        print(f"             single {target:4s} {text}")
    print(f"server time: {out['compile_ms']:.1f} ms")
    print(f"deduped:     {'yes' if out.get('deduped') else 'no'}")
    return 0


def _client_stats(client, args) -> int:
    import json

    if getattr(args, "watch", False):
        return _client_stats_watch(client, args)
    snapshot = client.stats()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    counters = snapshot.get("counters", {})
    print(f"schema:   {snapshot.get('schema')}")
    for key in sorted(k for k in counters if k.startswith("serve.")):
        print(f"  {key:28s} {counters[key]}")
    gauges = snapshot.get("gauges", {})
    for key in sorted(k for k in gauges if k.startswith("serve.")):
        print(f"  {key:28s} {gauges[key]:.3f}")
    return 0


def _client_stats_watch(client, args) -> int:
    """Poll the server's metrics and print what changed between polls."""
    import time as _time

    from .obs import diff_snapshots, format_diff

    prev = client.stats()
    print(f"watching {prev.get('schema')} every {args.interval:.1f}s "
          "(ctrl-c to stop)")
    frames = 0
    try:
        while args.count is None or frames < args.count:
            _time.sleep(args.interval)
            cur = client.stats()
            deltas = diff_snapshots(prev, cur)
            text = format_diff(deltas, only_changed=True)
            stamp = _time.strftime("%H:%M:%S")
            if text.strip():
                print(f"-- {stamp}")
                print(text)
            else:
                print(f"-- {stamp} (no change)")
            prev = cur
            frames += 1
    except KeyboardInterrupt:
        pass
    return 0


def _format_top_frame(sample, recent_events) -> str:
    """One ``repro top`` dashboard frame as text."""
    lines = []
    up = sample.get("uptime_seconds", 0.0)
    lines.append(
        f"repro top — up {up:7.1f}s   "
        f"requests {sample.get('requests_total', 0)}   "
        f"connections {sample.get('connections', 0)}"
    )
    lines.append(
        f"  req/s {sample.get('req_per_s', 0.0):7.2f}   "
        f"dedup {sample.get('dedup_rate', 0.0) * 100:5.1f}%   "
        f"active flights {sample.get('active_flights', 0)}   "
        f"inflight compiles {sample.get('inflight_compiles', 0)}"
    )
    lines.append(
        f"  compile p50 {sample.get('compile_p50_ms', 0.0):8.1f} ms   "
        f"p99 {sample.get('compile_p99_ms', 0.0):8.1f} ms   "
        f"errors {sample.get('compile_errors', 0)}"
    )
    extra = []
    if "flush_queue_depth" in sample:
        extra.append(f"flush queue {sample['flush_queue_depth']:.0f}")
    if sample.get("remote_down"):
        extra.append("REMOTE DOWN")
    if sample.get("events_dropped"):
        extra.append(f"events dropped {sample['events_dropped']}")
    if extra:
        lines.append("  " + "   ".join(extra))
    for tier, t in sorted(sample.get("tiers", {}).items()):
        lines.append(
            f"  tier {tier:<9} {t.get('hit_pct', 0.0):5.1f}% hit "
            f"({t.get('gets', 0)} gets)"
        )
    if recent_events:
        lines.append("  recent events:")
        for ev in recent_events[-5:]:
            lines.append(
                f"    [{ev.get('level', '?'):<5}] {ev.get('event', '?')}"
            )
    return "\n".join(lines)


def cmd_top(args) -> int:
    """Live daemon telemetry off the ``watch`` verb."""
    import time as _time

    from .serve.client import ServeClient, ServeError

    socket_path, host, port = args.socket, args.host, args.port
    if socket_path is None and host is None:
        from .serve.server import default_socket_path

        socket_path = default_socket_path()
    try:
        with ServeClient(
            socket_path=socket_path, host=host, port=port, timeout=30.0
        ) as client:
            seq = 0
            frames = 0
            while True:
                reply = client.watch(since=seq)
                samples = reply.get("samples", [])
                if samples:
                    seq = samples[-1]["seq"]
                    frame = _format_top_frame(
                        samples[-1], reply.get("recent_events", [])
                    )
                    if not args.once:
                        # ANSI: home + clear-to-end, no full-screen buffer.
                        sys.stdout.write("\x1b[H\x1b[2J")
                    print(frame, flush=True)
                    frames += 1
                if args.once and frames:
                    return 0
                if args.frames is not None and frames >= args.frames:
                    return 0
                _time.sleep(args.interval or reply.get("interval", 1.0))
    except KeyboardInterrupt:
        return 0
    except ServeError as exc:
        print(f"server error ({exc.code}): {exc.message}", file=sys.stderr)
        return 1
    except (OSError, TimeoutError) as exc:
        print(f"cannot reach compile server: {exc}", file=sys.stderr)
        return 1


def _client_health(client, _args) -> int:
    h = client.health()
    print(f"status:   {h['status']}")
    print(f"pid:      {h['pid']}")
    print(f"uptime:   {h['uptime_seconds']:.1f} s")
    print(f"requests: {h['requests_total']}")
    return 0


def _client_shutdown(client, _args) -> int:
    out = client.shutdown()
    print(f"stopping: {out['stopping']} "
          f"({out['inflight_compiles']} compiles draining)")
    return 0


def cmd_client(args) -> int:
    from .serve.client import ServeClient, ServeError, wait_for_server

    socket_path, host, port = args.socket, args.host, args.port
    if socket_path is None and host is None:
        from .serve.server import default_socket_path

        socket_path = default_socket_path()
    handlers = {
        "compile": _client_compile,
        "tune": _client_tune,
        "partition": _client_partition,
        "stats": _client_stats,
        "health": _client_health,
        "shutdown": _client_shutdown,
    }
    try:
        if args.wait:
            wait_for_server(
                socket_path=socket_path, host=host, port=port, timeout=args.wait
            )
        with ServeClient(
            socket_path=socket_path, host=host, port=port, timeout=args.timeout
        ) as client:
            return handlers[args.client_command](client, args)
    except ServeError as exc:
        print(f"server error ({exc.code}): {exc.message}", file=sys.stderr)
        return 1
    except (OSError, TimeoutError) as exc:
        print(f"cannot reach compile server: {exc}", file=sys.stderr)
        return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Post-tiling fusion (MICRO 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(fn=cmd_list)

    cache_p = sub.add_parser(
        "cache", help="inspect, clear, garbage-collect or serve the compile cache"
    )
    cache_p.add_argument("action", choices=["info", "clear", "gc", "serve"])
    cache_p.add_argument(
        "--what",
        choices=["all", "results", "memos"],
        default="all",
        help="which store `clear` empties: compile results, spilled memo "
        "snapshots, or both (default)",
    )
    cache_p.add_argument(
        "--cache", default="default",
        help="cache to operate on: 'default', a named cache, a directory, "
        "or a tiered:<local>|<remote> fabric spec",
    )
    cache_p.add_argument(
        "--max-bytes", default=None, metavar="SIZE",
        help="`gc` byte budget, e.g. 500M or 2G (mtime-LRU eviction; "
        "default $REPRO_CACHE_MAX_BYTES)",
    )
    cache_p.add_argument(
        "--max-age", default=None, metavar="AGE",
        help="`gc` TTL, e.g. 7d or 3600 (seconds; "
        "default $REPRO_CACHE_MAX_AGE)",
    )
    cache_p.add_argument("--dry-run", action="store_true",
                         help="`gc`: report what would be removed, remove nothing")
    cache_p.add_argument(
        "--dir", default=None,
        help="`serve`: directory to serve as the shared remote tier "
        "(default: the default cache dir)",
    )
    cache_p.add_argument("--host", default="127.0.0.1",
                         help="`serve`: bind address")
    cache_p.add_argument("--port", type=int, default=0,
                         help="`serve`: TCP port (0 picks a free one)")
    cache_p.add_argument(
        "--events-log", default=None, metavar="PATH",
        help="`serve`: append structured events (including per-request "
        "trace records) to this JSONL file",
    )
    cache_p.set_defaults(fn=cmd_cache)

    data_p = sub.add_parser(
        "data", help="inspect, export or clear the autotune candidate dataset"
    )
    data_p.add_argument("action", choices=["info", "export", "clear"])
    data_p.add_argument(
        "--dataset", default=None,
        help="dataset path (default <cache dir>/datasets/autotune.jsonl)",
    )
    data_p.add_argument(
        "-o", "--output", default=None,
        help="`export`: output file ('-' or omitted for stdout)",
    )
    data_p.add_argument("--limit", type=int, default=None,
                        help="`export`: cap the number of records")
    data_p.set_defaults(fn=cmd_data)

    learn_p = sub.add_parser(
        "learn", help="fit or inspect the tile-size ranking model"
    )
    learn_p.add_argument("action", choices=["fit", "info"])
    learn_p.add_argument(
        "--dataset", default=None,
        help="`fit`: dataset to train on (default: the default store)",
    )
    learn_p.add_argument(
        "-o", "--output", default=None,
        help="model pickle path (default $REPRO_AUTOTUNE_MODEL or "
        "<cache dir>/models/autotune-ranker.pkl)",
    )
    learn_p.add_argument(
        "--kind", choices=["stumps", "ridge"], default="stumps",
        help="`fit`: gradient-boosted stumps (default) or ridge regression",
    )
    learn_p.add_argument("--rounds", type=int, default=400,
                         help="`fit`: boosting rounds for stumps")
    learn_p.add_argument(
        "--min-rows", type=int, default=8,
        help="`fit`: rows a (program, target) needs for its own head; also "
        "the coverage below which pruned search falls back to exhaustive",
    )
    learn_p.set_defaults(fn=cmd_learn)

    stats_p = sub.add_parser(
        "stats", help="work with exported metric snapshots"
    )
    stats_sub = stats_p.add_subparsers(dest="stats_command", required=True)
    diff_p = stats_sub.add_parser(
        "diff", help="compare two repro-metrics/1 snapshots"
    )
    diff_p.add_argument("a", help="baseline snapshot (JSON)")
    diff_p.add_argument("b", help="current snapshot (JSON)")
    diff_p.add_argument(
        "--all",
        action="store_true",
        help="show unchanged metrics too",
    )
    diff_p.set_defaults(fn=cmd_stats)

    part_p = sub.add_parser(
        "partition",
        help="assign pipeline stages across cpu/gpu/npu and compile each "
        "partition for its target",
    )
    part_p.add_argument("workload")
    part_p.add_argument("--size", type=int, default=None)
    part_p.add_argument(
        "--targets", default="cpu,gpu,npu",
        help="comma-separated target set to partition over "
        "(default cpu,gpu,npu)",
    )
    part_p.add_argument("--no-cache", action="store_true",
                        help="compile partitions without the result cache")
    part_p.add_argument(
        "--stats", action="store_true",
        help="print per-pass timings and counters for the partition compile",
    )
    part_p.set_defaults(fn=cmd_partition)

    serve_p = sub.add_parser(
        "serve", help="run the long-lived compile server"
    )
    serve_p.add_argument(
        "--socket", default=None,
        help="unix socket path (default <cache dir>/serve.sock "
        "when no --host is given)",
    )
    serve_p.add_argument("--host", default=None, help="also listen on TCP")
    serve_p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free one; printed at startup)",
    )
    serve_p.add_argument("--workers", type=int, default=2,
                         help="compile worker threads")
    serve_p.add_argument(
        "--client-limit", type=int, default=8,
        help="max in-flight requests per connection",
    )
    serve_p.add_argument("--timeout", type=float, default=300.0,
                         help="per-request timeout in seconds")
    serve_p.add_argument("--drain-timeout", type=float, default=10.0,
                         help="seconds to wait for in-flight work at shutdown")
    serve_p.add_argument(
        "--cache", default="default",
        help="compile cache: 'default', a named cache, a directory, or a "
        "tiered:<local>|<remote> fabric spec",
    )
    serve_p.add_argument(
        "--cache-remote", default=None, metavar="URL",
        help="shared remote cache tier (an http://host:port store server "
        "or a shared directory) layered over --cache",
    )
    serve_p.add_argument("--no-cache", action="store_true",
                         help="serve without a result cache")
    serve_p.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="head-sampling probability for traced requests (0..1; "
        "sampled-out requests pay only the null-span fast path)",
    )
    serve_p.add_argument(
        "--events-log", default=None, metavar="PATH",
        help="append structured lifecycle events and per-request trace "
        "records to this JSONL file",
    )
    serve_p.add_argument(
        "--sample-interval", type=float, default=1.0, metavar="SECONDS",
        help="period of the telemetry ring sampler behind `repro top`",
    )
    serve_p.set_defaults(fn=cmd_serve)

    top_p = sub.add_parser(
        "top", help="live daemon telemetry dashboard (the `watch` verb)"
    )
    top_p.add_argument("--socket", default=None,
                       help="unix socket path of the server")
    top_p.add_argument("--host", default=None, help="server TCP host")
    top_p.add_argument("--port", type=int, default=None, help="server TCP port")
    top_p.add_argument(
        "--interval", type=float, default=None,
        help="refresh period (default: the server's sample interval)",
    )
    top_p.add_argument("--once", action="store_true",
                       help="print one frame and exit (CI-friendly)")
    top_p.add_argument("--frames", type=int, default=None,
                       help="exit after N frames")
    top_p.set_defaults(fn=cmd_top)

    client_p = sub.add_parser(
        "client", help="talk to a running compile server"
    )
    client_p.add_argument("--socket", default=None,
                          help="unix socket path of the server")
    client_p.add_argument("--host", default=None, help="server TCP host")
    client_p.add_argument("--port", type=int, default=None, help="server TCP port")
    client_p.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="wait up to SECONDS for the server to answer health first",
    )
    client_p.add_argument("--timeout", type=float, default=600.0,
                          help="socket timeout in seconds")
    client_sub = client_p.add_subparsers(dest="client_command", required=True)
    for verb in ("compile", "tune"):
        vp = client_sub.add_parser(verb)
        vp.add_argument("workload")
        vp.add_argument("--size", type=int, default=None)
        vp.add_argument("--target", choices=["cpu", "gpu", "npu"],
                        default="cpu")
        vp.add_argument("--startup", default="smartfuse")
        if verb == "compile":
            vp.add_argument("--tile", type=int, nargs="+", default=None)
            vp.add_argument(
                "--trace", nargs="?", const="stitched-trace.json",
                default=None, metavar="OUT.json",
                help="trace the request end to end and write one stitched "
                "Perfetto-loadable file (client + daemon + store lanes)",
            )
        else:
            vp.add_argument("--threads", type=int, default=None)
            vp.add_argument("--candidates", type=int, nargs="+", default=None)
    part_cp = client_sub.add_parser("partition")
    part_cp.add_argument("workload")
    part_cp.add_argument("--size", type=int, default=None)
    part_cp.add_argument("--targets", default="cpu,gpu,npu",
                         help="comma-separated target set (default cpu,gpu,npu)")
    part_cp.add_argument("--startup", default="smartfuse")
    stats_cp = client_sub.add_parser("stats")
    stats_cp.add_argument(
        "--json", action="store_true",
        help="emit the raw repro-metrics/1 snapshot",
    )
    stats_cp.add_argument(
        "--watch", action="store_true",
        help="poll the server and print metric deltas between polls",
    )
    stats_cp.add_argument("--interval", type=float, default=2.0,
                          help="`--watch` poll period in seconds")
    stats_cp.add_argument("--count", type=int, default=None,
                          help="`--watch`: stop after N polls")
    client_sub.add_parser("health")
    client_sub.add_parser("shutdown")
    client_p.set_defaults(fn=cmd_client)

    for name, fn in (
        ("optimize", cmd_optimize),
        ("code", cmd_code),
        ("time", cmd_time),
        ("tune", cmd_tune),
        ("trace", cmd_trace),
        ("profile", cmd_profile),
    ):
        p = sub.add_parser(name)
        if name == "trace":
            p.add_argument("workload", nargs="?", default=None)
        else:
            p.add_argument("workload")
        p.add_argument("--size", type=int, default=None)
        p.add_argument("--tile", type=int, nargs="+", default=None)
        p.add_argument("--target", choices=["cpu", "gpu", "npu"], default="cpu")
        if name == "optimize":
            p.add_argument("--tree", action="store_true", help="print the schedule tree")
            p.add_argument(
                "--stats",
                action="store_true",
                help="print per-pass timings, counters and cache hit/miss counts",
            )
            p.add_argument(
                "--trace",
                metavar="PATH",
                default=None,
                help="also record a hierarchical trace and write it to PATH",
            )
        if name == "trace":
            p.add_argument(
                "-o", "--output", default="trace.json",
                help="output file (default trace.json)",
            )
            p.add_argument(
                "--format",
                choices=["chrome", "jsonl"],
                default="chrome",
                help="chrome: Perfetto-loadable trace-event JSON; "
                "jsonl: one structured event per line",
            )
            p.add_argument(
                "--request", default=None, metavar="TRACE_ID",
                help="instead of compiling: stitch one distributed "
                "request's spans out of event logs (needs --log)",
            )
            p.add_argument(
                "--log", action="append", default=None, metavar="PATH",
                help="event-log JSONL file(s) to search for --request "
                "(repeatable; daemon and store logs alike)",
            )
        if name == "profile":
            p.add_argument("--top", type=int, default=8,
                           help="children shown per level")
            p.add_argument("--depth", type=int, default=6,
                           help="maximum tree depth shown")
            p.add_argument(
                "--critical-path", action="store_true",
                help="partition the workload, execute it, and print the "
                "measured vs. modeled critical path",
            )
            p.add_argument(
                "--targets", default="cpu,gpu,npu",
                help="`--critical-path`: comma-separated target set "
                "(default cpu,gpu,npu)",
            )
        if name in ("time", "tune"):
            p.add_argument("--threads", type=int, default=32)
        if name == "tune":
            p.add_argument("--candidates", type=int, nargs="+", default=None)
            p.add_argument(
                "--jobs",
                type=int,
                default=None,
                help="evaluate candidates in parallel over N workers",
            )
            p.add_argument(
                "--search", choices=["exhaustive", "pruned"],
                default="exhaustive",
                help="pruned: rank the grid with the learned model and "
                "exactly evaluate only the top-k",
            )
            p.add_argument(
                "--model", default=None,
                help="ranking model pickle for --search pruned "
                "(default $REPRO_AUTOTUNE_MODEL or the cache-dir model)",
            )
            p.add_argument("--top-k", type=int, default=None,
                           help="candidates to evaluate exactly when pruned")
            p.add_argument(
                "--collect", nargs="?", const="", default=None,
                metavar="PATH",
                help="append evaluated candidates to the dataset "
                "(bare --collect uses the default store)",
            )
        if name in ("optimize", "tune"):
            p.add_argument(
                "--no-cache",
                action="store_true",
                help="bypass the compile cache",
            )
        p.set_defaults(fn=fn)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
