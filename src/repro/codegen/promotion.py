"""Aggressive memory optimisation: promotion of intermediates (Section V-B).

Values produced by an intermediate computation space fused into a tile are
only used within that tile, so they can live in a small scratchpad (CPU),
shared memory (GPU) or a unified buffer (NPU) and be discarded when the
tile completes.  This module computes, per fusion cluster, the per-tile
buffer each promoted tensor needs: its bounding box (PPCG's rectangular
over-approximation of possibly non-rectangular footprints) evaluated at a
representative interior tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import OptimizeResult, TILE_TUPLE, tile_footprint
from ..ir import Program
from ..scheduler import FusionGroup


@dataclass
class PromotedBuffer:
    """One tensor's per-tile scratch buffer within a fusion cluster."""

    tensor: str
    box_shape: Tuple[int, ...]     # rectangular over-approximated extent
    exact_elems: int               # exact footprint size (integer points)

    @property
    def box_elems(self) -> int:
        total = 1
        for e in self.box_shape:
            total *= e
        return total

    @property
    def over_approximation(self) -> float:
        """Box size relative to the exact footprint (>= 1.0)."""
        if self.exact_elems == 0:
            return 1.0
        return self.box_elems / self.exact_elems


def representative_tile_origin(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence[int],
    tile_dims: Sequence[str],
    params: Mapping[str, int],
) -> Dict[str, int]:
    """An interior tile origin: aligned, near the middle of the band."""
    origin: Dict[str, int] = {}
    # Bound each band row over the group's first statement's domain.
    stmt = program.statement(group.statements[0])
    dom = stmt.domain.fix_params(params)
    box = dom.bounding_box()
    for d, (tdim, size) in enumerate(zip(tile_dims, tile_sizes)):
        row = group.rows[stmt.name][d]
        lo = hi = row.const
        for sym, c in row.coeffs.items():
            slo, shi = box.get(sym, (0, 0))
            if slo is None or shi is None:
                raise ValueError(f"unbounded row {row} in group {group.name}")
            lo += c * (slo if c > 0 else shi)
            hi += c * (shi if c > 0 else slo)
        mid = (lo + hi) // 2
        aligned = (mid // size) * size
        aligned = max((lo // size) * size, min(aligned, (hi // size) * size))
        origin[tdim] = aligned
    return origin


def promoted_buffers(
    result: OptimizeResult, params: Optional[Mapping[str, int]] = None
) -> Dict[str, List[PromotedBuffer]]:
    """Per-cluster promoted buffers, keyed by the live-out group's name.

    A tensor is promoted when it is produced by a fused (extension) space
    and consumed inside the same cluster's tiles.
    """
    from ..service import instrument

    with instrument.span("codegen.promotion"):
        out = _promoted_buffers(result, params)
        instrument.annotate(
            clusters=len(out), buffers=sum(len(b) for b in out.values())
        )
        return out


def _promoted_buffers(
    result: OptimizeResult, params: Optional[Mapping[str, int]] = None
) -> Dict[str, List[PromotedBuffer]]:
    program = result.program
    params = dict(program.params, **(params or {}))
    out: Dict[str, List[PromotedBuffer]] = {}
    for entry in result.mixed.tiling_entries():
        exts = result.mixed.extensions_of(entry.group)
        if not entry.is_tiled or not exts:
            continue
        fused_tensors = sorted(
            {
                program.statement(s).tensor_written()
                for e in exts
                for s in e.group.statements
            }
        )
        fp = tile_footprint(
            program, entry.group, entry.tile_sizes, fused_tensors, entry.tile_dims
        )
        # Fused producers may feed each other; include footprints seen from
        # the producer side too (reads of fused statements).
        buffers: List[PromotedBuffer] = []
        origin = representative_tile_origin(
            program, entry.group, entry.tile_sizes, entry.tile_dims, params
        )
        for tensor in fused_tensors:
            m = fp.get((TILE_TUPLE, tensor))
            if m is None:
                # Produced and consumed only among the fused spaces; size it
                # by the producer's extension instances instead.
                buffers.append(
                    _buffer_from_extension(program, exts, tensor, origin, params)
                )
                continue
            image = m.fix_params(params).image_of_point(origin)
            box = image.bounding_box()
            shape = tuple(
                (hi - lo + 1) if lo is not None and hi is not None else 0
                for lo, hi in box.values()
            )
            buffers.append(
                PromotedBuffer(tensor, shape, image.count_points())
            )
        out[entry.group.name] = buffers
    return out


def _buffer_from_extension(
    program: Program, exts, tensor: str, origin, params
) -> PromotedBuffer:
    for e in exts:
        for s in e.group.statements:
            stmt = program.statement(s)
            if stmt.tensor_written() != tensor:
                continue
            m = e.relation.get((TILE_TUPLE, s))
            if m is None:
                continue
            inst = m.fix_params(params).image_of_point(origin)
            elems = inst.count_points()
            writes = stmt.write_relation().fix_params(params)
            touched = writes.apply_to_set(inst)
            box = touched.bounding_box()
            shape = tuple(
                (hi - lo + 1) if lo is not None and hi is not None else 0
                for lo, hi in box.values()
            )
            return PromotedBuffer(tensor, shape, touched.count_points())
    return PromotedBuffer(tensor, (0,), 0)


def total_scratch_bytes(
    buffers: Sequence[PromotedBuffer], itemsize: int = 8
) -> int:
    return sum(b.box_elems for b in buffers) * itemsize


@dataclass
class StorageReduction:
    """How much intermediate storage post-tiling fusion eliminates."""

    tensor: str
    full_bytes: int          # the unfused allocation (whole tensor)
    per_tile_bytes: int      # the fused per-tile scratch buffer

    @property
    def factor(self) -> float:
        return self.full_bytes / max(self.per_tile_bytes, 1)


def storage_reduction(
    result: OptimizeResult, params: Optional[Mapping[str, int]] = None
) -> List[StorageReduction]:
    """Per promoted tensor: full-buffer bytes vs. per-tile scratch bytes.

    This quantifies the paper's "enabling storage reduction and reuse":
    without post-tiling fusion every intermediate needs its whole tensor
    in memory; fused, it needs one tile footprint per running tile.
    """
    program = result.program
    params = dict(program.params, **(params or {}))
    out: List[StorageReduction] = []
    for buffers in promoted_buffers(result, params).values():
        for b in buffers:
            full = program.tensors[b.tensor].size_elems(params) * 8
            out.append(StorageReduction(b.tensor, full, b.box_elems * 8))
    return out
