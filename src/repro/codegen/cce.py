"""CCE-style lowering for the DaVinci architecture (Section V-A).

The akg integration lowers a fused operator pair onto the Ascend 910 by
assigning every tensor a position in the on-chip memory hierarchy of
Fig. 7 (L1 buffer, the cube unit's L0A/L0B/L0C, the vector unit's Unified
Buffer) and emitting per-tile DMA + compute instructions.  This module
reproduces that lowering for the programs ``repro.core.optimize`` emits
with ``target="npu"``:

* reduction statements whose right-hand side is a product feed the **Cube
  unit**: their two operands are staged ``GM -> L1 -> L0A/L0B`` and the
  accumulator lives in **L0C**;
* all other statements run on the **Vector unit** over the **UB**;
* a tensor produced by the cube and consumed by vector ops moves
  ``L0C -> UB`` *on chip* when the pair is fused — the paper's Table III
  effect — and spills through global memory when it is not;
* buffer capacities are checked against the :class:`NPUSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..core import OptimizeResult
from ..ir import BinOp, Program, REDUCE, Statement
from ..machine.npu import DEFAULT_NPU, NPUSpec
from .promotion import promoted_buffers

GM = "GM"
L1 = "L1"
L0A = "L0A"
L0B = "L0B"
L0C = "L0C"
UB = "UB"

MEMORIES = (GM, L1, L0A, L0B, L0C, UB)


class CCELoweringError(RuntimeError):
    pass


@dataclass
class BufferAssignment:
    tensor: str
    memory: str
    bytes_per_tile: int
    role: str  # "cube-in-a", "cube-in-b", "cube-acc", "vector", "output"


@dataclass
class CCEInstruction:
    unit: str       # "MTE" (dma), "CUBE", "VECTOR"
    text: str


@dataclass
class CCEKernel:
    name: str
    buffers: List[BufferAssignment]
    instructions: List[CCEInstruction]
    onchip_forward: List[str]  # tensors forwarded L0C -> UB without GM

    def render(self) -> str:
        lines = [f"// CCE kernel {self.name} (DaVinci)"]
        for b in self.buffers:
            lines.append(
                f"//   {b.tensor:12s} -> {b.memory:3s} "
                f"({b.bytes_per_tile} B/tile, {b.role})"
            )
        for ins in self.instructions:
            lines.append(f"  [{ins.unit:6s}] {ins.text}")
        return "\n".join(lines)


def _is_cube_statement(stmt: Statement) -> bool:
    """A reduction whose rhs multiplies two tensor operands (conv/matmul)."""
    if stmt.kind != REDUCE:
        return False
    rhs = stmt.rhs
    return isinstance(rhs, BinOp) and rhs.op == "*" and all(
        any(True for _ in side.loads()) for side in (rhs.lhs, rhs.rhs)
    )


def lower_to_cce(
    result: OptimizeResult,
    spec: NPUSpec = DEFAULT_NPU,
    params: Optional[Mapping[str, int]] = None,
) -> List[CCEKernel]:
    """Lower each fusion cluster of an NPU-optimized result to pseudo-CCE."""
    program = result.program
    params = dict(program.params, **(params or {}))
    buffers_by_cluster = promoted_buffers(result, params)
    kernels: List[CCEKernel] = []
    for ki, entry in enumerate(result.mixed.tiling_entries()):
        group = entry.group
        exts = result.mixed.extensions_of(group)
        cluster_stmts = [
            program.statement(s)
            for e in exts
            for s in sorted(e.group.statements, key=program.statement_index)
        ] + [
            program.statement(s)
            for s in sorted(group.statements, key=program.statement_index)
        ]
        kernels.append(
            _lower_cluster(
                f"cce_kernel{ki}",
                program,
                cluster_stmts,
                buffers_by_cluster.get(group.name, []),
                entry.tile_sizes,
                spec,
                params,
            )
        )
    return kernels


def _lower_cluster(
    name: str,
    program: Program,
    stmts: Sequence[Statement],
    promoted,
    tile_sizes,
    spec: NPUSpec,
    params,
) -> CCEKernel:
    promoted_bytes = {b.tensor: b.box_elems * 2 for b in promoted}  # fp16
    # Insertion-ordered (dict keys, statement order), not a set: the store
    # instructions emitted from it must not depend on PYTHONHASHSEED.
    written = dict.fromkeys(s.tensor_written() for s in stmts)

    assignments: Dict[str, BufferAssignment] = {}
    instructions: List[CCEInstruction] = []
    onchip: List[str] = []

    def tile_bytes(tensor: str) -> int:
        if tensor in promoted_bytes:
            return promoted_bytes[tensor]
        t = program.tensors[tensor]
        if tile_sizes:
            total = 1
            shape = t.concrete_shape(params)
            for d, extent in enumerate(shape):
                total *= min(extent, tile_sizes[d] if d < len(tile_sizes) else extent)
            return total * 2
        return t.size_bytes(params) // 4  # fp16 vs fp64 storage

    cube_written: set = set()
    for stmt in stmts:
        if _is_cube_statement(stmt):
            rhs = stmt.rhs
            a_loads = list(rhs.lhs.loads())
            b_loads = list(rhs.rhs.loads())
            a, b = a_loads[0].tensor, b_loads[0].tensor
            acc = stmt.tensor_written()
            for tensor, mem, role in (
                (a, L0A, "cube-in-a"),
                (b, L0B, "cube-in-b"),
                (acc, L0C, "cube-acc"),
            ):
                # The accumulator wins L0C even if an earlier init
                # statement provisionally placed it on the UB.
                assignments[tensor] = BufferAssignment(
                    tensor, mem, tile_bytes(tensor), role
                )
            instructions.append(
                CCEInstruction("MTE", f"load {a}: GM -> L1 -> L0A")
            )
            instructions.append(
                CCEInstruction("MTE", f"load {b}: GM -> L1 -> L0B")
            )
            instructions.append(
                CCEInstruction(
                    "CUBE", f"mmad {acc} += {a} * {b}   // accumulate in L0C"
                )
            )
            cube_written.add(acc)
        else:
            out = stmt.tensor_written()
            reads = [l.tensor for l in stmt.read_loads()]
            for tensor in reads:
                if tensor in cube_written:
                    assignments.setdefault(
                        out, BufferAssignment(out, UB, tile_bytes(out), "vector")
                    )
                    if tensor not in onchip:
                        instructions.append(
                            CCEInstruction(
                                "MTE", f"move {tensor}: L0C -> UB   // fused, on chip"
                            )
                        )
                        onchip.append(tensor)
                elif tensor not in assignments and tensor not in written:
                    assignments[tensor] = BufferAssignment(
                        tensor, UB, tile_bytes(tensor), "vector"
                    )
                    instructions.append(
                        CCEInstruction("MTE", f"load {tensor}: GM -> UB")
                    )
            assignments.setdefault(
                out, BufferAssignment(out, UB, tile_bytes(out), "vector")
            )
            instructions.append(
                CCEInstruction("VECTOR", f"{stmt.name}: {stmt.lhs} = {stmt.rhs}")
            )

    # Live-out tensors leave the chip.
    for tensor in written:
        if tensor in program.liveout:
            asn = assignments.get(tensor)
            if asn is not None:
                asn.role = "output"
            instructions.append(
                CCEInstruction("MTE", f"store {tensor}: {asn.memory if asn else UB} -> GM")
            )

    _check_capacities(assignments, spec)
    return CCEKernel(name, list(assignments.values()), instructions, onchip)


def _check_capacities(
    assignments: Mapping[str, BufferAssignment], spec: NPUSpec
) -> None:
    usage: Dict[str, int] = {m: 0 for m in MEMORIES}
    for asn in assignments.values():
        usage[asn.memory] += asn.bytes_per_tile
    if usage[UB] > spec.ub_bytes:
        raise CCELoweringError(
            f"unified buffer oversubscribed: {usage[UB]} > {spec.ub_bytes} "
            "(reduce the tile size)"
        )
    if usage[L1] > spec.l1_bytes:
        raise CCELoweringError(
            f"L1 oversubscribed: {usage[L1]} > {spec.l1_bytes}"
        )
