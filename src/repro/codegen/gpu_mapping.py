"""GPU mapping (Section V): kernel/thread marks and synchronisation.

PPCG models the CUDA mapping with mark nodes: the outermost parallel tile
band of each fused cluster is marked ``"kernel"`` (its dims map to the
block grid), the point band and every extension subtree band are marked
``"thread"`` (their dims map to threads), and a ``"sync"`` mark between an
extension's producer filter and the consumer subtree becomes a
``__syncthreads()`` — the fused producer fills shared memory that all
threads of the block then read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core import OptimizeResult
from ..schedule import (
    BandNode,
    ExtensionNode,
    FilterNode,
    MarkNode,
    Node,
    SequenceNode,
    top_level_filters,
)

KERNEL = "kernel"
THREAD = "thread"
SYNC = "sync"


@dataclass
class KernelInfo:
    """One launched kernel: its grid/block dims and shared buffers."""

    name: str
    statements: Tuple[str, ...]
    grid_dims: Tuple[str, ...]
    block_dims: Tuple[str, ...]
    shared_tensors: Tuple[str, ...]


def map_to_gpu(result: OptimizeResult) -> List[KernelInfo]:
    """Annotate the result's tree with GPU marks; returns kernel metadata.

    The tree is modified in place (idempotent: existing marks are reused).
    """
    from ..service import instrument
    from .promotion import promoted_buffers

    with instrument.span("codegen.gpu_mapping"):
        buffers = promoted_buffers(result)
        kernels = _map_kernels(result, buffers)
        instrument.annotate(kernels=len(kernels))
        return kernels


def _map_kernels(result: OptimizeResult, buffers) -> List[KernelInfo]:
    kernels: List[KernelInfo] = []
    for ki, filt in enumerate(top_level_filters(result.tree)):
        band = _first_band(filt)
        if band is None:
            continue
        name = f"kernel{ki}"
        _ensure_mark(filt, KERNEL + f":{name}")
        grid = tuple(band.dim_names[: max(1, band.n_parallel() or 1)])
        block_dims: Tuple[str, ...] = ()
        if band.tile_sizes is not None:
            point = band.child
            ext = None
            if isinstance(point, ExtensionNode):
                ext = point
                point = _subtree_point_band(point)
            if isinstance(point, BandNode):
                block_dims = tuple(point.dim_names[:2])
                _mark_thread_bands(band)
            if ext is not None:
                _mark_syncs(ext)
        cluster_key = _cluster_key(result, filt)
        shared = tuple(
            b.tensor for b in buffers.get(cluster_key, [])
        )
        kernels.append(
            KernelInfo(
                name=name,
                statements=tuple(filt.statements),
                grid_dims=grid,
                block_dims=block_dims,
                shared_tensors=shared,
            )
        )
    return kernels


def _cluster_key(result: OptimizeResult, filt: FilterNode) -> str:
    for entry in result.mixed.tiling_entries():
        if set(entry.group.statements) <= set(filt.statements):
            return entry.group.name
    return ""


def _first_band(node: Node) -> Optional[BandNode]:
    for n in node.walk():
        if isinstance(n, BandNode):
            return n
    return None


def _subtree_point_band(ext: ExtensionNode) -> Optional[Node]:
    """The original (live-out) point band below an extension's sequence."""
    seq = ext.child
    if isinstance(seq, SequenceNode) and seq.filters:
        return _first_band(seq.filters[-1])
    return None


def _ensure_mark(node: Node, mark: str) -> None:
    if isinstance(node.child, MarkNode) and node.child.mark == mark:
        return
    node.child = MarkNode(mark, node.child)


def _mark_thread_bands(tile_band: BandNode) -> None:
    """Wrap every band directly below the tile band in a thread mark."""
    def visit(node: Optional[Node]) -> None:
        if node is None:
            return
        for i, child in enumerate(list(node.children)):
            if isinstance(child, BandNode):
                mark = MarkNode(THREAD, child)
                if isinstance(node, SequenceNode):
                    # children of sequences are filters; bands hang below
                    visit(child)
                    continue
                node.child = mark
                continue
            visit(child)

    # Walk filters/extensions below the tile band; wrap first bands.
    for n in tile_band.walk():
        if isinstance(n, FilterNode) and isinstance(n.child, BandNode):
            n.child = MarkNode(THREAD, n.child)


def _mark_syncs(ext: ExtensionNode) -> None:
    """Insert a sync mark after each extension producer filter."""
    seq = ext.child
    if not isinstance(seq, SequenceNode):
        return
    for filt in seq.filters[:-1]:
        if not (isinstance(filt.child, MarkNode) and filt.child.mark == SYNC):
            filt.child = MarkNode(SYNC, filt.child)
