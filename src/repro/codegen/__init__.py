"""``repro.codegen`` — executable and printing backends for schedule trees."""

from .interp import (
    ExecutionError,
    Stream,
    build_streams,
    execute_naive,
    execute_tree,
    make_store,
    run_program,
)
from .printer import print_tree, render_linexpr
from .promotion import PromotedBuffer, promoted_buffers, total_scratch_bytes

__all__ = [
    "ExecutionError",
    "PromotedBuffer",
    "Stream",
    "build_streams",
    "execute_naive",
    "execute_tree",
    "make_store",
    "print_tree",
    "promoted_buffers",
    "render_linexpr",
    "run_program",
    "total_scratch_bytes",
]
