"""A *compilable* OpenMP C backend.

Where :mod:`repro.codegen.printer` renders display code, this backend emits
a complete, compiling C program from a schedule tree and (when a C
compiler is available) builds and runs it, exchanging tensors with Python
through raw ``float64`` files.  Exactness is guaranteed by construction:

* loop bounds are the Fourier–Motzkin union bounds of the member
  statements (possibly over-approximate);
* every statement instance is guarded by its full constraint system, so
  over-approximated loops simply skip non-instances;
* statement dimensions are recovered from the band pin equalities.

The round trip (generate → gcc -fopenmp → run → compare with the
interpreter) is exercised by the test suite, making this the repository's
"the generated code really runs" proof.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir import Affine, BinOp, Call, Const, Expr, Load, Program, REDUCE, TensorStore
from ..presburger import Constraint, LinExpr
from ..schedule import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    MarkNode,
    Node,
    SequenceNode,
    SKIPPED,
)
from .printer import _bound_exprs

HEADER = """\
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
#ifdef _OPENMP
#include <omp.h>
#endif

#define ceild(n, d) (((n) >= 0) ? (((n) + (d) - 1) / (d)) : -((-(n)) / (d)))
#define floord(n, d) (((n) >= 0) ? ((n) / (d)) : -(((-(n)) + (d) - 1) / (d)))
#define max(a, b) ((a) > (b) ? (a) : (b))
#define min(a, b) ((a) < (b) ? (a) : (b))

static double relu_fn(double x) { return x > 0 ? x : 0.0; }
static double quant_fn(double x) { return (double)((long)(x * 8.0)) / 8.0; }
static double clamp01_fn(double x) { return x < 0 ? 0 : (x > 1 ? 1 : x); }
static double safe_log(double x) { return x > 0 ? log(x) : 0.0; }
static double safe_sqrt(double x) { return x > 0 ? sqrt(x) : 0.0; }
static double sigmoid_fn(double x) { return 1.0 / (1.0 + exp(-x)); }
"""

INTRINSIC_C = {
    "relu": "relu_fn",
    "quant": "quant_fn",
    "exp": "exp",
    "log": "safe_log",
    "sqrt": "safe_sqrt",
    "abs": "fabs",
    "sigmoid": "sigmoid_fn",
    "clamp01": "clamp01_fn",
}


class CBackendError(RuntimeError):
    pass


def render_expr_c(expr: Expr, env: Mapping[str, str], program: Program) -> str:
    """Render a statement RHS as a C expression.

    ``env`` maps iterator names to C expressions (loop vars or solved
    affine forms).
    """
    if isinstance(expr, Const):
        return repr(float(expr.value))
    if isinstance(expr, Affine):
        return _linexpr_c(expr.expr, env)
    if isinstance(expr, Load):
        idx = "".join(f"[{_linexpr_c(i, env)}]" for i in expr.indices)
        return f"{expr.tensor}{idx}"
    if isinstance(expr, BinOp):
        lhs = render_expr_c(expr.lhs, env, program)
        rhs = render_expr_c(expr.rhs, env, program)
        if expr.op in ("min", "max"):
            return f"f{expr.op}({lhs}, {rhs})"
        return f"({lhs} {expr.op} {rhs})"
    if isinstance(expr, Call):
        fn = INTRINSIC_C.get(expr.fn)
        if fn is None:
            raise CBackendError(f"no C lowering for intrinsic {expr.fn!r}")
        args = ", ".join(render_expr_c(a, env, program) for a in expr.args)
        return f"{fn}({args})"
    raise CBackendError(f"cannot lower {type(expr).__name__} to C")


def _linexpr_c(e: LinExpr, env: Mapping[str, str]) -> str:
    parts: List[str] = []
    for sym in sorted(e.coeffs):
        c = e.coeffs[sym]
        ref = env.get(sym, sym)
        term = f"({ref})" if not ref.isidentifier() else ref
        if c == 1:
            parts.append(f"+ {term}")
        elif c == -1:
            parts.append(f"- {term}")
        elif c > 0:
            parts.append(f"+ {c} * {term}")
        else:
            parts.append(f"- {-c} * {term}")
    if e.const or not parts:
        parts.append(f"+ {e.const}" if e.const >= 0 else f"- {-e.const}")
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else f"-{text[2:]}" if text.startswith("- ") else text


def generate_c(
    tree: DomainNode,
    program: Program,
    params: Optional[Mapping[str, int]] = None,
) -> str:
    """A complete C program implementing the tree's schedule.

    Tensors are read from ``<name>.bin`` (row-major float64) and live-out
    tensors are written back to ``<name>.out.bin``.
    """
    from ..service import instrument

    with instrument.span("codegen.generate_c"):
        return _generate_c(tree, program, params)


def _generate_c(
    tree: DomainNode,
    program: Program,
    params: Optional[Mapping[str, int]] = None,
) -> str:
    params = dict(program.params, **(params or {}))
    lines: List[str] = [HEADER]

    # Tensor declarations (static arrays; sizes are concrete).
    shapes: Dict[str, Tuple[int, ...]] = {
        name: t.concrete_shape(params) for name, t in program.tensors.items()
    }
    for name, shape in shapes.items():
        dims = "".join(f"[{e}]" for e in shape)
        lines.append(f"static double {name}{dims};")
    lines.append("")
    lines.append("static void read_tensor(const char *path, double *buf, long n) {")
    lines.append('  FILE *f = fopen(path, "rb");')
    lines.append('  if (!f) { fprintf(stderr, "missing %s\\n", path); exit(2); }')
    lines.append("  if (fread(buf, sizeof(double), n, f) != (size_t)n) exit(3);")
    lines.append("  fclose(f);")
    lines.append("}")
    lines.append("static void write_tensor(const char *path, double *buf, long n) {")
    lines.append('  FILE *f = fopen(path, "wb");')
    lines.append("  fwrite(buf, sizeof(double), n, f);")
    lines.append("  fclose(f);")
    lines.append("}")
    lines.append("")
    lines.append("int main(void) {")

    for name, shape in shapes.items():
        n = int(np.prod(shape))
        lines.append(
            f'  read_tensor("{name}.bin", (double *){name}, {n}L);'
        )
    lines.append("")

    body = _CBody(program, params)
    active = {
        s.name: [
            [c.substitute(params) for c in p.constraints]
            for p in s.domain.fix_params(params).pieces
        ]
        for s in program.statements
    }
    body.walk(tree.child, active, [], 1)
    lines.extend(body.lines)

    lines.append("")
    for t in program.liveout:
        n = int(np.prod(shapes[t]))
        lines.append(
            f'  write_tensor("{t}.out.bin", (double *){t}, {n}L);'
        )
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


class _CBody:
    """Tree walker emitting exact guarded loop nests."""

    def __init__(self, program: Program, params: Mapping[str, int]):
        self.program = program
        self.params = dict(params)
        self.lines: List[str] = []
        self.counter = 0
        self.loop_vars: List[str] = []
        # band dim name -> the C loop variable that carries it (extension
        # relations refer to enclosing bands by their dim names)
        self.band_map: Dict[str, str] = {}

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("  " * depth + text)

    def fresh(self, base: str) -> str:
        self.counter += 1
        return f"c{self.counter}_{_sanitize(base)}"

    # -- walking -----------------------------------------------------------

    def walk(self, node: Optional[Node], active, path: List[str], depth: int) -> None:
        if node is None or isinstance(node, LeafNode):
            for sname, disjuncts in active.items():
                for cons in disjuncts:
                    self._emit_statement(sname, cons, depth)
            return
        if isinstance(node, MarkNode):
            if node.mark == SKIPPED:
                return
            self.walk(node.child, active, path, depth)
            return
        if isinstance(node, FilterNode):
            sub = {s: c for s, c in active.items() if s in node.statements}
            if sub:
                self.walk(node.child, sub, path, depth)
            return
        if isinstance(node, SequenceNode):
            for filt in node.filters:
                self.walk(filt, active, path, depth)
            return
        if isinstance(node, ExtensionNode):
            new_active = dict(active)
            for (_, sname), m in node.extension.maps.items():
                stmt = self.program.statement(sname)
                disjuncts = []
                for bm in m.fix_params(self.params).pieces:
                    rename = dict(zip(bm.space.out_dims, stmt.dims))
                    for in_dim in bm.space.in_dims:
                        if in_dim not in self.band_map:
                            raise CBackendError(
                                f"extension tile dim {in_dim!r} is not an "
                                "enclosing band dimension"
                            )
                        rename[in_dim] = self.band_map[in_dim]
                    disjuncts.append([c.rename(rename) for c in bm.constraints])
                new_active[sname] = disjuncts
            self.walk(node.child, new_active, path, depth)
            return
        if isinstance(node, BandNode):
            self._emit_band(node, active, path, depth)
            return
        raise CBackendError(f"unexpected node {type(node).__name__}")

    def _emit_band(self, band: BandNode, active, path, depth) -> None:
        new_active = {s: [list(c) for c in d] for s, d in active.items()}
        opened: List[str] = []
        d0 = depth
        saved_band_map = dict(self.band_map)
        for d in range(band.n_dims):
            var = self.fresh(band.dim_names[d])
            self.band_map[band.dim_names[d]] = var
            size = None if band.tile_sizes is None else band.tile_sizes[d]
            lowers: List[str] = []
            uppers: List[str] = []
            for sname, disjuncts in new_active.items():
                if sname not in band.schedules:
                    continue
                row = band.schedules[sname][d]
                for cons in disjuncts:
                    eq = Constraint.eq(LinExpr.var(var) - row)
                    lo, hi = _bound_exprs(cons + [eq], var, self.loop_vars)
                    lowers.extend(lo)
                    uppers.extend(hi)
            lowers = list(dict.fromkeys(lowers))
            uppers = list(dict.fromkeys(uppers))
            if not lowers or not uppers:
                raise CBackendError(
                    f"unbounded band dimension {band.dim_names[d]}"
                )
            lo_text = _combine_c(lowers, "max")
            hi_text = _combine_c(uppers, "min")
            init = lo_text
            if size is not None:
                # align tile origins to the global grid
                init = f"floord({lo_text}, {size}) * {size}"
            step = f" += {size}" if size else "++"
            pragma = None
            if band.coincident[d] and not self.loop_vars:
                pragma = "#pragma omp parallel for"
            if pragma:
                self.emit(d0, pragma)
            self.emit(
                d0,
                f"for (long {var} = {init}; {var} <= {hi_text}; {var}{step}) {{",
            )
            self.loop_vars.append(var)
            opened.append(var)
            d0 += 1
            kv = LinExpr.var(var)
            for sname, disjuncts in new_active.items():
                if sname not in band.schedules:
                    continue
                row = band.schedules[sname][d]
                for cons in disjuncts:
                    if size is None:
                        cons.append(Constraint.eq(kv - row))
                    else:
                        cons.append(Constraint.le(kv, row))
                        cons.append(Constraint.lt(row, kv + size))
        self.walk(band.child, new_active, path, d0)
        self.band_map = saved_band_map
        for var in reversed(opened):
            self.loop_vars.pop()
            d0 -= 1
            self.emit(d0, "}")

    def _emit_statement(self, sname: str, cons: Sequence[Constraint], depth: int) -> None:
        stmt = self.program.statement(sname)
        solved: Dict[str, LinExpr] = {}
        # Iteratively solve pin equalities (a dim may be defined via another
        # solved dim, e.g. upsample's h through 2h + dh == k).
        remaining = list(cons)
        changed = True
        while changed:
            changed = False
            for c in remaining:
                if c.kind != "==":
                    continue
                unsolved = [
                    s
                    for s in c.expr.symbols()
                    if s in stmt.dims and s not in solved
                ]
                if len(unsolved) != 1:
                    continue
                dim = unsolved[0]
                a = c.coeff(dim)
                if abs(a) != 1:
                    continue
                rest = c.expr - LinExpr({dim: a})
                rest = rest.substitute(
                    {k: v for k, v in solved.items()}
                )
                solved[dim] = (-rest) if a == 1 else rest
                changed = True
        missing = [d for d in stmt.dims if d not in solved]
        if missing:
            raise CBackendError(
                f"cannot solve dims {missing} of {sname} from band equalities"
            )
        env = {d: _linexpr_c(e, {}) for d, e in solved.items()}
        guards: List[str] = []
        for c in cons:
            expr = c.expr.substitute(solved)
            if expr.is_constant():
                if (c.kind == "==" and expr.const != 0) or (
                    c.kind == ">=" and expr.const < 0
                ):
                    return  # statically infeasible piece
                continue
            text = _linexpr_c(expr, {})
            guards.append(f"({text}) {'==' if c.kind == '==' else '>='} 0")
        guard_text = " && ".join(dict.fromkeys(guards)) if guards else "1"
        lhs_idx = "".join(f"[{_linexpr_c(i.substitute(solved), {})}]" for i in stmt.lhs.indices)
        rhs = render_expr_c(stmt.rhs, env, self.program)
        op = "+=" if stmt.kind == REDUCE else "="
        self.emit(depth, f"if ({guard_text}) {stmt.lhs.tensor}{lhs_idx} {op} {rhs};")


def _combine_c(parts: List[str], fn: str) -> str:
    out = parts[0]
    for p in parts[1:]:
        out = f"{fn}({out}, {p})"
    return out


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


# ---------------------------------------------------------------------------
# compile & run


def compiler_available() -> bool:
    return shutil.which("gcc") is not None or shutil.which("cc") is not None


def compile_and_run(
    tree: DomainNode,
    program: Program,
    store: TensorStore,
    params: Optional[Mapping[str, int]] = None,
    keep_dir: Optional[str] = None,
    openmp: bool = True,
) -> Dict[str, np.ndarray]:
    """Generate, compile (gcc -O2 [-fopenmp]), execute, collect live-outs.

    ``store`` provides the input tensor contents; the returned dict maps
    live-out tensor names to the arrays the C program produced.  Tests
    pass ``openmp=False`` for strictly deterministic comparisons (halo
    re-writes of identical values are benign races under OpenMP).
    """
    params = dict(program.params, **(params or {}))
    source = generate_c(tree, program, params)
    cc = shutil.which("gcc") or shutil.which("cc")
    if cc is None:
        raise CBackendError("no C compiler available")
    workdir = keep_dir or tempfile.mkdtemp(prefix="repro_c_")
    os.makedirs(workdir, exist_ok=True)
    src_path = os.path.join(workdir, "kernel.c")
    with open(src_path, "w") as f:
        f.write(source)
    exe = os.path.join(workdir, "kernel")
    cmd = [cc, "-O2", src_path, "-o", exe, "-lm"]
    if openmp:
        cmd.insert(2, "-fopenmp")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise CBackendError(f"compilation failed:\n{proc.stderr}\n--- source ---\n{source}")
    for name in program.tensors:
        store[name].astype(np.float64).tofile(os.path.join(workdir, f"{name}.bin"))
    proc = subprocess.run([exe], cwd=workdir, capture_output=True, text=True)
    if proc.returncode != 0:
        raise CBackendError(f"execution failed ({proc.returncode}): {proc.stderr}")
    out: Dict[str, np.ndarray] = {}
    for t in program.liveout:
        shape = program.tensors[t].concrete_shape(params)
        out[t] = np.fromfile(
            os.path.join(workdir, f"{t}.out.bin"), dtype=np.float64
        ).reshape(shape)
    if keep_dir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return out
