"""Executable backend: interprets schedule trees over NumPy tensors.

The interpreter flattens the tree into per-statement *streams*.  A stream is
an augmented integer set over ``(key dims..., statement dims...)``:

* every band dimension along the statement's path contributes a key dim
  (constrained ``k == row`` for point bands, ``k <= row < k + T`` with
  ``k`` stepping over tile origins for tile bands);
* sequence nodes contribute constant key components;
* extension nodes contribute the extension relation's constraints, so an
  added statement's instances are exactly the per-tile images of relation
  (6), recomputation included.

Executing the program is then: enumerate every stream, tag each instance
with its key, sort, and run the statement bodies in key order.  This is
semantically the code PPCG would emit from the same tree — loops are just
an ordering device — and is what the correctness tests compare against the
naive program order.

Re-executed (overlapped) instances run against the same storage; the
supported workloads are out-of-place or idempotent per instance, which the
paper's overlapped tiling requires anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..ir import Program, REDUCE, Statement, TensorStore
from ..presburger import Constraint, LinExpr
from ..presburger.fm import bounds_for_symbol, eliminate_symbols
from ..schedule import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    MarkNode,
    Node,
    SequenceNode,
    SKIPPED,
)

KeyComponent = Tuple[str, object]  # ("const", int) or ("dim", aug_dim_name)

# Per-statement state while walking: a list of disjuncts, each a conjunction.
Disjuncts = List[List[Constraint]]


@dataclass
class Stream:
    """One statement's augmented instance set along one tree path."""

    stmt: Statement
    constraints: List[Constraint]
    key_template: List[KeyComponent]
    aug_dims: List[str]           # key dims, in template order
    steps: Dict[str, int]         # aug dim -> iteration step (tile size)

    def all_dims(self) -> List[str]:
        return self.aug_dims + list(self.stmt.dims)


class ExecutionError(RuntimeError):
    pass


def build_streams(
    tree: DomainNode, program: Program, params: Mapping[str, int]
) -> List[Stream]:
    streams: List[Stream] = []
    counter = [0]

    def fresh(name: str) -> str:
        counter[0] += 1
        return f"__k{counter[0]}_{name}"

    def visit(
        node: Optional[Node],
        active: Dict[str, Disjuncts],
        template: List[KeyComponent],
        aug: List[str],
        steps: Dict[str, int],
        band_dim_to_aug: Dict[str, str],
    ) -> None:
        if node is None or isinstance(node, LeafNode):
            for sname, disjuncts in active.items():
                for cons in disjuncts:
                    streams.append(
                        Stream(
                            program.statement(sname),
                            list(cons),
                            list(template),
                            list(aug),
                            dict(steps),
                        )
                    )
            return
        if isinstance(node, MarkNode):
            if node.mark == SKIPPED:
                return
            visit(node.child, active, template, aug, steps, band_dim_to_aug)
            return
        if isinstance(node, FilterNode):
            sub = {s: c for s, c in active.items() if s in node.statements}
            if sub:
                visit(node.child, sub, template, aug, steps, band_dim_to_aug)
            return
        if isinstance(node, SequenceNode):
            for i, filt in enumerate(node.filters):
                visit(
                    filt,
                    active,
                    template + [("const", i)],
                    aug,
                    steps,
                    band_dim_to_aug,
                )
            return
        if isinstance(node, BandNode):
            new_active = {s: [list(c) for c in d] for s, d in active.items()}
            new_template = list(template)
            new_aug = list(aug)
            new_steps = dict(steps)
            new_map = dict(band_dim_to_aug)
            for d in range(node.n_dims):
                k = fresh(node.dim_names[d])
                new_map[node.dim_names[d]] = k
                new_template.append(("dim", k))
                new_aug.append(k)
                size = None if node.tile_sizes is None else node.tile_sizes[d]
                if size is not None:
                    new_steps[k] = size
                kv = LinExpr.var(k)
                for sname, disjuncts in new_active.items():
                    if sname not in node.schedules:
                        continue
                    row = node.schedules[sname][d]
                    for cons in disjuncts:
                        if size is None:
                            cons.append(Constraint.eq(kv - row))
                        else:
                            cons.append(Constraint.le(kv, row))
                            cons.append(Constraint.lt(row, kv + size))
            visit(node.child, new_active, new_template, new_aug, new_steps, new_map)
            return
        if isinstance(node, ExtensionNode):
            new_active = {s: [list(c) for c in d] for s, d in active.items()}
            for (_, sname), m in node.extension.maps.items():
                stmt = program.statement(sname)
                disjuncts: Disjuncts = []
                for bm in m.fix_params(params).pieces:
                    rename = {}
                    for in_dim in bm.space.in_dims:
                        if in_dim not in band_dim_to_aug:
                            raise ExecutionError(
                                f"extension tile dim {in_dim!r} does not match "
                                f"any enclosing band dim ({list(band_dim_to_aug)})"
                            )
                        rename[in_dim] = band_dim_to_aug[in_dim]
                    rename.update(zip(bm.space.out_dims, stmt.dims))
                    disjuncts.append([c.rename(rename) for c in bm.constraints])
                new_active[sname] = disjuncts
            visit(node.child, new_active, template, aug, steps, band_dim_to_aug)
            return
        if isinstance(node, DomainNode):
            base: Dict[str, Disjuncts] = {}
            for s in node.domain.names():
                stmt = program.statement(s)
                dom = stmt.domain.fix_params(params)
                base[s] = [list(p.constraints) for p in dom.pieces]
            visit(node.child, base, template, aug, steps, band_dim_to_aug)
            return
        raise ExecutionError(f"unknown node type {type(node).__name__}")

    visit(tree, {}, [], [], {}, {})
    return streams


def _enumerate_stream(stream: Stream) -> Iterator[Tuple[tuple, Dict[str, int]]]:
    """Yield ``(key, env)`` for every instance of the stream, in lex order."""
    dims = stream.all_dims()
    cons = stream.constraints
    # Elimination tower: towers[i] involves dims[:i] only.
    towers: List[List[Constraint]] = [None] * (len(dims) + 1)  # type: ignore
    towers[len(dims)] = list(cons)
    for i in range(len(dims) - 1, -1, -1):
        towers[i] = eliminate_symbols(towers[i + 1], [dims[i]])
    for c in towers[0]:
        if c.is_trivially_false():
            return

    binding: Dict[str, int] = {}
    n_aug = len(stream.aug_dims)

    def key_of() -> tuple:
        out = []
        for kind, val in stream.key_template:
            if kind == "const":
                out.append(val)
            else:
                out.append(binding[val])
        return tuple(out)

    def walk(i: int) -> Iterator[Tuple[tuple, Dict[str, int]]]:
        if i == len(dims):
            if all(c.satisfied_by(binding) for c in cons):
                env = {d: binding[d] for d in stream.stmt.dims}
                yield key_of(), env
            return
        dim = dims[i]
        lo, hi, _ = bounds_for_symbol(towers[i + 1], dim, binding)
        if lo is None or hi is None:
            raise ExecutionError(
                f"unbounded dimension {dim} while executing {stream.stmt.name}"
            )
        step = stream.steps.get(dim, 1) if i < n_aug else 1
        if step != 1:
            lo = (lo // step) * step  # align tile origins to the global grid
        for val in range(lo, hi + 1, step):
            binding[dim] = val
            yield from walk(i + 1)
        binding.pop(dim, None)

    yield from walk(0)


def execute_tree(
    tree: DomainNode,
    program: Program,
    store: TensorStore,
    params: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Execute a schedule tree; returns per-statement executed-instance counts.

    Counts include recomputation (overlapped tiles), which tests use to
    verify the footprint arithmetic.
    """
    params = dict(program.params, **(params or {}))
    streams = build_streams(tree, program, params)
    events: List[Tuple[tuple, int, Statement, Dict[str, int]]] = []
    for si, stream in enumerate(streams):
        for key, env in _enumerate_stream(stream):
            events.append((key, si, stream.stmt, env))
    events.sort(key=lambda e: (e[0], e[1]))
    counts: Dict[str, int] = {}
    seen_at_key: set = set()
    for key, _si, stmt, env in events:
        # Overlapping extension pieces may cover an instance more than once
        # under the same tile; execute it once per schedule-key context
        # (matching what generated code with a unioned iteration set does).
        fingerprint = (key, stmt.name, tuple(env[d] for d in stmt.dims))
        if fingerprint in seen_at_key:
            continue
        seen_at_key.add(fingerprint)
        _run_instance(stmt, env, store)
        counts[stmt.name] = counts.get(stmt.name, 0) + 1
    return counts


def _run_instance(stmt: Statement, env: Mapping[str, int], store: TensorStore) -> None:
    value = stmt.rhs.evaluate(env, store)
    idx = tuple(e.eval(env) for e in stmt.lhs.indices)
    if stmt.kind == REDUCE:
        store.accumulate(stmt.lhs.tensor, idx, value)
    else:
        store.write(stmt.lhs.tensor, idx, value)


def execute_naive(
    program: Program,
    store: TensorStore,
    params: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Reference execution in original program order (the 'naive' code)."""
    from ..presburger.enumerate import enumerate_set_points

    params = dict(program.params, **(params or {}))
    counts: Dict[str, int] = {}
    for stmt in program.statements:
        n = 0
        for env in enumerate_set_points(stmt.domain, params):
            _run_instance(stmt, env, store)
            n += 1
        counts[stmt.name] = n
    return counts


def make_store(
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    seed: int = 0,
) -> TensorStore:
    """A store with deterministic contents for inputs and in-place tensors."""
    params = dict(program.params, **(params or {}))
    store = TensorStore(program.tensors, params)
    rng = np.random.default_rng(seed)
    for name in program.input_tensors():
        store.set_input(name, rng.uniform(0.1, 1.0, size=store[name].shape))
    # In-place pipelines (conv2d's quantisation) read tensors they also
    # write; give those deterministic initial contents too.
    written = {s.tensor_written() for s in program.statements}
    read = {t for s in program.statements for t in s.tensors_read()}
    for name in sorted((written & read) - set(program.input_tensors())):
        stable = sum(ord(c) for c in name)  # hash() is salted per process
        rng2 = np.random.default_rng(seed + stable)
        store.set_input(name, rng2.uniform(0.1, 1.0, size=store[name].shape))
    return store


def run_program(
    program: Program,
    tree: DomainNode,
    params: Optional[Mapping[str, int]] = None,
    seed: int = 0,
) -> Tuple[TensorStore, Dict[str, int]]:
    """Convenience: build a deterministic store and execute the tree."""
    params = dict(program.params, **(params or {}))
    store = make_store(program, params, seed)
    counts = execute_tree(tree, program, store, params)
    return store, counts
