"""Named-workload registry shared by the CLI and the compile server.

Both ``python -m repro <verb> <workload>`` and the ``repro.serve`` daemon
address programs by name: the name (plus a size) fully determines the
built :class:`~repro.ir.Program`, which is what lets a compile *request*
travel over a wire as a few JSON fields instead of a pickled object.
``build_workload`` is the single name-to-program mapping; the CLI wraps
its :class:`UnknownWorkloadError` in a ``SystemExit``, the server turns
it into a structured ``bad-request`` reply.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .pipelines import IMAGE_PIPELINES, conv2d, equake, mixed, polybench, resnet


class UnknownWorkloadError(ValueError):
    """Raised when a workload name matches no registered builder."""


def workload_names() -> List[str]:
    """Every name ``build_workload`` accepts, sorted."""
    return sorted(
        set(IMAGE_PIPELINES)
        | set(polybench.BUILDERS)
        | set(mixed.MIXED_BUILDERS)
        | {"conv2d", "conv_bn", "equake"}
    )


def is_workload(name: str) -> bool:
    return (
        name in IMAGE_PIPELINES
        or name in polybench.BUILDERS
        or name in mixed.MIXED_BUILDERS
        or name in ("conv2d", "conv_bn", "equake")
    )


def build_workload(name: str, size: Optional[int] = None):
    """Build the named workload's :class:`~repro.ir.Program`.

    ``size`` scales the iteration space; each family has its own default.
    Raises :class:`UnknownWorkloadError` for unregistered names.
    """
    if name in IMAGE_PIPELINES:
        return IMAGE_PIPELINES[name].build(size or 512)
    if name == "conv2d":
        s = size or 64
        return conv2d.build({"H": s, "W": s, "KH": 3, "KW": 3})
    if name == "conv_bn":
        s = size or 32
        return resnet.build_operator_pair(s, s)
    if name == "equake":
        return equake.build(n=size or 8000)
    if name in mixed.MIXED_BUILDERS:
        return mixed.MIXED_BUILDERS[name](size or 512)
    if name in polybench.BUILDERS:
        return polybench.BUILDERS[name](size or 256)
    raise UnknownWorkloadError(
        f"unknown workload {name!r}; known workloads: "
        + ", ".join(workload_names())
    )


def default_tile_sizes(name: str) -> Optional[Tuple[int, ...]]:
    """The tile sizes a workload is compiled with when none are given."""
    if name in IMAGE_PIPELINES:
        return IMAGE_PIPELINES[name].TILE_SIZES
    if name in mixed.MIXED_BUILDERS:
        return mixed.TILE_SIZES
    if name == "equake":
        return None
    return (32, 32)


def get_workload(name: str, size: Optional[int] = None):
    """Canonical name-to-program lookup (alias of :func:`build_workload`).

    This is the spelling ``repro.api`` re-exports; benchmarks, the CLI
    and the compile server all resolve workload names through it.
    """
    return build_workload(name, size)
