"""The stable public API surface, in one place.

Downstream code (benchmarks, notebooks, the CLI) should import from here —
or from the package root, which re-exports the same names — rather than
reaching into submodules whose layout may shift between releases:

    from repro.api import CompileOptions, optimize

    result = optimize(program, CompileOptions(target="gpu", tile_sizes=(32, 32)))
"""

from __future__ import annotations

from .core import OptimizeResult, optimize
from .ir import Program, ProgramBuilder, Tensor
from .options import CompileOptions
from .scheduler.autotune import TuneResult, autotune_tile_sizes
from .service.cache import CompileCache, default_cache, resolve_cache
from .service.driver import (
    CompileOutcome,
    CompileRequest,
    cached_optimize,
    compile_batch,
)

__all__ = [
    "CompileCache",
    "CompileOptions",
    "CompileOutcome",
    "CompileRequest",
    "OptimizeResult",
    "Program",
    "ProgramBuilder",
    "Tensor",
    "TuneResult",
    "autotune_tile_sizes",
    "cached_optimize",
    "compile_batch",
    "default_cache",
    "optimize",
    "resolve_cache",
]
