"""The stable public API surface, in one place.

Downstream code (benchmarks, notebooks, the CLI) should import from here —
or from the package root, which re-exports the same names — rather than
reaching into submodules whose layout may shift between releases:

    from repro.api import CompileOptions, optimize

    result = optimize(program, CompileOptions(target="gpu", tile_sizes=(32, 32)))
"""

from __future__ import annotations

from .core import OptimizeResult, optimize
from .core.tile_shapes import TARGETS, TargetSpec
from .ir import Program, ProgramBuilder, Tensor
from .machine.transfer import DEFAULT_TRANSFER, PCIE_TRANSFER, TransferSpec
from .options import CompileOptions, PartitionOptions
from .partition import (
    PartitionedSchedule,
    execute_partitioned,
    partition_pipeline,
)
from .scheduler.autotune import TuneResult, autotune_tile_sizes
from .service.cache import CompileCache, default_cache, resolve_cache
from .service.driver import (
    CompileOutcome,
    CompileRequest,
    cached_optimize,
    compile_batch,
)
from .workloads import default_tile_sizes, get_workload, workload_names

__all__ = [
    "CompileCache",
    "CompileOptions",
    "CompileOutcome",
    "CompileRequest",
    "DEFAULT_TRANSFER",
    "OptimizeResult",
    "PCIE_TRANSFER",
    "PartitionOptions",
    "PartitionedSchedule",
    "Program",
    "ProgramBuilder",
    "TARGETS",
    "TargetSpec",
    "Tensor",
    "TransferSpec",
    "TuneResult",
    "autotune_tile_sizes",
    "cached_optimize",
    "compile_batch",
    "default_cache",
    "default_tile_sizes",
    "execute_partitioned",
    "get_workload",
    "optimize",
    "partition_pipeline",
    "resolve_cache",
    "workload_names",
]
