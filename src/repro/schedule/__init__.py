"""``repro.schedule`` — schedule trees and their transformations."""

from .build import grouped_tree, initial_tree
from .transform import (
    SKIPPED,
    collect_bands,
    filter_of_statement,
    find_filters,
    insert_extension_below,
    insert_mark_above_child,
    is_skipped,
    mark_skipped,
    split_band,
    top_level_filters,
    tree_statements,
    unmark_skipped,
)
from .tree import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    MarkNode,
    Node,
    SequenceNode,
    band_from_dims,
)

__all__ = [
    "BandNode",
    "DomainNode",
    "ExtensionNode",
    "FilterNode",
    "LeafNode",
    "MarkNode",
    "Node",
    "SKIPPED",
    "SequenceNode",
    "band_from_dims",
    "collect_bands",
    "filter_of_statement",
    "find_filters",
    "grouped_tree",
    "initial_tree",
    "insert_extension_below",
    "insert_mark_above_child",
    "is_skipped",
    "mark_skipped",
    "split_band",
    "top_level_filters",
    "tree_statements",
    "unmark_skipped",
]
