"""Construction of initial schedule trees from programs."""

from __future__ import annotations

from typing import List, Sequence

from ..ir import Program
from ..presburger import LinExpr
from .tree import BandNode, DomainNode, FilterNode, LeafNode, SequenceNode


def initial_tree(program: Program) -> DomainNode:
    """The textual-order schedule tree: one filter + band per statement.

    Mirrors the paper's Fig. 2(a): a domain node, a sequence over the
    statements in program order, and an identity band over each statement's
    own iterators.
    """
    filters: List[FilterNode] = []
    for stmt in program.statements:
        band = BandNode(
            {stmt.name: [LinExpr.var(d) for d in stmt.dims]},
            dim_names=[f"{stmt.name}_d{i}" for i in range(len(stmt.dims))],
            permutable=False,
            coincident=[False] * len(stmt.dims),
            child=LeafNode(),
        )
        filters.append(FilterNode([stmt.name], band))
    return DomainNode(program.domains(), SequenceNode(filters))


def grouped_tree(
    program: Program,
    groups: Sequence[Sequence[str]],
    group_bands: Sequence[BandNode],
) -> DomainNode:
    """A tree with one filter per fusion group, each rooted at a band.

    ``groups`` lists statement names per fusion group in execution order;
    ``group_bands[i]`` is the (already constructed) band subtree for group
    ``i`` — its child typically contains the inner sequence/bands of the
    group's statements.
    """
    if len(groups) != len(group_bands):
        raise ValueError("groups and group_bands must align")
    filters = [
        FilterNode(list(group), band) for group, band in zip(groups, group_bands)
    ]
    return DomainNode(program.domains(), SequenceNode(filters))
