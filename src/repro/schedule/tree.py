"""Schedule trees (Grosser, Verdoolaege & Cohen, TOPLAS 2015).

The nodes implemented here are the ones the paper uses:

* **domain** — the universe of statement instances;
* **sequence** — explicit ordering of filtered children;
* **filter** — restriction to a subset of statement instances;
* **band** — a piecewise multi-dimensional affine schedule with
  ``permutable`` and ``coincident`` attributes;
* **mark** — a string attached to the tree (``"skipped"``, ``"kernel"``,
  ``"thread"``, ...);
* **extension** — an affine relation from outer schedule dimensions to
  *additional* statement instances, the device by which post-tiling fusion
  splices an intermediate computation space underneath the tile band of a
  live-out space (Section IV of the paper).

Every node is mutable (trees are built up and rewritten by the optimizer)
but cheap to deep-copy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..presburger import LinExpr, UnionMap, UnionSet


class Node:
    """Base class of schedule tree nodes with a single child."""

    def __init__(self, child: Optional["Node"] = None):
        self.child = child

    @property
    def children(self) -> List["Node"]:
        return [] if self.child is None else [self.child]

    def copy(self) -> "Node":
        raise NotImplementedError

    def walk(self) -> Iterator["Node"]:
        yield self
        for c in self.children:
            yield from c.walk()

    def _label(self) -> str:
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self._label()]
        for c in self.children:
            lines.append(c.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self):
        return self._label()


class DomainNode(Node):
    """Root node holding all statement instances."""

    def __init__(self, domain: UnionSet, child: Optional[Node] = None):
        super().__init__(child)
        self.domain = domain

    def copy(self) -> "DomainNode":
        return DomainNode(self.domain, self.child.copy() if self.child else None)

    def _label(self) -> str:
        return f"domain: {{{', '.join(self.domain.names())}}}"


class SequenceNode(Node):
    """Ordered composition; every child must be a FilterNode."""

    def __init__(self, filters: Sequence["FilterNode"] = ()):
        super().__init__(None)
        self.filters: List[FilterNode] = list(filters)

    @property
    def children(self) -> List["Node"]:
        return list(self.filters)

    def copy(self) -> "SequenceNode":
        return SequenceNode([f.copy() for f in self.filters])

    def insert(self, index: int, filt: "FilterNode") -> None:
        self.filters.insert(index, filt)

    def _label(self) -> str:
        return "sequence"


class FilterNode(Node):
    """Restriction to the instances of a set of statements."""

    def __init__(self, statements: Sequence[str], child: Optional[Node] = None):
        super().__init__(child)
        self.statements: Tuple[str, ...] = tuple(statements)

    def copy(self) -> "FilterNode":
        return FilterNode(self.statements, self.child.copy() if self.child else None)

    def _label(self) -> str:
        return f"filter: {{{', '.join(self.statements)}}}"


class BandNode(Node):
    """A partial schedule: per-statement rows of affine expressions.

    ``schedules[stmt]`` is a tuple of :class:`LinExpr` over the statement's
    iterator names (one entry per band dimension).  ``dim_names`` gives the
    band's output dimensions stable names so that extension relations can
    refer to them.  ``permutable`` marks tilability; ``coincident[i]`` marks
    parallelism of band dimension ``i`` (1 in the paper's notation).
    """

    def __init__(
        self,
        schedules: Mapping[str, Sequence[LinExpr]],
        dim_names: Sequence[str],
        permutable: bool = False,
        coincident: Optional[Sequence[bool]] = None,
        child: Optional[Node] = None,
        tile_sizes: Optional[Sequence[int]] = None,
    ):
        super().__init__(child)
        self.schedules: Dict[str, Tuple[LinExpr, ...]] = {
            s: tuple(rows) for s, rows in schedules.items()
        }
        self.dim_names = tuple(dim_names)
        n = len(self.dim_names)
        for s, rows in self.schedules.items():
            if len(rows) != n:
                raise ValueError(
                    f"band rows for {s} have {len(rows)} dims, expected {n}"
                )
        self.permutable = permutable
        self.coincident = list(coincident) if coincident is not None else [False] * n
        # A *tile band*: each dimension iterates over tile origins with the
        # given step (the tile size).  ``None`` marks an ordinary point band.
        self.tile_sizes = tuple(tile_sizes) if tile_sizes is not None else None
        if self.tile_sizes is not None and len(self.tile_sizes) != n:
            raise ValueError("tile_sizes arity mismatch")

    @property
    def n_dims(self) -> int:
        return len(self.dim_names)

    def copy(self) -> "BandNode":
        return BandNode(
            {s: rows for s, rows in self.schedules.items()},
            self.dim_names,
            self.permutable,
            list(self.coincident),
            self.child.copy() if self.child else None,
            self.tile_sizes,
        )

    def statements(self) -> Tuple[str, ...]:
        return tuple(self.schedules)

    def row(self, stmt: str, i: int) -> LinExpr:
        return self.schedules[stmt][i]

    def n_parallel(self) -> int:
        """Number of leading coincident dimensions."""
        count = 0
        for c in self.coincident:
            if not c:
                break
            count += 1
        return count

    def _label(self) -> str:
        rows = "; ".join(
            f"{s}->({', '.join(str(r) for r in rows)})"
            for s, rows in self.schedules.items()
        )
        flags = f" permutable={int(self.permutable)} coincident={[int(c) for c in self.coincident]}"
        if self.tile_sizes is not None:
            flags += f" tile_sizes={list(self.tile_sizes)}"
        return f"band[{', '.join(self.dim_names)}]: [{rows}]{flags}"


class MarkNode(Node):
    """A string attached to the subtree (e.g. ``"skipped"``, ``"kernel"``)."""

    def __init__(self, mark: str, child: Optional[Node] = None):
        super().__init__(child)
        self.mark = mark

    def copy(self) -> "MarkNode":
        return MarkNode(self.mark, self.child.copy() if self.child else None)

    def _label(self) -> str:
        return f'mark: "{self.mark}"'


class ExtensionNode(Node):
    """Adds statement instances as a function of outer band dimensions.

    ``extension`` maps the outer schedule dims (matched by *name* to
    enclosing band ``dim_names``) to statement instances, e.g. relation (6)
    of the paper: ``{ (o0, o1) -> S0[h, w] : ... }``.
    """

    def __init__(self, extension: UnionMap, child: Optional[Node] = None):
        super().__init__(child)
        self.extension = extension

    def copy(self) -> "ExtensionNode":
        return ExtensionNode(self.extension, self.child.copy() if self.child else None)

    def added_statements(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(out for (_, out) in self.extension.keys()))

    def _label(self) -> str:
        return f"extension: {self.extension}"


class LeafNode(Node):
    """Explicit leaf (executes the filtered statement instances)."""

    def __init__(self):
        super().__init__(None)

    def copy(self) -> "LeafNode":
        return LeafNode()

    def _label(self) -> str:
        return "leaf"


def band_from_dims(
    statements: Mapping[str, Sequence[str]],
    dim_names: Sequence[str],
    permutable: bool = True,
    coincident: Optional[Sequence[bool]] = None,
    child: Optional[Node] = None,
) -> BandNode:
    """Identity band over per-statement iterator names.

    ``statements`` maps a statement to the iterator names that feed each of
    the band's dimensions (aligned positionally with ``dim_names``).
    """
    schedules = {
        s: [LinExpr.var(n) for n in iters] for s, iters in statements.items()
    }
    return BandNode(schedules, dim_names, permutable, coincident, child)
