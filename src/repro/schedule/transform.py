"""Schedule tree manipulation utilities.

These are the primitives Algorithm 2 composes: band splitting into
tile/point parts, node insertion below a band, subtree skipping via mark
nodes, and filter lookup.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..presburger import UnionMap
from .tree import (
    BandNode,
    DomainNode,
    ExtensionNode,
    FilterNode,
    LeafNode,
    MarkNode,
    Node,
    SequenceNode,
)

SKIPPED = "skipped"


def split_band(band: BandNode, n_outer: int) -> Tuple[BandNode, BandNode]:
    """Split a band into outer (tile) and inner (point) bands.

    The outer band keeps the first ``n_outer`` dimensions and adopts the
    inner band as its child.  Returns ``(outer, inner)`` — both freshly
    allocated; the original band is not mutated.
    """
    if not 0 < n_outer < band.n_dims:
        raise ValueError(
            f"cannot split a {band.n_dims}-dim band at {n_outer}"
        )
    inner = BandNode(
        {s: rows[n_outer:] for s, rows in band.schedules.items()},
        band.dim_names[n_outer:],
        band.permutable,
        band.coincident[n_outer:],
        band.child.copy() if band.child else LeafNode(),
    )
    outer = BandNode(
        {s: rows[:n_outer] for s, rows in band.schedules.items()},
        band.dim_names[:n_outer],
        band.permutable,
        band.coincident[:n_outer],
        inner,
    )
    return outer, inner


def find_filters(root: Node, predicate: Callable[[FilterNode], bool]) -> List[FilterNode]:
    return [n for n in root.walk() if isinstance(n, FilterNode) and predicate(n)]


def filter_of_statement(root: Node, stmt: str) -> Optional[FilterNode]:
    """The innermost filter node that contains ``stmt``."""
    best: Optional[FilterNode] = None
    for n in root.walk():
        if isinstance(n, FilterNode) and stmt in n.statements:
            best = n
    return best


def top_level_filters(root: DomainNode) -> List[FilterNode]:
    """The children of the root sequence (the fusion groups)."""
    child = root.child
    if isinstance(child, SequenceNode):
        return list(child.filters)
    if isinstance(child, FilterNode):
        return [child]
    return []


def mark_skipped(filt: FilterNode) -> None:
    """Wrap the filter's subtree in a ``"skipped"`` mark node.

    The code generator bypasses marked subtrees; Algorithm 2 uses this to
    disable the original schedule of a fused intermediate space.
    """
    if isinstance(filt.child, MarkNode) and filt.child.mark == SKIPPED:
        return
    filt.child = MarkNode(SKIPPED, filt.child)


def unmark_skipped(filt: FilterNode) -> None:
    """Remove a ``"skipped"`` mark (Algorithm 3 un-fuses shared spaces)."""
    if isinstance(filt.child, MarkNode) and filt.child.mark == SKIPPED:
        filt.child = filt.child.child


def is_skipped(filt: FilterNode) -> bool:
    return isinstance(filt.child, MarkNode) and filt.child.mark == SKIPPED


def insert_extension_below(
    band: BandNode,
    extension: UnionMap,
    extension_subtree: Node,
) -> ExtensionNode:
    """Insert ``extension`` under ``band``, sequencing the added statements
    before the band's original subtree (tile-wise fusion, Fig. 5).

    The added statements are scheduled by ``extension_subtree`` (typically a
    copy of their original band).  Returns the new extension node.
    """
    original = band.child if band.child is not None else LeafNode()
    added = extension.range().names()
    ext_filter = FilterNode(list(added), extension_subtree)
    original_stmts = _statements_below(original, fallback=band.statements())
    orig_filter = FilterNode(original_stmts, original)
    seq = SequenceNode([ext_filter, orig_filter])
    ext_node = ExtensionNode(extension, seq)
    band.child = ext_node
    return ext_node


def _statements_below(node: Node, fallback: Sequence[str]) -> Tuple[str, ...]:
    stmts: List[str] = []
    for n in node.walk():
        if isinstance(n, FilterNode):
            for s in n.statements:
                if s not in stmts:
                    stmts.append(s)
        elif isinstance(n, BandNode):
            for s in n.statements():
                if s not in stmts:
                    stmts.append(s)
    return tuple(stmts) if stmts else tuple(fallback)


def insert_mark_above_child(node: Node, mark: str) -> MarkNode:
    """Wrap ``node.child`` in a mark node (e.g. "kernel"/"thread" for GPU)."""
    m = MarkNode(mark, node.child)
    node.child = m
    return m


def collect_bands(root: Node) -> List[BandNode]:
    return [n for n in root.walk() if isinstance(n, BandNode)]


def tree_statements(root: Node) -> Tuple[str, ...]:
    return _statements_below(root, fallback=())
