"""The compile server: a long-lived asyncio daemon over the batch driver.

Every piece the daemon composes already exists in the library —
content-addressed fingerprints, the (now thread-safe) two-tier
:class:`~repro.service.CompileCache`, the deduplicating
:func:`~repro.service.compile_batch` driver, presburger memo tables and
the :class:`~repro.obs.MetricsRegistry` — what the server adds is *state
that stays warm*: one process whose LRU, memo tables and metrics survive
across requests, instead of every invocation paying process startup and
re-warming from disk.

Architecture (single event loop + bounded worker pool):

* **Transport** — newline-delimited JSON-RPC (:mod:`repro.serve.protocol`)
  over a unix socket and/or TCP.  One connection may pipeline requests;
  each request is handled by its own task and replies carry the request
  id, so they may complete out of order.
* **Single-flight dedup** — identical compile requests (same normalized
  workload/size/target/tiles/startup) that arrive while one is already
  compiling all await the *same* task (:mod:`repro.serve.singleflight`);
  only the leader touches the worker pool.  ``serve.dedup_hits`` counts
  the followers.
* **Worker pool** — actual compiles run on a bounded
  ``ThreadPoolExecutor`` and route through ``compile_batch(mode="serial",
  cache=...)``, so every request shares the in-process LRU, the disk
  store and the process-wide memo tables.
* **Limits** — per-client (per-connection) concurrency caps answer
  ``overloaded`` instead of queueing unboundedly; per-request timeouts
  answer ``timeout`` (the compile keeps running server-side and lands in
  the cache — a timeout waiter's work is not wasted).
* **Lifecycle** — SIGTERM/SIGINT (or a ``shutdown`` request) stop the
  listeners, let in-flight requests finish (bounded by
  ``drain_timeout``), then close connections and the pool.
* **Stats** — the ``stats`` method returns a live ``repro-metrics/1``
  snapshot straight from the registry: request/dedup/cache-hit counters,
  latency histograms, and every span/counter the instrumented compiles
  produced.

The registry and all bookkeeping are touched only on the event-loop
thread; the worker threads hand their per-compile
:class:`~repro.obs.CompileReport` back for absorption, so no metric
needs a lock.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Tuple

from ..obs import MetricsRegistry
from ..obs import distributed
from ..obs.events import EventLog, SampleRing
from . import protocol
from .singleflight import SingleFlight

#: Histogram bucket bounds for request/compile latencies, in milliseconds.
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)


def default_socket_path() -> str:
    """Default unix-socket path, next to the default compile cache."""
    from ..service.cache import default_cache_dir

    return os.path.join(default_cache_dir(), "serve.sock")


class RequestError(Exception):
    """A request failed with a structured protocol error."""

    def __init__(self, code: str, message: str):
        assert code in protocol.ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass
class ServeConfig:
    """Validated daemon configuration.

    At least one endpoint is always live: with neither ``socket_path``
    nor ``host`` given, the server listens on :func:`default_socket_path`.
    ``cache`` accepts anything :func:`repro.service.cache.resolve_cache`
    does (an instance, ``"default"``, a named cache, a directory) or
    ``None`` to serve without a result cache.
    """

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    workers: int = 2
    client_limit: int = 8
    request_timeout: float = 300.0
    drain_timeout: float = 10.0
    cache: object = "default"
    #: Head-sampling rate applied to requests that *ask* for tracing; a
    #: sampled-out request pays only the null-span fast path.
    trace_sample: float = 1.0
    #: JSONL event-log path (``None`` keeps the log memory-only).
    events_path: Optional[str] = None
    #: Seconds between telemetry ring-buffer samples (the ``watch`` verb).
    sample_interval: float = 1.0
    #: Telemetry ring capacity (samples retained for ``watch``).
    ring_size: int = 300

    def __post_init__(self):
        if self.socket_path is None and self.host is None:
            self.socket_path = default_socket_path()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.client_limit < 1:
            raise ValueError(
                f"client_limit must be >= 1, got {self.client_limit!r}"
            )
        if self.request_timeout <= 0 or self.drain_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {self.trace_sample!r}"
            )
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {self.sample_interval!r}"
            )
        if self.ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {self.ring_size!r}")


class CompileServer:
    """The daemon.  ``compile_fn``/``autotune_fn`` are injectable for
    tests: synchronous callables run on the worker pool, taking the
    normalized params dict and returning ``(summary_dict, report|None)``."""

    def __init__(
        self, config: ServeConfig, compile_fn=None, autotune_fn=None,
        partition_fn=None,
    ):
        self.config = config
        if config.cache is None:
            self.cache = None
        else:
            from ..service.cache import resolve_cache

            self.cache = resolve_cache(config.cache)
        self.registry = MetricsRegistry()
        self.events = EventLog(path=config.events_path)
        self.ring = SampleRing(config.ring_size)
        self._prev_sample: Optional[Dict[str, float]] = None
        self._sampler: Optional[asyncio.Task] = None
        self._compile_fn = compile_fn or self._compile_workload
        self._autotune_fn = autotune_fn or self._autotune_workload
        self._partition_fn = partition_fn or self._partition_workload
        self._flight = SingleFlight()
        self._shares_report: Dict[object, bool] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._servers = []
        self._writers = set()
        self._tasks = set()
        self._conn_tasks = set()
        self._connections = 0
        self._active_compiles = 0
        self._stopping = asyncio.Event()
        self._started_at = time.monotonic()
        self.tcp_address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the configured endpoints and start accepting requests."""
        self._started_at = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve-worker",
        )
        if self.config.socket_path:
            path = self.config.socket_path
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            try:
                os.unlink(path)  # stale socket from a dead server
            except OSError:
                pass
            self._servers.append(
                await asyncio.start_unix_server(
                    self._serve_connection, path=path,
                    limit=protocol.MAX_LINE_BYTES,
                )
            )
        if self.config.host is not None:
            srv = await asyncio.start_server(
                self._serve_connection,
                host=self.config.host,
                port=self.config.port,
                limit=protocol.MAX_LINE_BYTES,
            )
            self._servers.append(srv)
            self.tcp_address = srv.sockets[0].getsockname()[:2]
        self.registry.meta.update(
            {
                "service": "repro-serve",
                "protocol": protocol.PROTOCOL,
                "pid": os.getpid(),
                "socket": self.config.socket_path,
                "tcp": list(self.tcp_address) if self.tcp_address else None,
                "workers": self.config.workers,
            }
        )
        self.events.emit(
            "server.started",
            pid=os.getpid(),
            socket=self.config.socket_path,
            trace_sample=self.config.trace_sample,
        )
        self._sampler = asyncio.get_running_loop().create_task(
            self._sample_loop()
        )

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent, loop-thread only)."""
        self._stopping.set()

    async def run(self) -> None:
        """``start`` + serve until shutdown/SIGTERM/SIGINT + drain."""
        if not self._servers:
            await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signal support
        try:
            await self._stopping.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.drain()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, tear down."""
        for srv in self._servers:
            srv.close()
        for srv in self._servers:
            await srv.wait_closed()
        self._servers = []
        pending = [t for t in self._tasks if not t.done()]
        if pending:
            _, still = await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
            for t in still:
                t.cancel()
        for writer in list(self._writers):
            writer.close()
        # Let connection loops see EOF and exit on their own before the
        # loop shuts down, so teardown never cancels them mid-readline.
        loops = [t for t in self._conn_tasks if not t.done()]
        if loops:
            _, still = await asyncio.wait(loops, timeout=2.0)
            for t in still:
                t.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self.cache is not None:
            # Drain the write-behind queue so results compiled here are
            # published to the shared remote tier before we disappear.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.cache.flush(self.config.drain_timeout)
            )
        if self.config.socket_path:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None
        self.events.emit("server.stopped", pid=os.getpid())
        self.events.close()

    # -- telemetry ring ------------------------------------------------------

    async def _sample_loop(self) -> None:
        """Periodically fold a derived telemetry sample into the ring.

        Runs on the event loop (the registry's home thread) so sampling
        needs no locks; the ring itself is thread-safe for ``watch``.
        """
        while not self._stopping.is_set():
            try:
                await asyncio.wait_for(
                    self._stopping.wait(), self.config.sample_interval
                )
                break
            except asyncio.TimeoutError:
                pass
            except asyncio.CancelledError:
                break
            try:
                self.ring.add(self._sample())
            except Exception:
                self.registry.inc("serve.sample_errors")

    def _sample(self) -> Dict[str, object]:
        """One derived telemetry sample (rates computed against the last)."""
        now = time.monotonic()
        c = self.registry.counters
        cur = {
            "t": now,
            "requests": c.get("serve.requests", 0),
            "dedup": c.get("serve.dedup_hits", 0),
            "compiles": c.get("serve.compiles", 0),
            "cache_hits": c.get("serve.cache_hits", 0),
            "errors": c.get("serve.compile_errors", 0),
        }
        prev = self._prev_sample or cur
        dt = max(1e-9, now - prev["t"])
        d_req = cur["requests"] - prev["requests"]
        d_dedup = cur["dedup"] - prev["dedup"]
        d_done = (
            (cur["compiles"] - prev["compiles"])
            + (cur["cache_hits"] - prev["cache_hits"])
            + d_dedup
        )
        self._prev_sample = cur
        compile_ms = self.registry.histograms.get("serve.compile_ms")
        sample: Dict[str, object] = {
            "at": time.time(),
            "uptime_seconds": now - self._started_at,
            "requests_total": cur["requests"],
            "req_per_s": d_req / dt,
            "dedup_rate": (d_dedup / d_done) if d_done else 0.0,
            "active_flights": len(self._flight),
            "inflight_compiles": self._active_compiles,
            "connections": self._connections,
            "compile_errors": cur["errors"],
            "compile_p50_ms": compile_ms.quantile(0.5) if compile_ms else 0.0,
            "compile_p99_ms": compile_ms.quantile(0.99) if compile_ms else 0.0,
            "events_dropped": self.events.stats()["dropped"],
        }
        if self.cache is not None:
            tiers: Dict[str, Dict[str, float]] = {}
            for tier, tstats in self.cache.tier_metrics():
                counters = tstats.counters()
                gauges = tstats.gauges()
                gets = counters.get("gets", 0)
                tiers[tier] = {
                    "hit_pct": 100.0 * counters.get("hits", 0) / gets
                    if gets
                    else 0.0,
                    "gets": gets,
                }
                if "inflight_flush" in gauges:
                    sample["flush_queue_depth"] = gauges["inflight_flush"]
                if "remote_down" in gauges:
                    sample["remote_down"] = bool(gauges["remote_down"])
            sample["tiers"] = tiers
        return sample

    def _watch(self, params: dict) -> dict:
        """Telemetry samples newer than ``since`` plus recent events."""
        samples, missed = self.ring.since(int(params.get("since", 0)))
        limit = params.get("limit")
        if limit is not None:
            samples = samples[-int(limit):]
        return {
            "interval": self.config.sample_interval,
            "samples": samples,
            "missed": missed,
            "recent_events": self.events.recent(10, type="event"),
        }

    # -- connection handling -----------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        self._connections += 1
        self._conn_tasks.add(asyncio.current_task())
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        client = {"inflight": 0}
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Oversized line or reset: answer if possible, drop.
                    await self._write(
                        writer,
                        write_lock,
                        protocol.error_response(
                            None, "bad-request", "oversized or broken line"
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = loop.create_task(
                    self._handle_line(line, writer, write_lock, client)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            self._connections -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(self, writer, write_lock, message: dict) -> None:
        try:
            async with write_lock:
                writer.write(protocol.encode(message))
                await writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            pass  # client went away; nothing to tell it

    async def _handle_line(self, line, writer, write_lock, client) -> None:
        t0 = perf_counter()
        rid = None
        method = None
        try:
            msg = protocol.decode(line)
            rid = msg.get("id")
            if not isinstance(rid, (int, str)) or isinstance(rid, bool):
                rid = None
            errors = protocol.validate_request(msg)
            if errors:
                raise RequestError("bad-request", "; ".join(errors))
            method = msg["method"]
            response = protocol.ok_response(
                rid, await self._dispatch(method, msg["params"], client)
            )
        except protocol.ProtocolError as exc:
            self.registry.inc("serve.bad_requests")
            response = protocol.error_response(rid, "bad-request", str(exc))
        except RequestError as exc:
            if exc.code == "bad-request":
                self.registry.inc("serve.bad_requests")
            response = protocol.error_response(rid, exc.code, exc.message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.registry.inc("serve.internal_errors")
            response = protocol.error_response(
                rid, "internal", f"{type(exc).__name__}: {exc}"
            )
        self.registry.observe(
            "serve.request_ms", (perf_counter() - t0) * 1e3, LATENCY_BUCKETS_MS
        )
        await self._write(writer, write_lock, response)

    async def _dispatch(self, method: str, params: dict, client) -> dict:
        self.registry.inc("serve.requests")
        self.registry.inc(f"serve.requests.{method}")
        if method not in protocol.METHODS:
            raise RequestError("unknown-method", f"unknown method {method!r}")
        if method == "health":
            return self._health()
        if method == "stats":
            return self._stats()
        if method == "watch":
            return self._watch(params)
        if method == "shutdown":
            return self._shutdown()
        # compile / autotune: real work, subject to draining and limits.
        ctx = distributed.TraceContext.from_wire(params.get("trace"))
        if ctx is not None and ctx.sampled:
            # Head-sampling is re-decided here so ``--trace-sample`` can
            # throttle daemon-side tracing even when every client asks.
            if not distributed.sample(self.config.trace_sample):
                ctx = distributed.TraceContext(
                    ctx.trace_id, ctx.span_id, sampled=False
                )
                self.registry.inc("serve.trace_sampled_out")
            else:
                self.registry.inc("serve.trace_sampled")
        self.events.emit(
            "request.received",
            trace=ctx,
            method=method,
            workload=params.get("workload"),
        )
        if self._stopping.is_set():
            self.registry.inc("serve.rejected_draining")
            raise RequestError("draining", "server is shutting down")
        if client["inflight"] >= self.config.client_limit:
            self.registry.inc("serve.rejected_overloaded")
            self.events.emit(
                "request.overloaded", level="warn", trace=ctx, method=method
            )
            raise RequestError(
                "overloaded",
                f"client has {client['inflight']} requests in flight "
                f"(limit {self.config.client_limit})",
            )
        client["inflight"] += 1
        try:
            if method == "compile":
                return await self._rpc_compile(params, ctx)
            if method == "partition":
                return await self._rpc_partition(params, ctx)
            return await self._rpc_autotune(params, ctx)
        finally:
            client["inflight"] -= 1

    # -- methods -----------------------------------------------------------

    def _normalize_compile(self, params: dict) -> Dict[str, object]:
        from ..scheduler import HEURISTICS
        from ..workloads import default_tile_sizes, is_workload

        name = params["workload"]
        if not is_workload(name):
            raise RequestError("bad-request", f"unknown workload {name!r}")
        startup = params.get("startup", "smartfuse")
        if startup not in HEURISTICS:
            raise RequestError(
                "bad-request",
                f"unknown startup heuristic {startup!r}; "
                f"choose from {HEURISTICS}",
            )
        tiles = params.get("tile_sizes")
        if tiles is None:
            tiles = default_tile_sizes(name)
        return {
            "workload": name,
            "size": params.get("size"),
            "target": params.get("target", "cpu"),
            "tile_sizes": list(tiles) if tiles is not None else None,
            "startup": startup,
        }

    async def _rpc_compile(self, params: dict, ctx=None) -> dict:
        norm = self._normalize_compile(params)
        return await self._run_flight(
            "compile", norm, self._compile_fn, ctx, "compile-error"
        )

    async def _rpc_autotune(self, params: dict, ctx=None) -> dict:
        norm = self._normalize_compile({**params, "tile_sizes": None})
        norm.pop("tile_sizes")
        norm["threads"] = params.get("threads", 32)
        norm["dims"] = params.get("dims", 2)
        candidates = params.get("candidates")
        norm["candidates"] = (
            list(candidates) if candidates is not None else [8, 16, 32, 64, 128]
        )
        return await self._run_flight(
            "autotune", norm, self._autotune_fn, ctx, "autotune-error"
        )

    async def _rpc_partition(self, params: dict, ctx=None) -> dict:
        norm = self._normalize_compile({**params, "tile_sizes": None})
        norm.pop("tile_sizes")
        norm.pop("target", None)
        targets = params.get("targets")
        norm["targets"] = (
            list(targets) if targets is not None else ["cpu", "gpu", "npu"]
        )
        return await self._run_flight(
            "partition", norm, self._partition_fn, ctx, "partition-error"
        )

    async def _run_flight(self, method, norm, fn, ctx, error_code) -> dict:
        """Single-flight dedup + trace/lifecycle bookkeeping for one verb.

        The flight key ignores the trace context on purpose: identical
        compiles dedup whether or not they are traced, so only the
        leader's request gets its span tree back (followers see
        ``deduped: true`` and can re-request untraced work).
        """
        key = method + ":" + json.dumps(norm, sort_keys=True)
        task, leader = self._flight.task(key, lambda: self._lead(norm, fn, ctx))
        if not leader:
            self.registry.inc("serve.dedup_hits")
            self.events.emit(
                "request.deduped",
                trace=ctx,
                method=method,
                workload=norm.get("workload"),
            )
        summary = await self._await_flight(task, method, ctx)
        if summary.get("error"):
            self.events.emit(
                "request.failed",
                level="error",
                trace=ctx,
                method=method,
                error=summary["error"],
            )
            raise RequestError(error_code, summary["error"])
        result = dict(summary)
        trace_payload = result.pop("_trace", None)
        result["deduped"] = not leader
        if ctx is not None and ctx.sampled and trace_payload is not None:
            result["trace"] = trace_payload
        self.events.emit(
            "request.completed",
            trace=ctx,
            method=method,
            workload=norm.get("workload"),
            ms=result.get("compile_ms"),
            from_cache=bool(result.get("from_cache")),
            deduped=not leader,
        )
        return result

    async def _await_flight(self, task, method=None, ctx=None) -> dict:
        try:
            return await asyncio.wait_for(
                asyncio.shield(task), self.config.request_timeout
            )
        except asyncio.TimeoutError:
            self.registry.inc("serve.timeouts")
            self.events.emit(
                "request.timeout", level="warn", trace=ctx, method=method
            )
            raise RequestError(
                "timeout",
                f"request did not finish within {self.config.request_timeout}s "
                "(the compile continues server-side and will hit the cache)",
            )

    async def _lead(self, norm: dict, fn, ctx=None) -> dict:
        """The single-flight leader: run ``fn`` on the worker pool and fold
        its observations into the live registry."""
        loop = asyncio.get_running_loop()
        self._active_compiles += 1
        try:
            summary, report, wire = await loop.run_in_executor(
                self._executor, self._call_traced, fn, norm, ctx
            )
        finally:
            self._active_compiles -= 1
        if report is not None:
            self.registry.absorb_report(report)
        if summary.get("error"):
            self.registry.inc("serve.compile_errors")
        elif summary.get("from_cache"):
            self.registry.inc("serve.cache_hits")
        else:
            self.registry.inc("serve.compiles")
        if "compile_ms" in summary:
            self.registry.observe(
                "serve.compile_ms", summary["compile_ms"], LATENCY_BUCKETS_MS
            )
        if wire is not None:
            summary = dict(summary)
            summary["_trace"] = wire
            # Also append to the event log so ``repro trace --request``
            # can stitch this daemon's lane from disk later.
            self.events.emit_trace(wire)
        return summary

    def _call_traced(self, fn, norm: dict, ctx):
        """Worker-thread wrapper: run ``fn`` under a tracing collector when
        the request carries a sampled context.

        Returns ``(summary, report, wire_spans|None)``.  Unsampled (or
        untraced) requests skip the collector entirely — the null-span
        fast path.  The server's own workload fns accept ``report=`` and
        reuse the tracing collector instead of opening their usual inner
        one — two stacked collectors would double the dispatch cost of
        every hot-loop counter, which is exactly the overhead the traced
        budget in ``bench_obs_overhead --serve`` polices.  Injected test
        ``compile_fn``\\ s keep their one-argument signature and simply
        nest."""
        from ..service import instrument

        if ctx is None or not ctx.sampled:
            summary, report = fn(norm)
            return summary, report, None
        shares_report = self._shares_report.get(fn)
        if shares_report is None:
            try:
                shares_report = "report" in inspect.signature(fn).parameters
            except (TypeError, ValueError):  # builtins, odd callables
                shares_report = False
            self._shares_report[fn] = shares_report
        with distributed.use_context(ctx):
            with instrument.collect(trace=True) as traced:
                with instrument.span(
                    "serve.request",
                    trace_id=ctx.trace_id,
                    parent_span_id=ctx.span_id,
                    workload=norm.get("workload"),
                ):
                    if shares_report:
                        summary, report = fn(norm, report=traced)
                    else:
                        summary, report = fn(norm)
        wire = distributed.report_to_wire(traced, service="daemon", ctx=ctx)
        return summary, report, wire

    def _health(self) -> dict:
        return {
            "status": "draining" if self._stopping.is_set() else "ok",
            "protocol": protocol.PROTOCOL,
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started_at,
            "connections": self._connections,
            "inflight_compiles": self._active_compiles,
            "requests_total": self.registry.counters.get("serve.requests", 0),
        }

    def _stats(self) -> dict:
        """A live ``repro-metrics/1`` snapshot of everything observed."""
        self.registry.set_gauge(
            "serve.uptime_seconds", time.monotonic() - self._started_at
        )
        self.registry.set_gauge("serve.connections", self._connections)
        self.registry.set_gauge("serve.inflight_compiles", self._active_compiles)
        self.registry.set_gauge("serve.inflight_keys", len(self._flight))
        estats = self.events.stats()
        self.registry.set_gauge("serve.events.buffered", estats["buffered"])
        self.registry.set_gauge("serve.events.dropped", estats["dropped"])
        self.registry.set_gauge("serve.events.written", estats["written"])
        self.registry.set_gauge("serve.ring.samples", len(self.ring))
        if self.cache is not None:
            for name, value in self.cache.stats.as_dict().items():
                self.registry.set_gauge(f"serve.cache.{name}", value)
            # Per-tier fabric metrics: counters and gauges become
            # ``serve.cache.tier.<tier>.<name>`` gauges, latency
            # histograms land in the registry under the same prefix.
            for tier, tstats in self.cache.tier_metrics():
                prefix = f"serve.cache.tier.{tier}"
                for name, value in tstats.counters().items():
                    self.registry.set_gauge(f"{prefix}.{name}", value)
                for name, value in tstats.gauges().items():
                    self.registry.set_gauge(f"{prefix}.{name}", value)
                for name, hist in tstats.histograms().items():
                    self.registry.histograms[f"{prefix}.{name}"] = hist
        return self.registry.snapshot()

    def _shutdown(self) -> dict:
        self.request_shutdown()
        return {"stopping": True, "inflight_compiles": self._active_compiles}

    # -- the real work (worker-pool threads) --------------------------------

    def _compile_workload(self, norm: dict, report=None):
        """Compile one normalized request through the batch driver.

        Runs on a worker thread; returns ``(summary, report)``.  The
        driver sees the shared thread-safe cache, so a warm fingerprint
        never compiles and a fresh result is stored for every later
        request (and process).  ``report`` is an already-active tracing
        collector to reuse (see ``_call_traced``)."""
        from ..options import CompileOptions
        from ..service import instrument
        from ..service.driver import CompileRequest, compile_batch
        from ..workloads import build_workload

        t0 = perf_counter()
        with (
            instrument.collect() if report is None else nullcontext(report)
        ) as report:
            program = build_workload(norm["workload"], norm["size"])
            request = CompileRequest(
                program,
                target=norm["target"],
                tile_sizes=norm["tile_sizes"],
                startup=norm["startup"],
            )
            (outcome,) = compile_batch(
                [request],
                options=CompileOptions(mode="serial", cache=self.cache),
            )
        summary = {
            "workload": norm["workload"],
            "size": norm["size"],
            "target": norm["target"],
            "startup": norm["startup"],
            "fingerprint": outcome.fingerprint,
            "from_cache": outcome.from_cache,
            "compile_ms": (perf_counter() - t0) * 1e3,
            "error": outcome.error,
        }
        if outcome.ok:
            summary["tile_sizes"] = (
                list(outcome.result.tile_sizes)
                if outcome.result.tile_sizes is not None
                else None
            )
            summary["fusion"] = outcome.result.fusion_summary()
        return summary, report

    def _partition_workload(self, norm: dict, report=None):
        """Multi-target partitioning for one normalized request.

        Runs on a worker thread; every partition compiles through
        ``cached_optimize`` against the shared cache, so repeated
        partitions of the same pipeline are warm."""
        from ..options import PartitionOptions
        from ..partition import partition_pipeline
        from ..service import instrument
        from ..workloads import build_workload

        t0 = perf_counter()
        with (
            instrument.collect() if report is None else nullcontext(report)
        ) as report:
            program = build_workload(norm["workload"], norm["size"])
            try:
                sched = partition_pipeline(
                    program,
                    options=PartitionOptions(
                        targets=tuple(norm["targets"]),
                        startup=norm["startup"],
                        cache=self.cache,
                    ),
                )
            except Exception as exc:
                summary = {
                    "workload": norm["workload"],
                    "error": f"{type(exc).__name__}: {exc}",
                    "compile_ms": (perf_counter() - t0) * 1e3,
                }
                return summary, report
        summary = dict(sched.summary())
        summary.update(
            {
                "workload": norm["workload"],
                "size": norm["size"],
                "targets_used": list(sched.targets_used),
                "degenerate": sched.is_degenerate,
                "from_cache": False,
                "compile_ms": (perf_counter() - t0) * 1e3,
                "error": None,
            }
        )
        return summary, report

    def _autotune_workload(self, norm: dict, report=None):
        """Tile-size search for one normalized request (worker thread)."""
        from ..options import CompileOptions
        from ..scheduler.autotune import autotune_tile_sizes
        from ..service import instrument
        from ..workloads import build_workload

        t0 = perf_counter()
        with (
            instrument.collect() if report is None else nullcontext(report)
        ) as report:
            program = build_workload(norm["workload"], norm["size"])
            try:
                tuned = autotune_tile_sizes(
                    program,
                    threads=norm["threads"],
                    candidates=tuple(norm["candidates"]),
                    dims=norm["dims"],
                    options=CompileOptions(
                        target=norm["target"],
                        startup=norm["startup"],
                        mode="serial",
                        cache=self.cache,
                    ),
                )
            except Exception as exc:
                summary = {
                    "workload": norm["workload"],
                    "error": f"{type(exc).__name__}: {exc}",
                    "compile_ms": (perf_counter() - t0) * 1e3,
                }
                return summary, report
        summary = {
            "workload": norm["workload"],
            "size": norm["size"],
            "target": norm["target"],
            "best_tile_sizes": list(tuned.best_sizes),
            "best_time_ms": tuned.best_time * 1e3,
            "evaluations": len(tuned.evaluations),
            "failures": len(tuned.failures),
            "tuning_seconds": tuned.tuning_seconds,
            "from_cache": False,
            "compile_ms": (perf_counter() - t0) * 1e3,
            "error": None,
        }
        return summary, report


class ServerThread:
    """A :class:`CompileServer` on a background thread with its own loop.

    The harness tests, ``bench_serve.py`` and interactive sessions all
    need a server *next to* blocking client code; this wraps the
    start/ready/stop handshake::

        with ServerThread(ServeConfig(socket_path=p, cache=cache)) as st:
            client = ServeClient(socket_path=p)
            ...
    """

    def __init__(self, config: ServeConfig, **server_kwargs):
        self.server = CompileServer(config, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 15.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("compile server did not start in time")
        if self._error is not None:
            raise RuntimeError(
                f"compile server failed to start: {self._error!r}"
            ) from self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup/run failures
            if self._error is None:
                self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.run()

    def stop(self, timeout: float = 15.0) -> None:
        if self._thread is None:
            return
        if self._thread.is_alive() and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        return self.server.tcp_address

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
