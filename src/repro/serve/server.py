"""The compile server: a long-lived asyncio daemon over the batch driver.

Every piece the daemon composes already exists in the library —
content-addressed fingerprints, the (now thread-safe) two-tier
:class:`~repro.service.CompileCache`, the deduplicating
:func:`~repro.service.compile_batch` driver, presburger memo tables and
the :class:`~repro.obs.MetricsRegistry` — what the server adds is *state
that stays warm*: one process whose LRU, memo tables and metrics survive
across requests, instead of every invocation paying process startup and
re-warming from disk.

Architecture (single event loop + bounded worker pool):

* **Transport** — newline-delimited JSON-RPC (:mod:`repro.serve.protocol`)
  over a unix socket and/or TCP.  One connection may pipeline requests;
  each request is handled by its own task and replies carry the request
  id, so they may complete out of order.
* **Single-flight dedup** — identical compile requests (same normalized
  workload/size/target/tiles/startup) that arrive while one is already
  compiling all await the *same* task (:mod:`repro.serve.singleflight`);
  only the leader touches the worker pool.  ``serve.dedup_hits`` counts
  the followers.
* **Worker pool** — actual compiles run on a bounded
  ``ThreadPoolExecutor`` and route through ``compile_batch(mode="serial",
  cache=...)``, so every request shares the in-process LRU, the disk
  store and the process-wide memo tables.
* **Limits** — per-client (per-connection) concurrency caps answer
  ``overloaded`` instead of queueing unboundedly; per-request timeouts
  answer ``timeout`` (the compile keeps running server-side and lands in
  the cache — a timeout waiter's work is not wasted).
* **Lifecycle** — SIGTERM/SIGINT (or a ``shutdown`` request) stop the
  listeners, let in-flight requests finish (bounded by
  ``drain_timeout``), then close connections and the pool.
* **Stats** — the ``stats`` method returns a live ``repro-metrics/1``
  snapshot straight from the registry: request/dedup/cache-hit counters,
  latency histograms, and every span/counter the instrumented compiles
  produced.

The registry and all bookkeeping are touched only on the event-loop
thread; the worker threads hand their per-compile
:class:`~repro.obs.CompileReport` back for absorption, so no metric
needs a lock.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Tuple

from ..obs import MetricsRegistry
from . import protocol
from .singleflight import SingleFlight

#: Histogram bucket bounds for request/compile latencies, in milliseconds.
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)


def default_socket_path() -> str:
    """Default unix-socket path, next to the default compile cache."""
    from ..service.cache import default_cache_dir

    return os.path.join(default_cache_dir(), "serve.sock")


class RequestError(Exception):
    """A request failed with a structured protocol error."""

    def __init__(self, code: str, message: str):
        assert code in protocol.ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass
class ServeConfig:
    """Validated daemon configuration.

    At least one endpoint is always live: with neither ``socket_path``
    nor ``host`` given, the server listens on :func:`default_socket_path`.
    ``cache`` accepts anything :func:`repro.service.cache.resolve_cache`
    does (an instance, ``"default"``, a named cache, a directory) or
    ``None`` to serve without a result cache.
    """

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    workers: int = 2
    client_limit: int = 8
    request_timeout: float = 300.0
    drain_timeout: float = 10.0
    cache: object = "default"

    def __post_init__(self):
        if self.socket_path is None and self.host is None:
            self.socket_path = default_socket_path()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.client_limit < 1:
            raise ValueError(
                f"client_limit must be >= 1, got {self.client_limit!r}"
            )
        if self.request_timeout <= 0 or self.drain_timeout <= 0:
            raise ValueError("timeouts must be positive")


class CompileServer:
    """The daemon.  ``compile_fn``/``autotune_fn`` are injectable for
    tests: synchronous callables run on the worker pool, taking the
    normalized params dict and returning ``(summary_dict, report|None)``."""

    def __init__(
        self, config: ServeConfig, compile_fn=None, autotune_fn=None,
        partition_fn=None,
    ):
        self.config = config
        if config.cache is None:
            self.cache = None
        else:
            from ..service.cache import resolve_cache

            self.cache = resolve_cache(config.cache)
        self.registry = MetricsRegistry()
        self._compile_fn = compile_fn or self._compile_workload
        self._autotune_fn = autotune_fn or self._autotune_workload
        self._partition_fn = partition_fn or self._partition_workload
        self._flight = SingleFlight()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._servers = []
        self._writers = set()
        self._tasks = set()
        self._conn_tasks = set()
        self._connections = 0
        self._active_compiles = 0
        self._stopping = asyncio.Event()
        self._started_at = time.monotonic()
        self.tcp_address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the configured endpoints and start accepting requests."""
        self._started_at = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve-worker",
        )
        if self.config.socket_path:
            path = self.config.socket_path
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            try:
                os.unlink(path)  # stale socket from a dead server
            except OSError:
                pass
            self._servers.append(
                await asyncio.start_unix_server(
                    self._serve_connection, path=path,
                    limit=protocol.MAX_LINE_BYTES,
                )
            )
        if self.config.host is not None:
            srv = await asyncio.start_server(
                self._serve_connection,
                host=self.config.host,
                port=self.config.port,
                limit=protocol.MAX_LINE_BYTES,
            )
            self._servers.append(srv)
            self.tcp_address = srv.sockets[0].getsockname()[:2]
        self.registry.meta.update(
            {
                "service": "repro-serve",
                "protocol": protocol.PROTOCOL,
                "pid": os.getpid(),
                "socket": self.config.socket_path,
                "tcp": list(self.tcp_address) if self.tcp_address else None,
                "workers": self.config.workers,
            }
        )

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent, loop-thread only)."""
        self._stopping.set()

    async def run(self) -> None:
        """``start`` + serve until shutdown/SIGTERM/SIGINT + drain."""
        if not self._servers:
            await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signal support
        try:
            await self._stopping.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.drain()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, tear down."""
        for srv in self._servers:
            srv.close()
        for srv in self._servers:
            await srv.wait_closed()
        self._servers = []
        pending = [t for t in self._tasks if not t.done()]
        if pending:
            _, still = await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
            for t in still:
                t.cancel()
        for writer in list(self._writers):
            writer.close()
        # Let connection loops see EOF and exit on their own before the
        # loop shuts down, so teardown never cancels them mid-readline.
        loops = [t for t in self._conn_tasks if not t.done()]
        if loops:
            _, still = await asyncio.wait(loops, timeout=2.0)
            for t in still:
                t.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self.cache is not None:
            # Drain the write-behind queue so results compiled here are
            # published to the shared remote tier before we disappear.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.cache.flush(self.config.drain_timeout)
            )
        if self.config.socket_path:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    # -- connection handling -----------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        self._connections += 1
        self._conn_tasks.add(asyncio.current_task())
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        client = {"inflight": 0}
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Oversized line or reset: answer if possible, drop.
                    await self._write(
                        writer,
                        write_lock,
                        protocol.error_response(
                            None, "bad-request", "oversized or broken line"
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = loop.create_task(
                    self._handle_line(line, writer, write_lock, client)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            self._connections -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(self, writer, write_lock, message: dict) -> None:
        try:
            async with write_lock:
                writer.write(protocol.encode(message))
                await writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            pass  # client went away; nothing to tell it

    async def _handle_line(self, line, writer, write_lock, client) -> None:
        t0 = perf_counter()
        rid = None
        method = None
        try:
            msg = protocol.decode(line)
            rid = msg.get("id")
            if not isinstance(rid, (int, str)) or isinstance(rid, bool):
                rid = None
            errors = protocol.validate_request(msg)
            if errors:
                raise RequestError("bad-request", "; ".join(errors))
            method = msg["method"]
            response = protocol.ok_response(
                rid, await self._dispatch(method, msg["params"], client)
            )
        except protocol.ProtocolError as exc:
            self.registry.inc("serve.bad_requests")
            response = protocol.error_response(rid, "bad-request", str(exc))
        except RequestError as exc:
            if exc.code == "bad-request":
                self.registry.inc("serve.bad_requests")
            response = protocol.error_response(rid, exc.code, exc.message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.registry.inc("serve.internal_errors")
            response = protocol.error_response(
                rid, "internal", f"{type(exc).__name__}: {exc}"
            )
        self.registry.observe(
            "serve.request_ms", (perf_counter() - t0) * 1e3, LATENCY_BUCKETS_MS
        )
        await self._write(writer, write_lock, response)

    async def _dispatch(self, method: str, params: dict, client) -> dict:
        self.registry.inc("serve.requests")
        self.registry.inc(f"serve.requests.{method}")
        if method not in protocol.METHODS:
            raise RequestError("unknown-method", f"unknown method {method!r}")
        if method == "health":
            return self._health()
        if method == "stats":
            return self._stats()
        if method == "shutdown":
            return self._shutdown()
        # compile / autotune: real work, subject to draining and limits.
        if self._stopping.is_set():
            self.registry.inc("serve.rejected_draining")
            raise RequestError("draining", "server is shutting down")
        if client["inflight"] >= self.config.client_limit:
            self.registry.inc("serve.rejected_overloaded")
            raise RequestError(
                "overloaded",
                f"client has {client['inflight']} requests in flight "
                f"(limit {self.config.client_limit})",
            )
        client["inflight"] += 1
        try:
            if method == "compile":
                return await self._rpc_compile(params)
            if method == "partition":
                return await self._rpc_partition(params)
            return await self._rpc_autotune(params)
        finally:
            client["inflight"] -= 1

    # -- methods -----------------------------------------------------------

    def _normalize_compile(self, params: dict) -> Dict[str, object]:
        from ..scheduler import HEURISTICS
        from ..workloads import default_tile_sizes, is_workload

        name = params["workload"]
        if not is_workload(name):
            raise RequestError("bad-request", f"unknown workload {name!r}")
        startup = params.get("startup", "smartfuse")
        if startup not in HEURISTICS:
            raise RequestError(
                "bad-request",
                f"unknown startup heuristic {startup!r}; "
                f"choose from {HEURISTICS}",
            )
        tiles = params.get("tile_sizes")
        if tiles is None:
            tiles = default_tile_sizes(name)
        return {
            "workload": name,
            "size": params.get("size"),
            "target": params.get("target", "cpu"),
            "tile_sizes": list(tiles) if tiles is not None else None,
            "startup": startup,
        }

    async def _rpc_compile(self, params: dict) -> dict:
        norm = self._normalize_compile(params)
        key = "compile:" + json.dumps(norm, sort_keys=True)
        task, leader = self._flight.task(key, lambda: self._lead(norm, self._compile_fn))
        if not leader:
            self.registry.inc("serve.dedup_hits")
        summary = await self._await_flight(task)
        if summary.get("error"):
            raise RequestError("compile-error", summary["error"])
        result = dict(summary)
        result["deduped"] = not leader
        return result

    async def _rpc_autotune(self, params: dict) -> dict:
        norm = self._normalize_compile({**params, "tile_sizes": None})
        norm.pop("tile_sizes")
        norm["threads"] = params.get("threads", 32)
        norm["dims"] = params.get("dims", 2)
        candidates = params.get("candidates")
        norm["candidates"] = (
            list(candidates) if candidates is not None else [8, 16, 32, 64, 128]
        )
        key = "autotune:" + json.dumps(norm, sort_keys=True)
        task, leader = self._flight.task(
            key, lambda: self._lead(norm, self._autotune_fn)
        )
        if not leader:
            self.registry.inc("serve.dedup_hits")
        summary = await self._await_flight(task)
        if summary.get("error"):
            raise RequestError("autotune-error", summary["error"])
        result = dict(summary)
        result["deduped"] = not leader
        return result

    async def _rpc_partition(self, params: dict) -> dict:
        norm = self._normalize_compile({**params, "tile_sizes": None})
        norm.pop("tile_sizes")
        norm.pop("target", None)
        targets = params.get("targets")
        norm["targets"] = (
            list(targets) if targets is not None else ["cpu", "gpu", "npu"]
        )
        key = "partition:" + json.dumps(norm, sort_keys=True)
        task, leader = self._flight.task(
            key, lambda: self._lead(norm, self._partition_fn)
        )
        if not leader:
            self.registry.inc("serve.dedup_hits")
        summary = await self._await_flight(task)
        if summary.get("error"):
            raise RequestError("partition-error", summary["error"])
        result = dict(summary)
        result["deduped"] = not leader
        return result

    async def _await_flight(self, task) -> dict:
        try:
            return await asyncio.wait_for(
                asyncio.shield(task), self.config.request_timeout
            )
        except asyncio.TimeoutError:
            self.registry.inc("serve.timeouts")
            raise RequestError(
                "timeout",
                f"request did not finish within {self.config.request_timeout}s "
                "(the compile continues server-side and will hit the cache)",
            )

    async def _lead(self, norm: dict, fn) -> dict:
        """The single-flight leader: run ``fn`` on the worker pool and fold
        its observations into the live registry."""
        loop = asyncio.get_running_loop()
        self._active_compiles += 1
        try:
            summary, report = await loop.run_in_executor(self._executor, fn, norm)
        finally:
            self._active_compiles -= 1
        if report is not None:
            self.registry.absorb_report(report)
        if summary.get("error"):
            self.registry.inc("serve.compile_errors")
        elif summary.get("from_cache"):
            self.registry.inc("serve.cache_hits")
        else:
            self.registry.inc("serve.compiles")
        if "compile_ms" in summary:
            self.registry.observe(
                "serve.compile_ms", summary["compile_ms"], LATENCY_BUCKETS_MS
            )
        return summary

    def _health(self) -> dict:
        return {
            "status": "draining" if self._stopping.is_set() else "ok",
            "protocol": protocol.PROTOCOL,
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self._started_at,
            "connections": self._connections,
            "inflight_compiles": self._active_compiles,
            "requests_total": self.registry.counters.get("serve.requests", 0),
        }

    def _stats(self) -> dict:
        """A live ``repro-metrics/1`` snapshot of everything observed."""
        self.registry.set_gauge(
            "serve.uptime_seconds", time.monotonic() - self._started_at
        )
        self.registry.set_gauge("serve.connections", self._connections)
        self.registry.set_gauge("serve.inflight_compiles", self._active_compiles)
        self.registry.set_gauge("serve.inflight_keys", len(self._flight))
        if self.cache is not None:
            for name, value in self.cache.stats.as_dict().items():
                self.registry.set_gauge(f"serve.cache.{name}", value)
            # Per-tier fabric metrics: counters and gauges become
            # ``serve.cache.tier.<tier>.<name>`` gauges, latency
            # histograms land in the registry under the same prefix.
            for tier, tstats in self.cache.tier_metrics():
                prefix = f"serve.cache.tier.{tier}"
                for name, value in tstats.counters().items():
                    self.registry.set_gauge(f"{prefix}.{name}", value)
                for name, value in tstats.gauges().items():
                    self.registry.set_gauge(f"{prefix}.{name}", value)
                for name, hist in tstats.histograms().items():
                    self.registry.histograms[f"{prefix}.{name}"] = hist
        return self.registry.snapshot()

    def _shutdown(self) -> dict:
        self.request_shutdown()
        return {"stopping": True, "inflight_compiles": self._active_compiles}

    # -- the real work (worker-pool threads) --------------------------------

    def _compile_workload(self, norm: dict):
        """Compile one normalized request through the batch driver.

        Runs on a worker thread; returns ``(summary, report)``.  The
        driver sees the shared thread-safe cache, so a warm fingerprint
        never compiles and a fresh result is stored for every later
        request (and process)."""
        from ..options import CompileOptions
        from ..service import instrument
        from ..service.driver import CompileRequest, compile_batch
        from ..workloads import build_workload

        t0 = perf_counter()
        with instrument.collect() as report:
            program = build_workload(norm["workload"], norm["size"])
            request = CompileRequest(
                program,
                target=norm["target"],
                tile_sizes=norm["tile_sizes"],
                startup=norm["startup"],
            )
            (outcome,) = compile_batch(
                [request],
                options=CompileOptions(mode="serial", cache=self.cache),
            )
        summary = {
            "workload": norm["workload"],
            "size": norm["size"],
            "target": norm["target"],
            "startup": norm["startup"],
            "fingerprint": outcome.fingerprint,
            "from_cache": outcome.from_cache,
            "compile_ms": (perf_counter() - t0) * 1e3,
            "error": outcome.error,
        }
        if outcome.ok:
            summary["tile_sizes"] = (
                list(outcome.result.tile_sizes)
                if outcome.result.tile_sizes is not None
                else None
            )
            summary["fusion"] = outcome.result.fusion_summary()
        return summary, report

    def _partition_workload(self, norm: dict):
        """Multi-target partitioning for one normalized request.

        Runs on a worker thread; every partition compiles through
        ``cached_optimize`` against the shared cache, so repeated
        partitions of the same pipeline are warm."""
        from ..options import PartitionOptions
        from ..partition import partition_pipeline
        from ..service import instrument
        from ..workloads import build_workload

        t0 = perf_counter()
        with instrument.collect() as report:
            program = build_workload(norm["workload"], norm["size"])
            try:
                sched = partition_pipeline(
                    program,
                    options=PartitionOptions(
                        targets=tuple(norm["targets"]),
                        startup=norm["startup"],
                        cache=self.cache,
                    ),
                )
            except Exception as exc:
                summary = {
                    "workload": norm["workload"],
                    "error": f"{type(exc).__name__}: {exc}",
                    "compile_ms": (perf_counter() - t0) * 1e3,
                }
                return summary, report
        summary = dict(sched.summary())
        summary.update(
            {
                "workload": norm["workload"],
                "size": norm["size"],
                "targets_used": list(sched.targets_used),
                "degenerate": sched.is_degenerate,
                "from_cache": False,
                "compile_ms": (perf_counter() - t0) * 1e3,
                "error": None,
            }
        )
        return summary, report

    def _autotune_workload(self, norm: dict):
        """Tile-size search for one normalized request (worker thread)."""
        from ..options import CompileOptions
        from ..scheduler.autotune import autotune_tile_sizes
        from ..service import instrument
        from ..workloads import build_workload

        t0 = perf_counter()
        with instrument.collect() as report:
            program = build_workload(norm["workload"], norm["size"])
            try:
                tuned = autotune_tile_sizes(
                    program,
                    threads=norm["threads"],
                    candidates=tuple(norm["candidates"]),
                    dims=norm["dims"],
                    options=CompileOptions(
                        target=norm["target"],
                        startup=norm["startup"],
                        mode="serial",
                        cache=self.cache,
                    ),
                )
            except Exception as exc:
                summary = {
                    "workload": norm["workload"],
                    "error": f"{type(exc).__name__}: {exc}",
                    "compile_ms": (perf_counter() - t0) * 1e3,
                }
                return summary, report
        summary = {
            "workload": norm["workload"],
            "size": norm["size"],
            "target": norm["target"],
            "best_tile_sizes": list(tuned.best_sizes),
            "best_time_ms": tuned.best_time * 1e3,
            "evaluations": len(tuned.evaluations),
            "failures": len(tuned.failures),
            "tuning_seconds": tuned.tuning_seconds,
            "from_cache": False,
            "compile_ms": (perf_counter() - t0) * 1e3,
            "error": None,
        }
        return summary, report


class ServerThread:
    """A :class:`CompileServer` on a background thread with its own loop.

    The harness tests, ``bench_serve.py`` and interactive sessions all
    need a server *next to* blocking client code; this wraps the
    start/ready/stop handshake::

        with ServerThread(ServeConfig(socket_path=p, cache=cache)) as st:
            client = ServeClient(socket_path=p)
            ...
    """

    def __init__(self, config: ServeConfig, **server_kwargs):
        self.server = CompileServer(config, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self, timeout: float = 15.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("compile server did not start in time")
        if self._error is not None:
            raise RuntimeError(
                f"compile server failed to start: {self._error!r}"
            ) from self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup/run failures
            if self._error is None:
                self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.run()

    def stop(self, timeout: float = 15.0) -> None:
        if self._thread is None:
            return
        if self._thread.is_alive() and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        return self.server.tcp_address

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
