"""Single-flight deduplication of identical in-flight work.

The compile server's defining trick: when eight clients request the same
fingerprint at once, one compile runs and the other seven *wait for that
same compile* instead of queueing seven redundant ones behind it.  The
result cache alone cannot do this — a cache only helps once the first
compile has finished, which under a thundering herd is exactly too late.

The mechanics are the classic ``singleflight`` group (Go's
``golang.org/x/sync/singleflight``, sccache's in-flight map) in asyncio
terms: a dict from key to the leader's :class:`asyncio.Task`.  All access
happens on the event loop, so the dict needs no lock.  Followers must
await the shared task through :func:`asyncio.shield` — a follower's
timeout cancels only its own wait, never the leader's compile — and the
entry is removed the moment the task completes, so a *failed* flight is
never re-served: the next request for the same key starts a fresh one
(errors don't poison anything).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Tuple


def _retrieve(task: "asyncio.Task") -> None:
    # Touch the exception so a flight whose every waiter timed out does
    # not warn "Task exception was never retrieved" at GC time.
    if not task.cancelled():
        task.exception()


class SingleFlight:
    """Key-addressed deduplication of concurrent coroutine work."""

    def __init__(self):
        self._inflight: Dict[str, asyncio.Task] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: str) -> bool:
        return key in self._inflight

    def task(
        self, key: str, factory: Callable[[], Awaitable]
    ) -> Tuple["asyncio.Task", bool]:
        """The in-flight task for ``key``, creating it via ``factory``.

        Returns ``(task, is_leader)``: the leader's call created the task
        (``factory`` was invoked), followers share the existing one.
        Await it as ``await asyncio.shield(task)`` so follower timeouts
        don't cancel the shared work.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            return existing, False
        task = asyncio.get_running_loop().create_task(self._lead(key, factory))
        task.add_done_callback(_retrieve)
        self._inflight[key] = task
        return task, True

    async def _lead(self, key: str, factory: Callable[[], Awaitable]):
        try:
            return await factory()
        finally:
            self._inflight.pop(key, None)
