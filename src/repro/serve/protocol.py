"""Wire protocol of the compile server: newline-delimited JSON-RPC.

One request or response per line, UTF-8 JSON, no framing beyond ``\\n``
(which ``json.dumps`` never emits).  Every message carries the protocol
tag :data:`PROTOCOL` so either side can reject a stranger speaking on the
socket, and an ``id`` echoed verbatim in the reply so clients can
pipeline requests over one connection and match replies out of order.

Requests::

    {"proto": "repro-serve/1", "id": 7, "method": "compile",
     "params": {"workload": "harris", "size": 512, "target": "cpu",
                "tile_sizes": [32, 256], "startup": "smartfuse"}}

Responses::

    {"proto": "repro-serve/1", "id": 7, "ok": true,  "result": {...}}
    {"proto": "repro-serve/1", "id": 7, "ok": false,
     "error": {"code": "compile-error", "message": "..."}}

Validation is hand-rolled (error lists, same style as
:mod:`repro.obs.schema`) and runs on *both* ends: the server validates
every request before touching the compiler, the client validates every
response before trusting it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Union

#: Protocol tag carried by every message; bump the suffix on any
#: incompatible change to the message or params layout.
PROTOCOL = "repro-serve/1"

#: Methods the server accepts.
METHODS = (
    "compile",
    "autotune",
    "partition",
    "stats",
    "watch",
    "health",
    "shutdown",
)

#: Structured error codes a response may carry.
ERROR_CODES = (
    "bad-request",      # malformed message or invalid params
    "unknown-method",   # method not in METHODS
    "compile-error",    # the compile itself failed (infeasible tiling...)
    "autotune-error",   # no feasible candidate, bad grid
    "partition-error",  # no legal multi-target assignment, bad targets
    "timeout",          # per-request timeout expired server-side
    "overloaded",       # per-client concurrency limit exceeded
    "draining",         # server is shutting down, not accepting work
    "internal",         # unexpected server-side exception
)

#: Hard cap on one message line; a compile request is a few hundred bytes,
#: a stats reply a few hundred KB — anything near this is abuse.
MAX_LINE_BYTES = 8 * 1024 * 1024

_TARGETS = ("cpu", "gpu", "npu")


class ProtocolError(ValueError):
    """A message violated the repro-serve/1 framing or schema."""


# -- construction ----------------------------------------------------------


def request(
    method: str, params: Optional[Mapping] = None, id: Union[int, str] = 0
) -> Dict[str, object]:
    return {
        "proto": PROTOCOL,
        "id": id,
        "method": method,
        "params": dict(params or {}),
    }


def ok_response(id: Union[int, str], result: Mapping) -> Dict[str, object]:
    return {"proto": PROTOCOL, "id": id, "ok": True, "result": dict(result)}


def error_response(
    id: Union[int, str, None], code: str, message: str
) -> Dict[str, object]:
    assert code in ERROR_CODES, code
    return {
        "proto": PROTOCOL,
        "id": id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


# -- framing ---------------------------------------------------------------


def encode(message: Mapping) -> bytes:
    """One message as a newline-terminated UTF-8 JSON line."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: Union[bytes, str]) -> Dict[str, object]:
    """Parse one line into a message dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"not UTF-8: {exc}")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"not JSON: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError("message is not a JSON object")
    return obj


# -- validation ------------------------------------------------------------


def _check_envelope(obj: object) -> List[str]:
    if not isinstance(obj, Mapping):
        return ["message is not an object"]
    errors = []
    if obj.get("proto") != PROTOCOL:
        errors.append(f"proto is {obj.get('proto')!r}, expected {PROTOCOL!r}")
    if not isinstance(obj.get("id"), (int, str)) or isinstance(
        obj.get("id"), bool
    ):
        errors.append(f"id must be an int or string, got {obj.get('id')!r}")
    return errors


def validate_request(obj: object) -> List[str]:
    """Errors in a request message (empty list = valid)."""
    errors = _check_envelope(obj)
    if not isinstance(obj, Mapping):
        return errors
    method = obj.get("method")
    if not isinstance(method, str):
        errors.append(f"method must be a string, got {method!r}")
        return errors
    params = obj.get("params", {})
    if not isinstance(params, Mapping):
        errors.append("params must be an object")
        return errors
    if method in METHODS:
        errors.extend(validate_params(method, params))
    return errors


def validate_params(method: str, params: Mapping) -> List[str]:
    """Errors in one method's params (empty list = valid)."""
    errors: List[str] = []

    def _opt_int(key, minimum=1):
        v = params.get(key)
        if v is None:
            return
        if not isinstance(v, int) or isinstance(v, bool) or v < minimum:
            errors.append(f"{key} must be an int >= {minimum}, got {v!r}")

    if method in ("compile", "autotune", "partition"):
        workload = params.get("workload")
        if not isinstance(workload, str) or not workload:
            errors.append(f"workload must be a non-empty string, got {workload!r}")
        _opt_int("size")
        target = params.get("target", "cpu")
        if target not in _TARGETS:
            errors.append(f"target must be one of {_TARGETS}, got {target!r}")
        startup = params.get("startup", "smartfuse")
        if not isinstance(startup, str):
            errors.append(f"startup must be a string, got {startup!r}")
        trace = params.get("trace")
        if trace is not None:
            # Optional distributed-trace context; an absent field is the
            # pre-trace wire format and stays valid (back-compat).
            from ..obs.distributed import validate_trace_field

            errors.extend(validate_trace_field(trace))
    if method == "watch":
        _opt_int("since", minimum=0)
        limit = params.get("limit")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 1
        ):
            errors.append(f"limit must be an int >= 1, got {limit!r}")
    if method == "compile":
        tiles = params.get("tile_sizes")
        if tiles is not None and (
            not isinstance(tiles, (list, tuple))
            or not tiles
            or any(
                not isinstance(t, int) or isinstance(t, bool) or t <= 0
                for t in tiles
            )
        ):
            errors.append(
                f"tile_sizes must be a non-empty array of positive ints, "
                f"got {tiles!r}"
            )
    if method == "partition":
        targets = params.get("targets")
        if targets is not None and (
            not isinstance(targets, (list, tuple))
            or not targets
            or any(t not in _TARGETS for t in targets)
        ):
            errors.append(
                f"targets must be a non-empty array drawn from {_TARGETS}, "
                f"got {targets!r}"
            )
    if method == "autotune":
        candidates = params.get("candidates")
        if candidates is not None and (
            not isinstance(candidates, (list, tuple))
            or not candidates
            or any(
                not isinstance(c, int) or isinstance(c, bool) or c <= 0
                for c in candidates
            )
        ):
            errors.append(
                f"candidates must be a non-empty array of positive ints, "
                f"got {candidates!r}"
            )
        _opt_int("threads")
        _opt_int("dims")
    return errors


def validate_response(obj: object) -> List[str]:
    """Errors in a response message (empty list = valid)."""
    errors = _check_envelope(obj)
    if not isinstance(obj, Mapping):
        return errors
    ok = obj.get("ok")
    if not isinstance(ok, bool):
        errors.append(f"ok must be a bool, got {ok!r}")
        return errors
    if ok:
        if not isinstance(obj.get("result"), Mapping):
            errors.append("ok response must carry a result object")
    else:
        err = obj.get("error")
        if not isinstance(err, Mapping):
            errors.append("error response must carry an error object")
        else:
            if err.get("code") not in ERROR_CODES:
                errors.append(f"unknown error code {err.get('code')!r}")
            if not isinstance(err.get("message"), str):
                errors.append("error message must be a string")
    return errors
