"""``repro.serve`` — a long-lived compile server with warm state.

Batch mode (:func:`repro.service.compile_batch`) amortizes work *within*
one process invocation; this package amortizes it *across* invocations.
A daemon keeps the in-memory LRU, the presburger memo tables and the
metrics registry hot, deduplicates identical in-flight requests
(single-flight), and answers a live ``repro-metrics/1`` snapshot on its
``stats`` endpoint.

* :mod:`protocol` — the ``repro-serve/1`` newline-delimited JSON-RPC wire
  format, validated on both ends;
* :mod:`singleflight` — key-addressed dedup of concurrent work;
* :mod:`server` — the asyncio daemon (:class:`CompileServer`), its config
  and a background-thread harness (:class:`ServerThread`);
* :mod:`client` — the blocking :class:`ServeClient` library.

``protocol`` is imported eagerly (tiny, stdlib-only); the server and
client load lazily on first attribute access so ``import repro.serve``
stays cheap.
"""

from __future__ import annotations

from . import protocol
from .protocol import PROTOCOL

__all__ = [
    "CompileServer",
    "PROTOCOL",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "SingleFlight",
    "default_socket_path",
    "protocol",
    "wait_for_server",
]

_LAZY = {
    "CompileServer": ("server", "CompileServer"),
    "ServeConfig": ("server", "ServeConfig"),
    "ServerThread": ("server", "ServerThread"),
    "default_socket_path": ("server", "default_socket_path"),
    "ServeClient": ("client", "ServeClient"),
    "ServeError": ("client", "ServeError"),
    "wait_for_server": ("client", "wait_for_server"),
    "SingleFlight": ("singleflight", "SingleFlight"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
