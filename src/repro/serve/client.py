"""Blocking client for the repro compile server.

Plain sockets and :mod:`repro.serve.protocol` — no asyncio on the client
side, so scripts, benchmarks and tests call the daemon like a function::

    with ServeClient(socket_path="/tmp/serve.sock") as client:
        out = client.compile("harris", size=512)
        print(out["fingerprint"], out["from_cache"])

Each :class:`ServeClient` holds one connection; it is safe to share
across threads (a lock serializes request/reply pairs on the wire — the
*server* interleaves work internally, so N threads still exercise
single-flight dedup through N separate clients, which is what
``bench_serve.py`` does).  Structured server errors surface as
:class:`ServeError` carrying the protocol error code.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Mapping, Optional

from . import protocol
from ..obs import distributed


class ServeError(RuntimeError):
    """A structured error reply from the server (or a broken reply)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One connection to a compile server, unix-socket or TCP."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 600.0,
    ):
        if socket_path is None and host is None:
            raise ValueError("need a socket_path or a host/port")
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        else:
            sock = socket.create_connection((host, port or 0), timeout=timeout)
        self._sock = sock
        self._file = sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------

    def call(self, method: str, params: Optional[Mapping] = None) -> dict:
        """One request/reply round trip; returns the ``result`` object."""
        with self._lock:
            self._next_id += 1
            rid = self._next_id
            self._sock.sendall(
                protocol.encode(protocol.request(method, params, id=rid))
            )
            line = self._file.readline()
        if not line:
            raise ServeError("internal", "server closed the connection")
        reply = protocol.decode(line)
        errors = protocol.validate_response(reply)
        if errors:
            raise ServeError("internal", "bad response: " + "; ".join(errors))
        if reply["id"] != rid:
            raise ServeError(
                "internal", f"response id {reply['id']!r} != request id {rid!r}"
            )
        if not reply["ok"]:
            err = reply["error"]
            raise ServeError(err["code"], err["message"])
        return reply["result"]

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- verbs -------------------------------------------------------------

    def compile(
        self,
        workload: str,
        size: Optional[int] = None,
        target: str = "cpu",
        tile_sizes=None,
        startup: str = "smartfuse",
        trace: Optional[distributed.TraceContext] = None,
    ) -> dict:
        """Compile via the daemon.

        ``trace`` attaches a distributed-trace context (mint one with
        :meth:`new_trace`); a sampled context makes the daemon return its
        span tree in the result's ``trace`` field for stitching.
        """
        params = {"workload": workload, "target": target, "startup": startup}
        if size is not None:
            params["size"] = size
        if tile_sizes is not None:
            params["tile_sizes"] = list(tile_sizes)
        if trace is not None:
            params["trace"] = trace.to_wire()
        return self.call("compile", params)

    def autotune(
        self,
        workload: str,
        size: Optional[int] = None,
        target: str = "cpu",
        threads: Optional[int] = None,
        candidates=None,
        dims: Optional[int] = None,
        startup: str = "smartfuse",
        trace: Optional[distributed.TraceContext] = None,
    ) -> dict:
        params = {"workload": workload, "target": target, "startup": startup}
        if size is not None:
            params["size"] = size
        if threads is not None:
            params["threads"] = threads
        if candidates is not None:
            params["candidates"] = list(candidates)
        if dims is not None:
            params["dims"] = dims
        if trace is not None:
            params["trace"] = trace.to_wire()
        return self.call("autotune", params)

    def partition(
        self,
        workload: str,
        size: Optional[int] = None,
        targets=None,
        startup: str = "smartfuse",
        trace: Optional[distributed.TraceContext] = None,
    ) -> dict:
        params = {"workload": workload, "startup": startup}
        if size is not None:
            params["size"] = size
        if targets is not None:
            params["targets"] = list(targets)
        if trace is not None:
            params["trace"] = trace.to_wire()
        return self.call("partition", params)

    @staticmethod
    def new_trace(sampled: bool = True) -> distributed.TraceContext:
        """Mint a fresh trace context for a traced request."""
        return distributed.new_context(sampled=sampled)

    def stats(self) -> dict:
        return self.call("stats")

    def watch(self, since: int = 0, limit: Optional[int] = None) -> dict:
        """Telemetry samples newer than ``since`` from the daemon's ring."""
        params = {"since": since}
        if limit is not None:
            params["limit"] = limit
        return self.call("watch", params)

    def health(self) -> dict:
        return self.call("health")

    def shutdown(self) -> dict:
        return self.call("shutdown")


def wait_for_server(
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    timeout: float = 10.0,
    interval: float = 0.05,
) -> None:
    """Block until a server answers ``health`` on the endpoint.

    Raises :class:`TimeoutError` if none does within ``timeout`` seconds —
    the handshake ``repro client --wait`` and the CI smoke job rely on.
    """
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(
                socket_path=socket_path, host=host, port=port, timeout=5.0
            ) as client:
                client.health()
                return
        except (OSError, ServeError) as exc:
            last = exc
            time.sleep(interval)
    where = socket_path or f"{host}:{port}"
    raise TimeoutError(f"no compile server answering at {where} ({last!r})")
