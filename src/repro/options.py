"""CompileOptions: one validated bundle for every compile entry point.

``optimize``, ``cached_optimize``, ``compile_batch`` and
``autotune_tile_sizes`` historically each grew their own ``target=`` /
``tile_sizes=`` / ``mode=`` keyword spellings with slightly different
validation (or none).  :class:`CompileOptions` is the single normalization
path: construct it once, pass it everywhere, and every entry point sees the
same resolved :class:`~repro.core.tile_shapes.TargetSpec`, coerced tile-size
tuple and checked dispatch mode.  The legacy keywords remain as thin shims
that build a ``CompileOptions`` internally, so existing callers keep
working unchanged.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class CompileOptions:
    """Validated, immutable compile-time knobs.

    ``target`` accepts a target name (``"cpu"``/``"gpu"``/``"npu"``) or a
    :class:`~repro.core.tile_shapes.TargetSpec` and is normalized to the
    spec.  ``tile_sizes`` applies to the live-out spaces only and is
    coerced to a tuple of positive ints.  ``startup`` picks the start-up
    fusion heuristic.  ``mode``/``jobs``/``cache`` configure the batch
    driver: dispatch strategy, worker count and an optional
    :class:`~repro.service.CompileCache`.  ``cache`` also accepts a
    string, :class:`os.PathLike` or mapping: ``"default"`` for the
    process-wide cache, a bare name for a named cache under the default
    cache directory, a directory path, a ``tiered:<local>|<remote>`` /
    ``http://host:port`` fabric spec, or a ``{"local": ..., "remote":
    ...}`` mapping (all resolved via
    :func:`~repro.service.cache.resolve_cache`).
    """

    target: Union[str, object] = "cpu"
    tile_sizes: Optional[Sequence[int]] = None
    startup: str = "smartfuse"
    mode: str = "auto"
    jobs: Optional[int] = None
    cache: Optional[object] = None

    def __post_init__(self):
        from .core.tile_shapes import TARGETS, TargetSpec
        from .scheduler import HEURISTICS
        from .service.driver import MODES

        target = self.target
        if isinstance(target, str):
            if target not in TARGETS:
                raise ValueError(
                    f"unknown target {target!r}; choose from {tuple(TARGETS)}"
                )
            target = TARGETS[target]
        elif not isinstance(target, TargetSpec):
            raise TypeError(
                f"target must be a target name or TargetSpec, got {target!r}"
            )
        object.__setattr__(self, "target", target)

        if self.tile_sizes is not None:
            sizes = tuple(int(s) for s in self.tile_sizes)
            if not sizes or any(s <= 0 for s in sizes):
                raise ValueError(
                    f"tile_sizes must be positive ints, got {self.tile_sizes!r}"
                )
            object.__setattr__(self, "tile_sizes", sizes)

        if self.startup not in HEURISTICS:
            raise ValueError(
                f"unknown startup heuristic {self.startup!r}; "
                f"choose from {HEURISTICS}"
            )
        if self.mode not in MODES:
            raise ValueError(
                f"unknown dispatch mode {self.mode!r}; choose from {MODES}"
            )
        if self.jobs is not None:
            jobs = int(self.jobs)
            if jobs < 1:
                raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
            object.__setattr__(self, "jobs", jobs)

        if isinstance(self.cache, (str, os.PathLike, Mapping)):
            from .service.cache import resolve_cache

            object.__setattr__(self, "cache", resolve_cache(self.cache))

    @property
    def target_name(self) -> str:
        return self.target.name

    def replace(self, **changes) -> "CompileOptions":
        """A copy with the given fields changed (and re-validated)."""
        return dataclasses.replace(self, **changes)


def resolve_options(
    options: Optional[CompileOptions] = None,
    **legacy,
) -> CompileOptions:
    """The one legacy-keyword funnel shared by every entry point.

    With ``options`` given, any explicitly-passed legacy keyword is an
    error — mixing the two spellings silently prefers one and has bitten
    every API that allowed it.  Without ``options``, the legacy keywords
    (minus ``None`` placeholders for defaulted fields) build one.
    """
    supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
    if options is not None:
        if supplied:
            raise TypeError(
                "pass either options= or legacy keywords, not both: "
                f"{sorted(supplied)}"
            )
        return options
    return CompileOptions(**supplied)


class _Unset:
    def __repr__(self) -> str:  # pragma: no cover
        return "<unset>"


#: Sentinel distinguishing "keyword not passed" from an explicit ``None``.
_UNSET = _Unset()
