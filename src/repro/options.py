"""The options layer: one validated bundle per entry-point family.

``optimize``, ``cached_optimize``, ``compile_batch`` and
``autotune_tile_sizes`` historically each grew their own ``target=`` /
``tile_sizes=`` / ``mode=`` keyword spellings with slightly different
validation (or none).  :class:`CompileOptions` is the single configuration
path: construct it once, pass it everywhere, and every entry point sees the
same resolved :class:`~repro.core.tile_shapes.TargetSpec`, coerced tile-size
tuple and checked dispatch mode.  The per-keyword spellings are gone; a
caller that still passes one gets a ``TypeError`` naming the removed
keyword and pointing at ``CompileOptions``.

:class:`PartitionOptions` is the analogous bundle for the heterogeneous
partitioner (:func:`repro.partition.partition_pipeline`): an ordered set
of candidate targets plus the per-partition compile knobs and the
transfer-cost model used to price cut edges.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class CompileOptions:
    """Validated, immutable compile-time knobs.

    ``target`` accepts a target name (``"cpu"``/``"gpu"``/``"npu"``) or a
    :class:`~repro.core.tile_shapes.TargetSpec` and is normalized to the
    spec.  ``tile_sizes`` applies to the live-out spaces only and is
    coerced to a tuple of positive ints.  ``startup`` picks the start-up
    fusion heuristic.  ``mode``/``jobs``/``cache`` configure the batch
    driver: dispatch strategy, worker count and an optional
    :class:`~repro.service.CompileCache`.  ``cache`` also accepts a
    string, :class:`os.PathLike` or mapping: ``"default"`` for the
    process-wide cache, a bare name for a named cache under the default
    cache directory, a directory path, a ``tiered:<local>|<remote>`` /
    ``http://host:port`` fabric spec, or a ``{"local": ..., "remote":
    ...}`` mapping (all resolved via
    :func:`~repro.service.cache.resolve_cache`).  ``trace_sample`` is the
    head-sampling probability for distributed traces minted on behalf of
    this compile (1.0 = always trace, 0.0 = never; sampled-out requests
    pay only the null-span fast path).
    """

    target: Union[str, object] = "cpu"
    tile_sizes: Optional[Sequence[int]] = None
    startup: str = "smartfuse"
    mode: str = "auto"
    jobs: Optional[int] = None
    cache: Optional[object] = None
    trace_sample: float = 1.0

    def __post_init__(self):
        from .core.tile_shapes import TARGETS, TargetSpec
        from .scheduler import HEURISTICS
        from .service.driver import MODES

        target = self.target
        if isinstance(target, str):
            if target not in TARGETS:
                raise ValueError(
                    f"unknown target {target!r}; choose from {tuple(TARGETS)}"
                )
            target = TARGETS[target]
        elif not isinstance(target, TargetSpec):
            raise TypeError(
                f"target must be a target name or TargetSpec, got {target!r}"
            )
        object.__setattr__(self, "target", target)

        if self.tile_sizes is not None:
            sizes = tuple(int(s) for s in self.tile_sizes)
            if not sizes or any(s <= 0 for s in sizes):
                raise ValueError(
                    f"tile_sizes must be positive ints, got {self.tile_sizes!r}"
                )
            object.__setattr__(self, "tile_sizes", sizes)

        if self.startup not in HEURISTICS:
            raise ValueError(
                f"unknown startup heuristic {self.startup!r}; "
                f"choose from {HEURISTICS}"
            )
        if self.mode not in MODES:
            raise ValueError(
                f"unknown dispatch mode {self.mode!r}; choose from {MODES}"
            )
        if self.jobs is not None:
            jobs = int(self.jobs)
            if jobs < 1:
                raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
            object.__setattr__(self, "jobs", jobs)

        if isinstance(self.cache, (str, os.PathLike, Mapping)):
            from .service.cache import resolve_cache

            object.__setattr__(self, "cache", resolve_cache(self.cache))

        rate = float(self.trace_sample)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {self.trace_sample!r}"
            )
        object.__setattr__(self, "trace_sample", rate)

    @property
    def target_name(self) -> str:
        return self.target.name

    def replace(self, **changes) -> "CompileOptions":
        """A copy with the given fields changed (and re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class PartitionOptions:
    """Validated, immutable knobs for the heterogeneous partitioner.

    ``targets`` is the ordered set of candidate targets the beam search
    may assign stages to — names or
    :class:`~repro.core.tile_shapes.TargetSpec`\\ s, normalized to specs
    with duplicates dropped.  ``tile_sizes``/``startup``/``cache`` are the
    per-partition compile knobs (each partition compiles through the
    standard :func:`~repro.core.optimize` path with exactly these values,
    which is what makes the single-target case bit-identical to a plain
    compile).  ``threads`` feeds the CPU cost model, ``beam_width`` bounds
    the assignment search, and ``transfer`` is the
    :class:`~repro.machine.transfer.TransferSpec` pricing cut edges
    (``None`` selects the default interconnect model).
    """

    targets: Sequence[Union[str, object]] = ("cpu", "gpu", "npu")
    tile_sizes: Optional[Sequence[int]] = None
    startup: str = "smartfuse"
    threads: int = 32
    beam_width: int = 8
    transfer: Optional[object] = None
    cache: Optional[object] = None

    def __post_init__(self):
        from .core.tile_shapes import TARGETS, TargetSpec
        from .machine.transfer import DEFAULT_TRANSFER, TransferSpec
        from .scheduler import HEURISTICS

        if isinstance(self.targets, (str, TargetSpec)):
            targets = (self.targets,)
        else:
            targets = tuple(self.targets)
        specs = []
        for t in targets:
            if isinstance(t, str):
                if t not in TARGETS:
                    raise ValueError(
                        f"unknown target {t!r}; choose from {tuple(TARGETS)}"
                    )
                t = TARGETS[t]
            elif not isinstance(t, TargetSpec):
                raise TypeError(
                    f"targets must be target names or TargetSpecs, got {t!r}"
                )
            if t not in specs:
                specs.append(t)
        if not specs:
            raise ValueError("targets must name at least one target")
        object.__setattr__(self, "targets", tuple(specs))

        if self.tile_sizes is not None:
            sizes = tuple(int(s) for s in self.tile_sizes)
            if not sizes or any(s <= 0 for s in sizes):
                raise ValueError(
                    f"tile_sizes must be positive ints, got {self.tile_sizes!r}"
                )
            object.__setattr__(self, "tile_sizes", sizes)

        if self.startup not in HEURISTICS:
            raise ValueError(
                f"unknown startup heuristic {self.startup!r}; "
                f"choose from {HEURISTICS}"
            )
        threads = int(self.threads)
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads!r}")
        object.__setattr__(self, "threads", threads)
        beam = int(self.beam_width)
        if beam < 1:
            raise ValueError(f"beam_width must be >= 1, got {self.beam_width!r}")
        object.__setattr__(self, "beam_width", beam)

        transfer = self.transfer if self.transfer is not None else DEFAULT_TRANSFER
        if not isinstance(transfer, TransferSpec):
            raise TypeError(
                f"transfer must be a TransferSpec or None, got {self.transfer!r}"
            )
        object.__setattr__(self, "transfer", transfer)

        if isinstance(self.cache, (str, os.PathLike, Mapping)):
            from .service.cache import resolve_cache

            object.__setattr__(self, "cache", resolve_cache(self.cache))

    @property
    def target_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.targets)

    def compile_options(self, target) -> CompileOptions:
        """The :class:`CompileOptions` one partition compiles with."""
        return CompileOptions(
            target=target,
            tile_sizes=self.tile_sizes,
            startup=self.startup,
            cache=self.cache,
        )

    def replace(self, **changes) -> "PartitionOptions":
        """A copy with the given fields changed (and re-validated)."""
        return dataclasses.replace(self, **changes)


def resolve_options(
    options: Optional[CompileOptions],
    entry: str = "this entry point",
    **removed,
) -> CompileOptions:
    """Normalize one entry point's ``options=`` argument.

    ``options`` must be a :class:`CompileOptions` or ``None`` (the
    defaults).  Entry points forward any unexpected keyword here as
    ``**removed`` so callers of the retired per-keyword configuration get
    a pointed migration error instead of a bare ``unexpected keyword``.
    """
    if removed:
        names = ", ".join(sorted(removed))
        raise TypeError(
            f"{entry}() no longer accepts per-keyword configuration "
            f"({names}); construct repro.CompileOptions(...) and pass it "
            f"as options="
        )
    if options is None:
        return CompileOptions()
    if not isinstance(options, CompileOptions):
        raise TypeError(
            f"options must be a repro.CompileOptions or None, "
            f"got {options!r}"
        )
    return options
