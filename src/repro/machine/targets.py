"""One cost interface over the three machine models.

The CPU, GPU and NPU models each expose ``cluster_time``/``program_time``
with target-specific signatures (the CPU model wants a thread count).
The heterogeneous partitioner needs to price the *same*
:class:`~repro.machine.cost.ClusterWork` on every target, so this module
provides the uniform spelling:

    program_cost(work, "npu")          # seconds on the NPU model
    cluster_cost(cluster, "cpu", 16)   # one cluster, 16 threads

``target`` accepts a target name or a
:class:`~repro.core.tile_shapes.TargetSpec`.
"""

from __future__ import annotations

from typing import Union

from . import cpu as _cpu
from . import gpu as _gpu
from . import npu as _npu
from .cost import ClusterWork, ProgramWork

#: Names the dispatch accepts, in canonical order.
COST_TARGETS = ("cpu", "gpu", "npu")


def _target_name(target: Union[str, object]) -> str:
    name = target if isinstance(target, str) else getattr(target, "name", None)
    if name not in COST_TARGETS:
        raise ValueError(
            f"unknown cost-model target {target!r}; "
            f"choose from {COST_TARGETS}"
        )
    return name


def cluster_cost(
    work: ClusterWork, target: Union[str, object], threads: int = 32
) -> float:
    """Modeled seconds of one fusion cluster on ``target``."""
    name = _target_name(target)
    if name == "cpu":
        return _cpu.cluster_time(work, threads)
    if name == "gpu":
        return _gpu.cluster_time(work)
    return _npu.cluster_time(work)


def program_cost(
    work: ProgramWork, target: Union[str, object], threads: int = 32
) -> float:
    """Modeled seconds of a whole analyzed schedule on ``target``."""
    name = _target_name(target)
    if name == "cpu":
        return _cpu.program_time(work, threads)
    if name == "gpu":
        return _gpu.program_time(work)
    return _npu.program_time(work)
