"""Inter-target transfer-cost model for heterogeneous partitioning.

When a pipeline is split across targets, every tensor region that crosses
a partition boundary rides an interconnect link: host DDR to the GPU's
global memory, host to the NPU's HBM, or device to device.  The
partitioner prices each cut edge as

    latency + bytes / bandwidth

where ``bytes`` is the *exact* Presburger count of the upwards-exposed
region of the tensor at the cut (not the whole tensor), times the element
size.  The defaults model an NVLink/CXL-class coherent interconnect; the
classic PCIe-gen3 numbers are provided as an alternative spec for
experiments on transfer sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple


@dataclass(frozen=True)
class LinkSpec:
    """One bidirectional link between two memory spaces."""

    bandwidth_gbs: float
    latency_s: float

    def seconds(self, nbytes: float) -> float:
        if nbytes <= 0:
            return 0.0
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


def _links(
    bw: float, lat: float, names: Tuple[str, ...] = ("cpu", "gpu", "npu")
) -> Dict[FrozenSet[str], LinkSpec]:
    out: Dict[FrozenSet[str], LinkSpec] = {}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            out[frozenset((a, b))] = LinkSpec(bandwidth_gbs=bw, latency_s=lat)
    return out


@dataclass(frozen=True)
class TransferSpec:
    """All pairwise links of the machine, keyed by unordered target pair."""

    name: str = "nvlink-class"
    links: Dict[FrozenSet[str], LinkSpec] = field(
        default_factory=lambda: _links(64.0, 5e-6)
    )

    def link(self, src: str, dst: str) -> LinkSpec:
        key = frozenset((src, dst))
        try:
            return self.links[key]
        except KeyError:
            raise ValueError(
                f"no link between targets {src!r} and {dst!r} "
                f"in transfer spec {self.name!r}"
            ) from None


#: Coherent accelerator fabric (NVLink / CXL class): the default the
#: partitioner prices cuts with.
DEFAULT_TRANSFER = TransferSpec()

#: The conservative alternative: staging over PCIe gen3.
PCIE_TRANSFER = TransferSpec(name="pcie-gen3", links=_links(12.0, 15e-6))


def transfer_time(
    src: str, dst: str, nbytes: float, spec: TransferSpec = DEFAULT_TRANSFER
) -> float:
    """Seconds to move ``nbytes`` from ``src``'s memory to ``dst``'s."""
    if src == dst:
        return 0.0
    return spec.link(src, dst).seconds(nbytes)
