"""``repro.machine`` — analytical machine models (CPU / GPU / NPU)."""

from .cost import (
    ClusterWork,
    ITEMSIZE,
    ProgramWork,
    analyze_optimized,
    analyze_scheduled,
    work_features,
)
from .cpu import CPUSpec, DEFAULT_CPU, cluster_time as cpu_cluster_time
from .cpu import program_time as cpu_time
from .cpu import speedup_over
from .gpu import DEFAULT_GPU, GPUSpec
from .gpu import program_time as gpu_time
from .npu import ConvLayer, DEFAULT_NPU, NPUSpec, conv_bn_time, network_time
from .roofline import RooflinePoint, intensity_gain, roofline

__all__ = [
    "CPUSpec",
    "ClusterWork",
    "ConvLayer",
    "DEFAULT_CPU",
    "DEFAULT_GPU",
    "DEFAULT_NPU",
    "GPUSpec",
    "ITEMSIZE",
    "NPUSpec",
    "ProgramWork",
    "RooflinePoint",
    "analyze_optimized",
    "analyze_scheduled",
    "conv_bn_time",
    "cpu_cluster_time",
    "cpu_time",
    "gpu_time",
    "intensity_gain",
    "network_time",
    "roofline",
    "speedup_over",
    "work_features",
]
