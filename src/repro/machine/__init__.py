"""``repro.machine`` — analytical machine models (CPU / GPU / NPU)."""

from .cost import (
    ClusterWork,
    ITEMSIZE,
    ProgramWork,
    analyze_optimized,
    analyze_scheduled,
    work_features,
)
from .cpu import CPUSpec, DEFAULT_CPU, cluster_time as cpu_cluster_time
from .cpu import program_time as cpu_time
from .cpu import speedup_over
from .gpu import DEFAULT_GPU, GPUSpec
from .gpu import program_time as gpu_time
from .npu import ConvLayer, DEFAULT_NPU, NPUSpec, conv_bn_time, network_time
from .npu import program_time as npu_time
from .roofline import RooflinePoint, intensity_gain, roofline
from .targets import COST_TARGETS, cluster_cost, program_cost
from .transfer import (
    DEFAULT_TRANSFER,
    LinkSpec,
    PCIE_TRANSFER,
    TransferSpec,
    transfer_time,
)

__all__ = [
    "COST_TARGETS",
    "CPUSpec",
    "ClusterWork",
    "ConvLayer",
    "DEFAULT_CPU",
    "DEFAULT_GPU",
    "DEFAULT_NPU",
    "DEFAULT_TRANSFER",
    "GPUSpec",
    "ITEMSIZE",
    "LinkSpec",
    "NPUSpec",
    "PCIE_TRANSFER",
    "ProgramWork",
    "RooflinePoint",
    "TransferSpec",
    "analyze_optimized",
    "analyze_scheduled",
    "cluster_cost",
    "conv_bn_time",
    "cpu_cluster_time",
    "cpu_time",
    "gpu_time",
    "intensity_gain",
    "network_time",
    "npu_time",
    "program_cost",
    "roofline",
    "speedup_over",
    "transfer_time",
    "work_features",
]
