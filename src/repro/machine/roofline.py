"""Roofline summaries: where each fusion cluster sits on the machine.

For every cluster: operational intensity (ops per DRAM byte), the machine
balance point, and whether the cluster is compute- or memory-bound.  The
paper's whole argument is a roofline argument — post-tiling fusion raises
operational intensity by keeping intermediates out of DRAM — so this view
makes the mechanism inspectable per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cost import ProgramWork
from .cpu import CPUSpec, DEFAULT_CPU


@dataclass
class RooflinePoint:
    cluster: str
    ops: float
    dram_bytes: float
    intensity: float          # ops / DRAM byte (inf if traffic-free)
    machine_balance: float    # ops/byte at which compute == bandwidth
    bound: str                # "compute" | "memory"

    def __str__(self):
        return (
            f"{self.cluster}: {self.intensity:.2f} ops/B "
            f"(balance {self.machine_balance:.2f}) -> {self.bound}-bound"
        )


def roofline(
    work: ProgramWork, spec: CPUSpec = DEFAULT_CPU, threads: int = 32
) -> List[RooflinePoint]:
    threads = max(1, min(threads, spec.cores))
    peak_flops = threads * spec.freq_ghz * 1e9 * spec.ops_per_cycle * spec.simd_width
    bw = min(spec.dram_bw_gbs, spec.per_core_bw_gbs * threads) * 1e9
    balance = peak_flops / bw
    points = []
    for c in work.clusters:
        traffic = c.total_dram_bytes()
        intensity = float("inf") if traffic == 0 else c.ops / traffic
        points.append(
            RooflinePoint(
                cluster=c.name,
                ops=c.ops,
                dram_bytes=traffic,
                intensity=intensity,
                machine_balance=balance,
                bound="compute" if intensity >= balance else "memory",
            )
        )
    return points


def intensity_gain(
    fused: ProgramWork, unfused: ProgramWork
) -> Optional[float]:
    """How much fusion raised whole-program operational intensity."""
    fb = fused.total_dram_bytes()
    ub = unfused.total_dram_bytes()
    if fb == 0 or ub == 0:
        return None
    return (fused.total_ops() / fb) / (unfused.total_ops() / ub)
