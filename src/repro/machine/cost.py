"""Cost analysis: from schedule structures to abstract machine work.

The analytical machine models need, per fusion cluster (one top-level tiled
loop nest = one parallel region / one GPU kernel):

* arithmetic work, including overlapped-tile recomputation;
* DRAM traffic (per-tile footprints of unpromoted tensors, halo included);
* fast-memory traffic for promoted intermediates;
* available parallelism (tiles along coincident dimensions);
* per-tile scratch requirements.

Every quantity is derived from the same exact affine relations the
optimizer manipulates — footprint relation (4), extension schedules (6) —
evaluated at a representative interior tile.  Large-domain instance counts
use bounding boxes (exact for the rectangular domains that dominate the
benchmarks; a uniform over-approximation otherwise), which keeps analysis
cost independent of problem size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..codegen.promotion import promoted_buffers, representative_tile_origin
from ..core import OptimizeResult, TILE_TUPLE, tile_footprint
from ..ir import Program
from ..scheduler import FusionGroup, Scheduled

ITEMSIZE = 8  # float64 everywhere


@dataclass
class ClusterWork:
    """Abstract work of one fusion cluster (one kernel / parallel region)."""

    name: str
    statements: List[str]
    ops: float                       # arithmetic ops incl. recomputation
    recompute_ops: float             # the subset that is recomputation
    dram_read_bytes: float
    dram_write_bytes: float
    scratch_traffic_bytes: float     # promoted-buffer traffic
    n_tiles: int
    parallel_units: int              # independent work items (tiles/iters)
    n_parallel_dims: int
    scratch_bytes_per_tile: int
    vectorizable: bool
    ifs_in_body: bool = False        # maxfuse-style guarded bodies
    #: permutable but non-coincident bands: a GPU backend can still mine
    #: wavefront (diagonal) parallelism at poor utilisation
    wavefront: bool = False

    def total_dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes


@dataclass
class ProgramWork:
    clusters: List[ClusterWork]

    def total_ops(self) -> float:
        return sum(c.ops for c in self.clusters)

    def total_dram_bytes(self) -> float:
        return sum(c.total_dram_bytes() for c in self.clusters)

    def total_recompute(self) -> float:
        return sum(c.recompute_ops for c in self.clusters)


def work_features(work: ProgramWork) -> Dict[str, float]:
    """The cost-model internals of one analyzed schedule as a flat,
    name-stable feature dict (the ``work`` section of an autotune dataset
    record, :mod:`repro.data`): per-candidate footprint, traffic, reuse
    and parallelism aggregates a learned ranker can train against.
    """
    clusters = work.clusters
    n = len(clusters)
    ops = work.total_ops()
    dram = work.total_dram_bytes()
    scratch = sum(c.scratch_traffic_bytes for c in clusters)
    return {
        "n_clusters": float(n),
        "ops": ops,
        "recompute_ops": work.total_recompute(),
        "recompute_ratio": work.total_recompute() / ops if ops else 0.0,
        "dram_read_bytes": sum(c.dram_read_bytes for c in clusters),
        "dram_write_bytes": sum(c.dram_write_bytes for c in clusters),
        "dram_bytes": dram,
        "scratch_traffic_bytes": scratch,
        # operational intensity and scratch reuse: the two quantities the
        # roofline models pivot on
        "intensity": ops / dram if dram else 0.0,
        "scratch_reuse": scratch / dram if dram else 0.0,
        "n_tiles": float(sum(c.n_tiles for c in clusters)),
        "parallel_units_min": float(min((c.parallel_units for c in clusters), default=0)),
        "parallel_units_max": float(max((c.parallel_units for c in clusters), default=0)),
        "scratch_bytes_per_tile_max": float(
            max((c.scratch_bytes_per_tile for c in clusters), default=0)
        ),
        "vectorizable_frac": (
            sum(1.0 for c in clusters if c.vectorizable) / n if n else 0.0
        ),
    }


# ---------------------------------------------------------------------------
# helpers


def _domain_volume(program: Program, stmt_name: str, params) -> int:
    stmt = program.statement(stmt_name)
    dom = stmt.domain.fix_params(params)
    total = 0
    for piece in dom.pieces:
        total += piece.box_volume()
    return total


def _group_ops(program: Program, group: FusionGroup, params) -> float:
    return float(
        sum(
            _domain_volume(program, s, params)
            * program.statement(s).ops_per_instance()
            for s in group.statements
        )
    )


def _band_extents(
    program: Program, group: FusionGroup, params
) -> List[int]:
    """Extent of each outer band dimension over the group's statements."""
    extents = [0] * group.depth
    for s in group.statements:
        stmt = program.statement(s)
        box = {}
        for piece in stmt.domain.fix_params(params).pieces:
            for dim, (lo, hi) in piece.bounding_box().items():
                if dim in box:
                    olo, ohi = box[dim]
                    box[dim] = (min(lo, olo), max(hi, ohi))
                else:
                    box[dim] = (lo, hi)
        for d in range(group.depth):
            row = group.rows[s][d]
            lo = hi = row.const
            for sym, c in row.coeffs.items():
                slo, shi = box.get(sym, (0, 0))
                lo += c * (slo if c > 0 else shi)
                hi += c * (shi if c > 0 else slo)
            extents[d] = max(extents[d], hi - lo + 1)
    return extents


def _tensor_bytes(program: Program, tensor: str, params) -> int:
    return program.tensors[tensor].size_elems(params) * ITEMSIZE


def _per_tile_read_bytes(
    program: Program,
    group: FusionGroup,
    tile_sizes,
    tile_dims,
    tensors: Sequence[str],
    origin,
    params,
) -> Dict[str, float]:
    """Per-tile footprint bytes of each read tensor (box approximation)."""
    out: Dict[str, float] = {}
    if not tensors:
        return out
    fp = tile_footprint(program, group, tile_sizes, list(tensors), tile_dims)
    for tensor in tensors:
        m = fp.get((TILE_TUPLE, tensor))
        if m is None:
            out[tensor] = 0.0
            continue
        image = m.fix_params(params).image_of_point(origin)
        vol = 0
        for piece in image.pieces:
            vol = max(vol, piece.box_volume()) if piece.constraints else vol
        # Union box across pieces:
        box = image.bounding_box()
        total = 1
        for lo, hi in box.values():
            if lo is None or hi is None:
                total = 0
                break
            total *= max(hi - lo + 1, 0)
        out[tensor] = float(total * ITEMSIZE)
    return out


# ---------------------------------------------------------------------------
# analyzers


def analyze_optimized(
    result: OptimizeResult,
    params: Optional[Mapping[str, int]] = None,
    overlap: str = "exact",
) -> ProgramWork:
    """Work model of a post-tiling-fused schedule.

    ``overlap`` selects the recomputation model for fused intermediates:

    * ``"exact"`` — the paper's approach: each stage recomputes exactly its
      upwards-exposed footprint (relation 6);
    * ``"box_total"`` — PolyMage-style over-approximation: every fused
      stage is grown to the widest per-dimension halo of the whole group
      (tiling-after-fusion cannot see per-stage footprints).
    """
    if overlap not in ("exact", "box_total"):
        raise ValueError(f"unknown overlap policy {overlap!r}")
    program = result.program
    params = dict(program.params, **(params or {}))
    buffers = promoted_buffers(result, params)
    clusters: List[ClusterWork] = []
    readers_by_tensor = _readers_by_cluster(program, result)
    for entry in result.mixed.tiling_entries():
        group = entry.group
        exts = result.mixed.extensions_of(group)
        cluster_stmts = list(group.statements) + [
            s for e in exts for s in e.group.statements
        ]
        written_here = {
            program.statement(s).tensor_written() for s in cluster_stmts
        }
        promoted = {
            program.statement(s).tensor_written()
            for e in exts
            for s in e.group.statements
        }

        extents = _band_extents(program, group, params)
        if entry.is_tiled:
            sizes = entry.tile_sizes
            tiles_per_dim = [
                -(-extents[d] // sizes[d]) for d in range(len(sizes))
            ]
            n_tiles = int(np.prod(tiles_per_dim)) if tiles_per_dim else 1
            par_idx = [d for d in group.parallel_dim_indices() if d < len(sizes)]
            par_dims = len(par_idx)
            parallel_units = (
                int(np.prod([tiles_per_dim[d] for d in par_idx])) if par_idx else 1
            )
            origin = representative_tile_origin(
                program, group, sizes, entry.tile_dims, params
            )
        else:
            sizes = None
            n_tiles = 1
            par_idx = group.parallel_dim_indices()
            par_dims = len(par_idx)
            parallel_units = (
                int(np.prod([extents[d] for d in par_idx])) if par_idx else 1
            )
            origin = {}

        # Arithmetic: live-out statements run exactly once; fused
        # intermediates run per tile (with halo recomputation).
        ops = _group_ops(program, group, params)
        recompute = 0.0
        ext_entries = []  # (stmt name, exact per-tile count, box extents)
        for e in exts:
            for s in e.group.statements:
                m = e.relation.get((TILE_TUPLE, s))
                if m is None:
                    continue
                if origin:
                    image = m.fix_params(params).image_of_point(origin)
                    exact = image.count_points()
                    box = image.bounding_box()
                    ext_extents = [
                        (hi - lo + 1) if lo is not None and hi is not None else 1
                        for lo, hi in box.values()
                    ]
                else:
                    exact = _domain_volume(program, s, params)
                    ext_extents = []
                ext_entries.append((s, exact, ext_extents))
        if overlap == "box_total" and ext_entries:
            # PolyMage-style: every fused stage is grown to the group-wide
            # maximal halo (per leading dimension).  Stages of different
            # rank (e.g. 4-D up/down-sampling vs. 2-D maps) live at
            # different scales and are inflated within their own rank class.
            max_ext_by_rank: Dict[int, List[int]] = {}
            for _, _, ee in ext_entries:
                rank = len(ee)
                cur = max_ext_by_rank.setdefault(rank, [1, 1])
                for d in range(min(2, rank)):
                    cur[d] = max(cur[d], ee[d])
        exact_inst = 0.0
        inflated_inst = 0.0
        for s, exact, ext_extents in ext_entries:
            per_tile = float(exact)
            if overlap == "box_total" and len(ext_extents) >= 2:
                own = max(1, ext_extents[0] * ext_extents[1])
                max_ext = max_ext_by_rank[len(ext_extents)]
                inflate = (max_ext[0] * max_ext[1]) / own
                per_tile = max(per_tile, per_tile * inflate)
            exact_inst += float(exact)
            inflated_inst += per_tile
            stmt_ops = program.statement(s).ops_per_instance()
            total = per_tile * n_tiles * stmt_ops
            base = _domain_volume(program, s, params) * stmt_ops
            ops += total
            recompute += max(0.0, total - base)
        # Looser tiles also move more data: scratch buffers and streamed
        # reads grow with the same over-approximation factor.
        traffic_inflation = (
            inflated_inst / exact_inst
            if overlap == "box_total" and exact_inst > 0
            else 1.0
        )

        # Traffic.
        read_tensors = sorted(
            {
                t
                for s in cluster_stmts
                for t in program.statement(s).tensors_read()
            }
        )
        dram_read_tensors = [
            t for t in read_tensors if t not in written_here
        ]
        # In-place tensors (read and written by the same statement, e.g.
        # conv2d's quantisation of its input) carry pre-existing data that
        # must be fetched once even though the cluster also writes them.
        inplace_read = 0.0
        for s in cluster_stmts:
            stmt = program.statement(s)
            t = stmt.tensor_written()
            if t in stmt.tensors_read():
                inplace_read += _tensor_bytes(program, t, params)
        dram_read = 0.0
        if sizes is not None and dram_read_tensors:
            per_tile = _per_tile_read_bytes(
                program, group, sizes, entry.tile_dims, dram_read_tensors, origin, params
            )
            for t in dram_read_tensors:
                whole = _tensor_bytes(program, t, params)
                streamed = per_tile.get(t, 0.0) * n_tiles
                dram_read += min(max(whole, 0), streamed) if streamed else whole
        else:
            for t in dram_read_tensors:
                dram_read += _tensor_bytes(program, t, params)
        dram_read += inplace_read

        dram_write = 0.0
        scratch_traffic = 0.0
        for t in sorted(written_here):
            if t in promoted:
                continue  # handled below via buffers
            external_reader = readers_by_tensor.get(t, set()) - set(cluster_stmts)
            if t in program.liveout or external_reader:
                dram_write += _tensor_bytes(program, t, params)
        bufs = buffers.get(group.name, [])
        scratch_per_tile = int(
            sum(b.box_elems for b in bufs) * ITEMSIZE * traffic_inflation
        )
        scratch_traffic = 2.0 * scratch_per_tile * n_tiles
        dram_read *= traffic_inflation

        clusters.append(
            ClusterWork(
                name=group.name,
                statements=cluster_stmts,
                ops=ops,
                recompute_ops=recompute,
                dram_read_bytes=dram_read,
                dram_write_bytes=dram_write,
                scratch_traffic_bytes=scratch_traffic,
                n_tiles=n_tiles,
                parallel_units=max(parallel_units, 1),
                n_parallel_dims=par_dims,
                scratch_bytes_per_tile=scratch_per_tile,
                vectorizable=any(group.coincident) or group.permutable,
            )
        )
    return ProgramWork(clusters)


def _readers_by_cluster(program: Program, result) -> Dict[str, set]:
    readers: Dict[str, set] = {}
    for s in program.statements:
        for t in s.tensors_read():
            readers.setdefault(t, set()).add(s.name)
    return readers


def analyze_scheduled(
    scheduled: Scheduled,
    tile_sizes: Optional[Sequence[int]],
    params: Optional[Mapping[str, int]] = None,
) -> ProgramWork:
    """Work model of a start-up heuristic's schedule (the PPCG baselines).

    Each fusion group is its own cluster: intermediates crossing group
    boundaries travel through DRAM; tensors produced and consumed within a
    tile stay in cache (charged as scratch traffic).
    """
    program = scheduled.program
    params = dict(program.params, **(params or {}))
    all_stmts = {s.name for s in program.statements}
    readers: Dict[str, set] = {}
    for s in program.statements:
        for t in s.tensors_read():
            readers.setdefault(t, set()).add(s.name)

    clusters: List[ClusterWork] = []
    for group in scheduled.groups:
        written_here = {
            program.statement(s).tensor_written() for s in group.statements
        }
        extents = _band_extents(program, group, params)
        tiled = (
            tile_sizes is not None
            and group.permutable
            and group.depth > 0
        )
        if tiled:
            sizes = tuple(tile_sizes)[: group.depth]
            tiles_per_dim = [-(-extents[d] // sizes[d]) for d in range(len(sizes))]
            n_tiles = int(np.prod(tiles_per_dim)) if tiles_per_dim else 1
            par_idx = [d for d in group.parallel_dim_indices() if d < len(sizes)]
            par_dims = len(par_idx)
            parallel_units = (
                int(np.prod([tiles_per_dim[d] for d in par_idx])) if par_idx else 1
            )
            from ..core import tile_dim_names

            tdims = tile_dim_names(group, len(sizes))
            origin = representative_tile_origin(
                program, group, sizes, tdims, params
            )
        else:
            sizes = None
            n_tiles = 1
            par_idx = group.parallel_dim_indices()
            par_dims = len(par_idx)
            parallel_units = (
                int(np.prod([extents[d] for d in par_idx])) if par_idx else 1
            )
            origin = {}
            tdims = ()

        ops = _group_ops(program, group, params)

        read_tensors = sorted(
            {
                t
                for s in group.statements
                for t in program.statement(s).tensors_read()
            }
        )
        dram_read_tensors = [t for t in read_tensors if t not in written_here]
        inplace_read = 0.0
        for s in group.statements:
            stmt = program.statement(s)
            t = stmt.tensor_written()
            if t in stmt.tensors_read():
                inplace_read += _tensor_bytes(program, t, params)
        dram_read = 0.0
        if sizes is not None and dram_read_tensors:
            per_tile = _per_tile_read_bytes(
                program, group, sizes, tdims, dram_read_tensors, origin, params
            )
            for t in dram_read_tensors:
                whole = _tensor_bytes(program, t, params)
                streamed = per_tile.get(t, 0.0) * n_tiles
                dram_read += min(max(whole, 0), streamed) if streamed else whole
        else:
            for t in dram_read_tensors:
                dram_read += _tensor_bytes(program, t, params)
        dram_read += inplace_read

        dram_write = 0.0
        scratch_traffic = 0.0
        scratch_per_tile = 0
        for t in sorted(written_here):
            external = readers.get(t, set()) - set(group.statements)
            if t in program.liveout or external:
                dram_write += _tensor_bytes(program, t, params)
            else:
                size = _tensor_bytes(program, t, params)
                scratch_traffic += 2.0 * size
                scratch_per_tile += size // max(n_tiles, 1)

        clusters.append(
            ClusterWork(
                name=group.name,
                statements=list(group.statements),
                ops=ops,
                recompute_ops=0.0,
                dram_read_bytes=dram_read,
                dram_write_bytes=dram_write,
                scratch_traffic_bytes=scratch_traffic,
                n_tiles=n_tiles,
                parallel_units=max(parallel_units, 1),
                n_parallel_dims=par_dims,
                scratch_bytes_per_tile=scratch_per_tile,
                vectorizable=any(group.coincident),
                ifs_in_body=len(group.statements) > 1 and not all(group.coincident[:1]),
                wavefront=group.permutable and not any(group.coincident),
            )
        )
    return ProgramWork(clusters)
