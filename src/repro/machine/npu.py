"""Analytical NPU model — a DaVinci-style AI accelerator (Ascend 910).

The architecture of Fig. 7: a Cube unit for tensor/matrix work fed through
L0A/L0B/L0C, a Vector unit for elementwise work on the Unified Buffer, and
an L1 buffer in front of external HBM.  The effect the paper measures
(Table III) is about where a convolution's output meets its batchnorm:

* **unfused** (smartfuse could not fuse conv with batchnorm): the conv
  output spills from L0C through the UB to HBM and is read back for the
  vector ops — two full feature-map transfers over external memory;
* **fused** (post-tiling fusion): the tile's conv output moves L0C → UB,
  the batchnorm/ReLU consume it in place, and only the final result leaves
  the chip.

Off-chip latency dominates on this part, which is why the paper sees 1.72x
on conv+bn pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .cost import ClusterWork, ProgramWork


@dataclass(frozen=True)
class NPUSpec:
    name: str = "Ascend 910 (DaVinci)"
    cube_tflops: float = 256.0        # fp16 tensor throughput
    vector_gops: float = 4096.0       # elementwise ops
    hbm_bw_gbs: float = 1200.0
    ub_bw_gbs: float = 12000.0        # on-chip unified buffer
    ub_bytes: int = 256 * 1024
    l1_bytes: int = 1024 * 1024
    dma_overhead_s: float = 2.5e-6    # per off-chip transfer setup
    kernel_overhead_s: float = 10e-6  # per launched operator
    cores: int = 32                   # DaVinci AI cores on the die
    # The cube and vector datapaths are fp16-native; fp64 work runs
    # through emulation sequences at a fraction of peak.
    cube_fp64_ratio: float = 1.0 / 16.0
    vector_fp64_ratio: float = 1.0 / 8.0
    # Arithmetic intensity (ops per DRAM byte) above which a cluster's
    # inner work maps onto the cube unit rather than the vector unit.
    cube_intensity: float = 8.0
    # Guarded bodies serialize through the scalar unit: the DaVinci core
    # has no branch predictor worth the name.
    branchy_penalty: float = 8.0


DEFAULT_NPU = NPUSpec()


@dataclass
class ConvLayer:
    """One forward convolution + batchnorm (+ReLU) pair of ResNet-50."""

    name: str
    n: int          # batch
    h: int
    w: int
    c_in: int
    c_out: int
    k: int          # kernel size
    stride: int = 1

    @property
    def out_h(self) -> int:
        return max(1, self.h // self.stride)

    @property
    def out_w(self) -> int:
        return max(1, self.w // self.stride)

    def conv_macs(self) -> float:
        return (
            2.0
            * self.n
            * self.out_h
            * self.out_w
            * self.c_out
            * self.c_in
            * self.k
            * self.k
        )

    def output_bytes(self, itemsize: int = 2) -> float:
        return float(self.n * self.out_h * self.out_w * self.c_out * itemsize)

    def input_bytes(self, itemsize: int = 2) -> float:
        return float(self.n * self.h * self.w * self.c_in * itemsize)

    def weight_bytes(self, itemsize: int = 2) -> float:
        return float(self.c_out * self.c_in * self.k * self.k * itemsize)

    def bn_ops(self) -> float:
        # scale, shift, running stats, ReLU: ~6 vector ops per element
        return 6.0 * self.n * self.out_h * self.out_w * self.c_out


def conv_bn_time(
    layer: ConvLayer, fused: bool, spec: NPUSpec = DEFAULT_NPU
) -> float:
    """Execution time of one conv+batchnorm pair, fused or not."""
    conv_compute = layer.conv_macs() / (spec.cube_tflops * 1e12)
    conv_traffic = (
        layer.input_bytes() + layer.weight_bytes() + layer.output_bytes()
    )
    conv_time = max(conv_compute, conv_traffic / (spec.hbm_bw_gbs * 1e9))

    bn_compute = layer.bn_ops() / (spec.vector_gops * 1e9)
    if fused:
        # conv output stays in the UB; vector unit reads/writes on chip.
        bn_traffic_time = 2.0 * layer.output_bytes() / (spec.ub_bw_gbs * 1e9)
        overhead = spec.kernel_overhead_s + 2 * spec.dma_overhead_s
        return conv_time + max(bn_compute, bn_traffic_time) + overhead
    # Unfused: the conv output makes a round trip through HBM.
    spill = layer.output_bytes() / (spec.hbm_bw_gbs * 1e9)
    refill = layer.output_bytes() / (spec.hbm_bw_gbs * 1e9)
    writeback = layer.output_bytes() / (spec.hbm_bw_gbs * 1e9)
    bn_time = max(bn_compute, refill + writeback)
    overhead = 2 * spec.kernel_overhead_s + 4 * spec.dma_overhead_s
    return conv_time + spill + bn_time + overhead


def cluster_time(work: ClusterWork, spec: NPUSpec = DEFAULT_NPU) -> float:
    """Execution time of one fusion cluster on the NPU.

    The same :class:`~repro.machine.cost.ClusterWork` abstraction the CPU
    and GPU models consume, so the heterogeneous partitioner can compare
    the three targets on identical inputs.  High-intensity clusters (the
    convolution reductions) run on the cube unit; everything else runs on
    the vector unit against the unified buffer.  Work without tile-level
    parallelism starves the core array, and guarded bodies crawl through
    the scalar unit.
    """
    ops = work.ops
    dram_bytes = work.total_dram_bytes()
    scratch_bytes = work.scratch_traffic_bytes
    if work.scratch_bytes_per_tile > spec.ub_bytes:
        # Promoted tiles that overflow the UB spill through HBM.
        dram_bytes += scratch_bytes
        scratch_bytes = 0.0

    intensity = ops / dram_bytes if dram_bytes > 0 else float("inf")
    if intensity >= spec.cube_intensity and not work.ifs_in_body:
        peak = spec.cube_tflops * 1e12 * spec.cube_fp64_ratio
    else:
        peak = spec.vector_gops * 1e9 * spec.vector_fp64_ratio
    if work.ifs_in_body:
        ops *= spec.branchy_penalty
    if work.n_parallel_dims == 0:
        # Wavefront bands keep a sliver of the array busy; fully serial
        # work runs on one scalar pipe.
        util = 0.02 if work.wavefront else 1.0 / (spec.cores * 64)
    else:
        util = min(1.0, work.parallel_units / spec.cores)
    compute = ops / max(peak * util, 1.0)

    mem = dram_bytes / (spec.hbm_bw_gbs * 1e9)
    ub = scratch_bytes / (spec.ub_bw_gbs * 1e9)
    overhead = spec.kernel_overhead_s + 2 * spec.dma_overhead_s
    return max(compute, mem) + ub + overhead


def program_time(work: ProgramWork, spec: NPUSpec = DEFAULT_NPU) -> float:
    return sum(cluster_time(c, spec) for c in work.clusters)


def network_time(
    layers: Sequence[ConvLayer],
    fused: bool,
    other_ops_seconds: float = 0.0,
    spec: NPUSpec = DEFAULT_NPU,
) -> float:
    """Whole-network forward time: conv+bn pairs plus unrelated operator
    time that the fusion does not touch (pooling, fc, backward, ...)."""
    return sum(conv_bn_time(l, fused, spec) for l in layers) + other_ops_seconds
