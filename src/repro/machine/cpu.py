"""Analytical multi-core CPU model (the paper's dual-socket Xeon).

Time per cluster is the roofline maximum of compute and DRAM terms plus a
fast-memory term and a parallel-region overhead:

* compute scales with usable threads (capped by the cluster's parallel
  units), SIMD width when the body vectorises, and a penalty for guarded
  (maxfuse-style) bodies;
* DRAM bandwidth saturates: per-core bandwidth times threads, capped at
  the socket total;
* promoted scratch traffic runs at cache bandwidth — unless the per-tile
  scratch overflows the cache share, in which case it spills to DRAM
  (which is exactly why tile-size/footprint matching matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cost import ClusterWork, ProgramWork


@dataclass(frozen=True)
class CPUSpec:
    name: str = "2x Xeon E5-2683 v4"
    cores: int = 32
    freq_ghz: float = 2.1
    ops_per_cycle: float = 4.0
    simd_width: float = 4.0
    dram_bw_gbs: float = 68.0
    per_core_bw_gbs: float = 11.0
    cache_bw_gbs: float = 700.0
    scratch_capacity_bytes: int = 4 * 1024 * 1024
    parallel_overhead_s: float = 8e-6
    branchy_penalty: float = 1.6


DEFAULT_CPU = CPUSpec()


def cluster_time(
    work: ClusterWork, threads: int, spec: CPUSpec = DEFAULT_CPU
) -> float:
    threads = max(1, min(threads, spec.cores))
    if work.n_parallel_dims > 0:
        t_eff = min(threads, work.parallel_units)
    else:
        t_eff = 1

    ops = work.ops
    vec = spec.simd_width if (work.vectorizable and not work.ifs_in_body) else 1.0
    if work.ifs_in_body:
        ops *= spec.branchy_penalty
    compute = ops / (t_eff * spec.freq_ghz * 1e9 * spec.ops_per_cycle * vec)

    bw = min(spec.dram_bw_gbs, spec.per_core_bw_gbs * t_eff) * 1e9
    dram_bytes = work.total_dram_bytes()
    scratch_bytes = work.scratch_traffic_bytes
    if work.scratch_bytes_per_tile > spec.scratch_capacity_bytes:
        # Scratch does not fit the per-core cache share: it spills.
        dram_bytes += scratch_bytes
        scratch_bytes = 0.0
    mem = dram_bytes / bw
    cache = scratch_bytes / (spec.cache_bw_gbs * 1e9)

    return max(compute, mem) + cache + spec.parallel_overhead_s


def program_time(
    work: ProgramWork, threads: int, spec: CPUSpec = DEFAULT_CPU
) -> float:
    return sum(cluster_time(c, threads, spec) for c in work.clusters)


def speedup_over(
    work: ProgramWork,
    baseline: ProgramWork,
    threads: int,
    baseline_threads: Optional[int] = None,
    spec: CPUSpec = DEFAULT_CPU,
) -> float:
    base = program_time(baseline, baseline_threads or threads, spec)
    ours = program_time(work, threads, spec)
    return base / ours
