"""Analytical GPU model (the paper's NVIDIA Quadro P6000).

One fusion cluster = one kernel.  The model captures the effects the paper
measures:

* two-level hardware parallelism: a cluster needs parallel tile dims for
  the block grid *and* parallel point dims for threads; losing either level
  (maxfuse) collapses utilisation;
* shared memory: promoted buffers run at shared-memory bandwidth while
  they fit; oversubscription reduces resident blocks per SM (occupancy);
* global-memory traffic is per-tile footprints, halo included, so unfused
  producer/consumer pairs pay the gather/scatter the paper describes;
* a fixed launch overhead per kernel (fusion reduces kernel count).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cost import ClusterWork, ProgramWork


@dataclass(frozen=True)
class GPUSpec:
    name: str = "Quadro P6000"
    sms: int = 30
    cores_per_sm: int = 128
    freq_ghz: float = 1.5
    global_bw_gbs: float = 430.0
    shared_bw_gbs: float = 4000.0
    shared_per_sm_bytes: int = 96 * 1024
    max_blocks_per_sm: int = 16
    threads_per_block: int = 256
    launch_overhead_s: float = 6e-6
    branchy_penalty: float = 2.0
    # double-precision throughput ratio on a Pascal gaming part
    dp_ratio: float = 1.0 / 8.0


DEFAULT_GPU = GPUSpec()


def _utilisation(work: ClusterWork, spec: GPUSpec) -> float:
    """Fraction of peak compute the cluster's parallelism can feed."""
    if work.n_parallel_dims == 0:
        if work.wavefront:
            # Permutable skewed bands admit diagonal (wavefront) mapping,
            # at poor occupancy and with synchronisation between fronts.
            return 0.05
        # Entirely serial kernel: a single thread crawls.
        return 1.0 / (spec.sms * spec.cores_per_sm)
    blocks = work.parallel_units
    # PPCG strip-mines a parallel dimension across blocks *and* threads,
    # so even a single parallel dim feeds full thread blocks.
    per_block_threads = spec.threads_per_block

    # Occupancy: shared-memory bound blocks per SM.
    if work.scratch_bytes_per_tile > 0:
        resident = max(
            1, min(spec.max_blocks_per_sm, spec.shared_per_sm_bytes // work.scratch_bytes_per_tile)
        )
    else:
        resident = spec.max_blocks_per_sm
    occupancy = min(1.0, resident / 4.0)  # 4 blocks/SM keeps Pascal busy

    total_threads = blocks * per_block_threads
    peak_threads = spec.sms * spec.cores_per_sm
    return min(1.0, total_threads / peak_threads) * occupancy


def cluster_time(work: ClusterWork, spec: GPUSpec = DEFAULT_GPU) -> float:
    util = _utilisation(work, spec)
    peak = spec.sms * spec.cores_per_sm * spec.freq_ghz * 1e9 * spec.dp_ratio
    ops = work.ops * (spec.branchy_penalty if work.ifs_in_body else 1.0)
    compute = ops / max(peak * util, 1.0)

    dram_bytes = work.total_dram_bytes()
    scratch_bytes = work.scratch_traffic_bytes
    if work.scratch_bytes_per_tile > spec.shared_per_sm_bytes:
        dram_bytes += scratch_bytes
        scratch_bytes = 0.0
    mem = dram_bytes / (spec.global_bw_gbs * 1e9)
    shared = scratch_bytes / (spec.shared_bw_gbs * 1e9)

    return max(compute, mem) + shared + spec.launch_overhead_s


def program_time(work: ProgramWork, spec: GPUSpec = DEFAULT_GPU) -> float:
    return sum(cluster_time(c, spec) for c in work.clusters)
