"""``repro.core`` — the paper's contribution: post-tiling fusion.

* :mod:`footprint` — per-tile memory footprints (relation 4);
* :mod:`exposed` — upwards-exposed data extraction;
* :mod:`tile_shapes` — Algorithm 1: mixed tiling/extension schedules;
* :mod:`post_fusion` — Algorithm 2: schedule-tree rewriting;
* :mod:`compose` — Algorithm 3: multiple live-outs, shared spaces, DCE;
* :mod:`pipeline` — the ``optimize()`` entry point.
"""

from .compose import (
    composite_tiling_fusion,
    liveout_groups,
    needed_instances,
    resolve_shared_spaces,
)
from .exposed import (
    exposed_tensors,
    intermediate_groups_of,
    producers_of_tensors,
    upwards_exposed_reads,
)
from .footprint import (
    TILE_TUPLE,
    footprint_size,
    tile_dim_names,
    tile_footprint,
    tile_to_instances,
    write_footprint,
)
from .pipeline import OptimizeResult, optimize
from .post_fusion import PostFusionError, apply_mixed_schedules
from .tile_shapes import (
    CPU,
    ExtensionScheduleEntry,
    GPU,
    MixedSchedules,
    NPU,
    TARGETS,
    TargetSpec,
    TilingScheduleEntry,
    construct_tile_shapes,
    effective_tile_sizes,
)

__all__ = [
    "CPU",
    "ExtensionScheduleEntry",
    "GPU",
    "MixedSchedules",
    "NPU",
    "OptimizeResult",
    "PostFusionError",
    "TARGETS",
    "TILE_TUPLE",
    "TargetSpec",
    "TilingScheduleEntry",
    "apply_mixed_schedules",
    "composite_tiling_fusion",
    "construct_tile_shapes",
    "effective_tile_sizes",
    "exposed_tensors",
    "footprint_size",
    "intermediate_groups_of",
    "liveout_groups",
    "needed_instances",
    "optimize",
    "producers_of_tensors",
    "resolve_shared_spaces",
    "tile_dim_names",
    "tile_footprint",
    "tile_to_instances",
    "upwards_exposed_reads",
    "write_footprint",
]
