"""Schedule legality validation.

``validate_tree`` checks, by exact enumeration at concrete problem sizes,
that a schedule tree executes every dependence source before its target —
including the replicated instances that extension nodes introduce (a
recomputed instance must still happen before every consumer that reads
its value *in that tile context*).

This is the safety net behind every transformation in the repository: the
test suite validates each optimized tree on small problem instances, so a
bug in Algorithms 1-3 or in tree manipulation surfaces as a legality
violation rather than as silently wrong numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..codegen.interp import _enumerate_stream, build_streams
from ..deps import Dependence, memory_deps
from ..ir import Program
from ..schedule import DomainNode


@dataclass
class Violation:
    """One dependence executed in the wrong order (or not at all)."""

    dep: Dependence
    source_instance: Tuple[int, ...]
    target_instance: Tuple[int, ...]
    reason: str

    def __str__(self):
        return (
            f"{self.dep.kind} dependence {self.dep.source}{self.source_instance} "
            f"-> {self.dep.target}{self.target_instance} via {self.dep.tensor}: "
            f"{self.reason}"
        )


@dataclass
class ValidationReport:
    violations: List[Violation] = field(default_factory=list)
    checked_pairs: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self):
        if self.ok:
            return f"legal schedule ({self.checked_pairs} dependence pairs checked)"
        head = "\n".join(str(v) for v in self.violations[:10])
        return f"{len(self.violations)} violations:\n{head}"


def _execution_index(
    tree: DomainNode, program: Program, params: Mapping[str, int]
) -> Dict[str, Dict[Tuple[int, ...], Tuple[tuple, tuple]]]:
    """Per statement: instance -> (first execution key, last execution key).

    Replicated (extension) instances execute several times; a flow source
    must have executed at least once before its consumer (first <= key of
    target), while anti/output deps constrain every re-execution, so both
    extremes are recorded.
    """
    table: Dict[str, Dict[Tuple[int, ...], Tuple[tuple, tuple]]] = {}
    streams = build_streams(tree, program, params)
    events = []
    for si, stream in enumerate(streams):
        for key, env in _enumerate_stream(stream):
            events.append((key, si, stream.stmt, env))
    events.sort(key=lambda e: (e[0], e[1]))
    for rank, (key, _si, stmt, env) in enumerate(events):
        inst = tuple(env[d] for d in stmt.dims)
        per = table.setdefault(stmt.name, {})
        if inst in per:
            first, _last = per[inst]
            per[inst] = (first, (rank,))
        else:
            per[inst] = ((rank,), (rank,))
    return table


def validate_tree(
    tree: DomainNode,
    program: Program,
    params: Optional[Mapping[str, int]] = None,
    max_pairs_per_dep: int = 20000,
) -> ValidationReport:
    """Check all flow dependences against the tree's execution order."""
    params = dict(program.params, **(params or {}))
    report = ValidationReport()
    index = _execution_index(tree, program, params)
    deps = memory_deps(program, kinds=("flow",))
    for dep in deps:
        src_table = index.get(dep.source, {})
        dst_table = index.get(dep.target, {})
        pairs = 0
        for m in dep.relation.fix_params(params).pieces:
            wrapped = m.wrap()
            for point in _bounded_points(wrapped, max_pairs_per_dep - pairs):
                pairs += 1
                src_inst = tuple(
                    point[d] for d in m.space.in_dims
                )
                dst_inst = tuple(
                    point[d] for d in m.space.out_dims
                )
                src = src_table.get(src_inst)
                dst = dst_table.get(dst_inst)
                if dst is None:
                    continue  # target instance eliminated (dead code)
                if src is None:
                    report.violations.append(
                        Violation(
                            dep, src_inst, dst_inst,
                            "source instance never executes",
                        )
                    )
                    continue
                # The value must be produced before its first consumption.
                if src[0] > dst[0]:
                    report.violations.append(
                        Violation(
                            dep, src_inst, dst_inst,
                            f"source first runs at {src[0]}, after target {dst[0]}",
                        )
                    )
                if pairs >= max_pairs_per_dep:
                    break
            if pairs >= max_pairs_per_dep:
                break
        report.checked_pairs += pairs
    return report


def _bounded_points(bset, limit: int):
    from ..presburger.enumerate import enumerate_points

    count = 0
    for p in enumerate_points(bset):
        yield p
        count += 1
        if count >= limit:
            return
