"""Algorithm 2 — post-tiling fusion on schedule trees.

For every tiling schedule in ``Mixed_Schedules``: replace the group's band
with the tiled band, split it into tile and point parts, then splice each
extension schedule underneath the tile band — an extension node whose
sequence schedules the intermediate space's instances *before* the live-out
point band, tile by tile (Fig. 5 of the paper).  The intermediate space's
original subtree is disabled with a ``"skipped"`` mark.
"""

from __future__ import annotations

from typing import Optional

from ..ir import Program
from ..presburger import UnionMap
from ..schedule import (
    BandNode,
    DomainNode,
    FilterNode,
    mark_skipped,
    insert_extension_below,
    top_level_filters,
)
from ..scheduler import FusionGroup, Scheduled, group_band, tile_group
from .tile_shapes import (
    ExtensionScheduleEntry,
    MixedSchedules,
    TilingScheduleEntry,
)


class PostFusionError(RuntimeError):
    pass


def apply_mixed_schedules(
    program: Program, scheduled: Scheduled, mixed: MixedSchedules
) -> DomainNode:
    """Algorithm 2: rewrite the conservative tree into the tiled+fused tree.

    The tree held by ``scheduled`` is mutated in place and returned.
    """
    from ..service import instrument

    tree = scheduled.tree
    for entry in mixed.tiling_entries():
        group = entry.group
        if not entry.is_tiled:
            continue  # untiled live-out space: leave its subtree alone
        with instrument.span(
            "tile_group", group=group.name, sizes=str(entry.tile_sizes)
        ):
            tile = tile_group(tree, group, entry.tile_sizes)
        if tile is None:
            raise PostFusionError(
                f"group {group.name} was marked tiled but its band is not "
                "permutable"
            )
        for ext in mixed.extensions_of(group):
            with instrument.span("splice_extension", group=ext.group.name):
                _splice_extension(program, tree, tile, entry, ext)
            instrument.count("post_fusion.extensions_spliced")
    return tree


def _splice_extension(
    program: Program,
    tree: DomainNode,
    tile_band: BandNode,
    tiling: TilingScheduleEntry,
    ext: ExtensionScheduleEntry,
) -> None:
    # Align the extension relation's tile dimensions with the names the
    # tile band actually carries.
    rename = dict(zip(tiling.tile_dims, tile_band.dim_names))
    maps = [m.rename_dims(rename) for m in ext.relation.maps.values()]
    relation = UnionMap(maps)

    # The spliced subtree schedules the added instances with the space's
    # original band (band0 in the paper's Fig. 5).
    subtree = group_band(program, ext.group, band_prefix=f"{ext.group.name}x")
    insert_extension_below(tile_band, relation, subtree)

    filt = _filter_of_group(tree, ext.group)
    if filt is not None:
        mark_skipped(filt)


def _filter_of_group(tree: DomainNode, group: FusionGroup) -> Optional[FilterNode]:
    for filt in top_level_filters(tree):
        if set(filt.statements) == set(group.statements):
            return filt
    return None
