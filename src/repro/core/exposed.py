"""Upwards-exposed data extraction (Section III-A).

The *upwards-exposed data* of a computation space are the elements it reads
that are defined by other computation spaces — the data that must either
travel through slow memory (unfused) or be recomputed/kept in fast memory
(fused).  They are computed from the access relations and the program's
producer/consumer structure; no rescheduling is involved.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..ir import Program
from ..presburger import Map, UnionMap
from ..scheduler import FusionGroup
from ..service import instrument


def exposed_tensors(
    program: Program, group: FusionGroup, within: Sequence[FusionGroup]
) -> Tuple[str, ...]:
    """Tensors read by ``group`` but written by another group of ``within``."""
    members = set(group.statements)
    read = {
        t
        for s in group.statements
        for t in program.statement(s).tensors_read()
    }
    produced_elsewhere = set()
    for other in within:
        if other is group:
            continue
        for s in other.statements:
            if s in members:
                continue
            produced_elsewhere.add(program.statement(s).tensor_written())
    exposed = tuple(sorted(read & produced_elsewhere))
    if exposed:
        instrument.count("exposed.tensors", len(exposed))
    return exposed


def upwards_exposed_reads(
    program: Program, group: FusionGroup, tensors: Sequence[str]
) -> UnionMap:
    """The read access relations of ``group`` restricted to ``tensors``."""
    out: List[Map] = []
    for s in group.statements:
        stmt = program.statement(s)
        for (_, tensor), access in stmt.read_relations().maps.items():
            if tensor in tensors:
                out.append(access)
    return UnionMap(out)


def producers_of_tensors(
    program: Program,
    tensors: Sequence[str],
    groups: Sequence[FusionGroup],
    exclude: FusionGroup,
) -> List[FusionGroup]:
    """Groups (other than ``exclude``) that write any of ``tensors``."""
    out = []
    for g in groups:
        if g is exclude:
            continue
        writes = {program.statement(s).tensor_written() for s in g.statements}
        if writes & set(tensors):
            out.append(g)
    return out


def intermediate_groups_of(
    program: Program,
    liveout_group: FusionGroup,
    groups: Sequence[FusionGroup],
) -> List[FusionGroup]:
    """Transitive producers of ``liveout_group`` among ``groups``.

    Returned nearest-producer-first (the order Algorithm 1 fuses them in).
    Groups that are themselves live-out are *not* included — the paper
    never fuses two live-out computation spaces (Section IV-C).
    """
    liveout_tensors = set(program.liveout)

    def is_liveout(g: FusionGroup) -> bool:
        return any(
            program.statement(s).tensor_written() in liveout_tensors
            for s in g.statements
        )

    result: List[FusionGroup] = []
    frontier = [liveout_group]
    seen = {id(liveout_group)}
    while frontier:
        current = frontier.pop(0)
        needed = exposed_tensors(program, current, groups)
        for producer in producers_of_tensors(program, needed, groups, current):
            if id(producer) in seen or is_liveout(producer):
                continue
            seen.add(id(producer))
            result.append(producer)
            frontier.append(producer)
    # Reverse topological order — consumers strictly before their
    # producers — so Algorithm 1 registers a consumer's footprint needs
    # before fusing the producer, and Algorithm 2 splices producers
    # *above* (i.e. executing before) their consumers.  Program order is
    # topological (dependences only point forward), so sorting by the
    # latest member statement descending is a valid reverse-topological
    # order.
    result.sort(
        key=lambda g: max(program.statement_index(s) for s in g.statements),
        reverse=True,
    )
    return result
