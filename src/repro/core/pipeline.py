"""The end-to-end optimizer: the paper's pass, start to finish.

``optimize(program)`` runs:

1. a conservative start-up fusion heuristic (separated computation spaces,
   Section III);
2. Algorithm 3 / Algorithm 1 — tiling of live-out spaces and construction
   of extension schedules from upwards-exposed data;
3. Algorithm 2 — post-tiling fusion by schedule-tree rewriting.

The result carries everything downstream consumers need: the final tree
(for code generation and execution), the mixed schedules (for the machine
models' footprint analysis) and compile-time statistics (for the paper's
Table I/III compilation-time comparison).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ir import Program
from ..schedule import DomainNode
from ..scheduler import (
    SMARTFUSE,
    FusionGroup,
    Scheduled,
    schedule_program,
)
from ..service import instrument
from .compose import composite_tiling_fusion
from .post_fusion import apply_mixed_schedules
from .tile_shapes import MixedSchedules, TargetSpec


@dataclass
class OptimizeResult:
    """Everything produced by one run of the pass."""

    program: Program
    target: TargetSpec
    tile_sizes: Optional[Tuple[int, ...]]
    scheduled: Scheduled
    mixed: MixedSchedules
    tree: DomainNode
    compile_seconds: float

    @property
    def clusters(self) -> List[List[FusionGroup]]:
        """Final fusion clusters: each tiling entry plus its extensions."""
        return self.mixed.fused_groups()

    def cluster_names(self) -> List[List[str]]:
        return [[g.name for g in cluster] for cluster in self.clusters]

    def fusion_summary(self) -> List[List[str]]:
        """Statement-level fusion result, e.g. ``[[S0, S1, S2, S3]]``."""
        out = []
        for cluster in self.clusters:
            stmts: List[str] = []
            for g in cluster:
                stmts.extend(g.statements)
            out.append(sorted(stmts, key=self.program.statement_index))
        return out


def optimize(
    program: Program,
    options: "Optional[CompileOptions]" = None,
    **removed,
) -> OptimizeResult:
    """Run the paper's pass on ``program``.

    All configuration travels in one :class:`repro.CompileOptions` —
    passed positionally or as ``options=``; ``None`` compiles with the
    defaults (cpu target, smartfuse start-up, unit tiles).  The retired
    per-keyword spellings (``target=``/``tile_sizes=``/``startup=``)
    raise a ``TypeError`` pointing here.

    ``options.tile_sizes`` applies to the live-out computation spaces
    only — the pass derives every other space's tile shape from the
    upwards-exposed data, which is the point of the paper.
    ``options.target`` selects how much parallelism must be preserved
    ("cpu": 1 dim, "gpu": 2 dims, "npu").
    """
    from ..options import resolve_options

    opts = resolve_options(options, "optimize", **removed)
    spec = opts.target
    t0 = time.perf_counter()
    with instrument.span(
        "optimize",
        target=spec.name,
        startup=opts.startup,
        statements=len(program.statements),
        tile_sizes=str(opts.tile_sizes) if opts.tile_sizes else "auto",
    ) as root:
        if root is not None and instrument.tracing():
            # The fingerprint hash is only worth paying for in a trace.
            from ..service.fingerprint import fingerprint_program

            root.annotate(fingerprint=fingerprint_program(program)[:12])
        with instrument.span("startup_fusion", heuristic=opts.startup):
            scheduled = schedule_program(program, opts.startup)
        with instrument.span("tile_shapes"):
            mixed = composite_tiling_fusion(
                program, scheduled, opts.tile_sizes, spec
            )
        with instrument.span("post_fusion"):
            tree = apply_mixed_schedules(program, scheduled, mixed)
    elapsed = time.perf_counter() - t0
    instrument.gauge("optimize.compile_seconds", elapsed)
    # Report the tile sizes the pass actually used: the first tiled
    # live-out entry carries the effective (clipped or defaulted) vector,
    # which differs from the caller's request when sizes were omitted
    # (unit-tile fusion) or clipped to the band depth.
    sizes = next(
        (e.tile_sizes for e in mixed.tiling_entries() if e.tile_sizes is not None),
        None,
    )
    return OptimizeResult(program, spec, sizes, scheduled, mixed, tree, elapsed)
