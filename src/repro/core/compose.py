"""Algorithm 3 — compositing tiling and fusion across live-out spaces.

Generalises Algorithm 1 to programs with several live-out computation
spaces and intermediate spaces shared between them (Fig. 6):

* live-out spaces are never fused with each other;
* a shared intermediate space is fused into *all* of its uses only when the
  instance subsets each use needs are pairwise disjoint (no redundant
  recomputation, ever);
* otherwise the shared space keeps a plain tiling schedule of its own and
  its transitive producers fall back to their own fusion cluster;
* skipping the original subtree of every fused space implements the
  fine-grained dead-code elimination of Section IV-C for free: instances no
  tile asks for are simply never extended into the tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir import Program
from ..presburger import Set, UnionSet
from ..scheduler import FusionGroup, Scheduled
from .exposed import intermediate_groups_of
from .tile_shapes import (
    ExtensionScheduleEntry,
    MixedSchedules,
    TargetSpec,
    TilingScheduleEntry,
    CPU,
    construct_tile_shapes,
    effective_tile_sizes,
)
from .footprint import tile_dim_names


def liveout_groups(program: Program, groups: Sequence[FusionGroup]) -> List[FusionGroup]:
    liveout_tensors = set(program.liveout)
    out = []
    for g in groups:
        writes = {program.statement(s).tensor_written() for s in g.statements}
        if writes & liveout_tensors:
            out.append(g)
    return out


def needed_instances(
    program: Program, producer: FusionGroup, consumers: Sequence[FusionGroup]
) -> UnionSet:
    """The instance subset of ``producer`` that ``consumers`` read from.

    This is op0' of Fig. 6: elements of the produced tensors that the
    consumer cluster reads, pulled back through the producer's writes.
    """
    produced = {
        program.statement(s).tensor_written(): program.statement(s)
        for s in producer.statements
    }
    needed: List[Set] = []
    for cons in consumers:
        for cs in cons.statements:
            stmt = program.statement(cs)
            for (_, tensor), access in stmt.read_relations().maps.items():
                writer = produced.get(tensor)
                if writer is None:
                    continue
                elements = access.range()
                instances = writer.write_relation().reverse().apply_to_set(elements)
                needed.append(instances)
    return UnionSet(needed)


def resolve_shared_spaces(
    program: Program,
    liveouts: Sequence[FusionGroup],
    inters: Dict[str, List[FusionGroup]],
) -> List[FusionGroup]:
    """Apply Fig. 6's rule; returns the spaces forced to stand alone.

    ``inters`` maps live-out group name to its intermediate list and is
    *mutated*: shared spaces whose needed subsets overlap are removed from
    every list.
    """
    usage: Dict[int, List[FusionGroup]] = {}
    by_id: Dict[int, FusionGroup] = {}
    for L in liveouts:
        for g in inters[L.name]:
            usage.setdefault(id(g), []).append(L)
            by_id[id(g)] = g

    standalone: List[FusionGroup] = []
    for gid, users in usage.items():
        if len(users) < 2:
            continue
        g = by_id[gid]
        subsets = [
            needed_instances(program, g, [L] + [x for x in inters[L.name] if x is not g])
            for L in users
        ]
        disjoint = True
        for i in range(len(subsets)):
            for j in range(i + 1, len(subsets)):
                if not subsets[i].intersect(subsets[j]).is_empty():
                    disjoint = False
                    break
            if not disjoint:
                break
        if not disjoint:
            # Line 5 of Algorithm 3: the shared space gets a tiling
            # schedule of its own instead of extension schedules.
            for L in users:
                inters[L.name] = [x for x in inters[L.name] if x is not g]
            standalone.append(g)
    return standalone


def composite_tiling_fusion(
    program: Program,
    scheduled: Scheduled,
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec = CPU,
) -> MixedSchedules:
    """Algorithm 3, steps 1-2: one ``Mixed_Schedules`` for the whole program.

    Step 3 (tree rewriting) is :func:`repro.core.post_fusion.apply_mixed_schedules`.
    """
    from ..service import instrument

    groups = scheduled.groups
    liveouts = liveout_groups(program, groups)
    inters: Dict[str, List[FusionGroup]] = {
        L.name: intermediate_groups_of(program, L, groups) for L in liveouts
    }
    with instrument.span("resolve_shared_spaces", liveouts=len(liveouts)):
        standalone = resolve_shared_spaces(program, liveouts, inters)
        instrument.annotate(standalone=len(standalone))

    mixed = MixedSchedules()
    for L in liveouts:
        sub = construct_tile_shapes(program, L, inters[L.name], tile_sizes, target)
        mixed.entries.extend(sub.entries)

    # Shared spaces that could not fuse, and any groups not reached at all,
    # keep plain tiling schedules in their original position.
    covered = {id(e.group) for e in mixed.entries}
    for g in standalone + [g for g in groups if id(g) not in covered]:
        if id(g) in covered:
            continue
        covered.add(id(g))
        _append_standalone(mixed, g, tile_sizes, target)

    with instrument.span("unfuse_dangling_readers"):
        _unfuse_dangling_readers(program, mixed, tile_sizes, target)
    return mixed


def _append_standalone(mixed, group, tile_sizes, target) -> None:
    sizes = (
        effective_tile_sizes(group, tile_sizes, target)
        if group.permutable and group.n_parallel() >= target.min_m
        else None
    )
    tdims = tile_dim_names(group, len(sizes)) if sizes else ()
    mixed.entries.append(TilingScheduleEntry(group, sizes, tdims))


def _unfuse_dangling_readers(
    program: Program,
    mixed: MixedSchedules,
    tile_sizes,
    target: TargetSpec,
) -> None:
    """Fixed point: a fused (skipped) space must have *all* its readers
    inside clusters that fuse it.

    Algorithm 1's recomputation and parallelism guards can leave a consumer
    of a fused space outside every fusing cluster (it would then read
    values the skipped original never produced).  Such spaces fall back to
    standalone tiling schedules; the unfusing cascades to their producers.
    """
    from .tile_shapes import ExtensionScheduleEntry

    while True:
        clusters = mixed.fused_groups()
        stmt_cluster: Dict[str, int] = {}
        for ci, cluster in enumerate(clusters):
            for g in cluster:
                for s in g.statements:
                    stmt_cluster[s] = ci
        offender = None
        for entry in mixed.entries:
            if not isinstance(entry, ExtensionScheduleEntry):
                continue
            g = entry.group
            fusing_clusters = {
                ci
                for ci, cluster in enumerate(clusters)
                if any(x is g for x in cluster)
            }
            for s in g.statements:
                tensor = program.statement(s).tensor_written()
                for reader in program.readers_of(tensor):
                    if reader.name in g.statements:
                        continue
                    if stmt_cluster.get(reader.name) not in fusing_clusters:
                        offender = g
                        break
                if offender:
                    break
            if offender:
                break
        if offender is None:
            return
        mixed.entries = [
            e
            for e in mixed.entries
            if not (
                isinstance(e, ExtensionScheduleEntry) and e.group is offender
            )
        ]
        _append_standalone(mixed, offender, tile_sizes, target)
