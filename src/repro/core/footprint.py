"""Per-tile memory footprints — relation (4) of the paper.

Tiles are identified by *origin coordinates*: the tile with origin
``(t0, t1)`` covers the points ``t_d <= row_d(i) < t_d + T_d`` of its
band rows.  Composing the inverse of the tile-assignment relation (2) with
an access relation (3) yields the footprint relation (4):

    { (t0, t1) -> A[a] : the tile at origin (t0, t1) touches A[a] }

which naturally expresses *overlapping* footprints between consecutive
tiles (the stencil halo).
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir import Program
from ..presburger import BasicMap, Constraint, LinExpr, Map, MapSpace, UnionMap, memo
from ..scheduler import FusionGroup
from ..service import instrument

TILE_TUPLE = "_tile"

#: Gate for the parametric-footprint engine: when enabled (the default),
#: footprints requested with concrete integer tile sizes are computed once
#: with *symbolic* sizes (Section V-A: tile-origin coordinates keep the
#: containment constraints affine in a symbolic ``T``) and then specialized
#: per size vector.  ``REPRO_PARAMETRIC_FP=0`` restores the per-candidate
#: seed behavior — the autotune-parity CI job diffs the two.
ENV_PARAMETRIC = "REPRO_PARAMETRIC_FP"


def parametric_enabled() -> bool:
    return os.environ.get(ENV_PARAMETRIC, "1").lower() not in ("0", "false", "no")


def parametric_size_names(n: int) -> Tuple[str, ...]:
    """Canonical symbolic tile-size parameter names (size-independent)."""
    return tuple(f"_Tsz{d}" for d in range(n))


def parametric_binding(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence,
    tile_dims: Optional[Sequence[str]] = None,
) -> Optional[Tuple[Tuple[str, ...], Dict[str, int]]]:
    """``(names, {name: size})`` when the parametric engine applies.

    Applies when the engine is enabled, every tile size is a concrete int
    and the canonical symbolic names are fresh in the program (no clash
    with statement dims/params, program params or the tile dims).  Returns
    ``None`` otherwise, which keeps symbolic callers and exotic programs on
    the direct path.
    """
    if not parametric_enabled():
        return None
    sizes = tuple(tile_sizes)
    if not sizes or not all(type(s) is int for s in sizes):
        return None
    names = parametric_size_names(len(sizes))
    taken = set(program.params)
    if tile_dims:
        taken.update(tile_dims)
    for s in program.statement_names:
        stmt = program.statement(s)
        taken.update(stmt.dims)
        taken.update(stmt.params)
    if taken & set(names):
        return None
    return names, dict(zip(names, sizes))

# The footprint relation is recomputed for every tile-size candidate the
# autotuner probes and for every pass that needs it (cost model, promotion,
# extension), usually with identical inputs.  Programs and groups are
# mutable, so the memo keys are structural: statement domains, band rows
# and access loads, never object identities.
_T2I_MEMO = memo.table("tile_to_instances")
# The footprint tables (and BasicMap.apply_range) are *spillable*: their
# keys and values pickle by symbol name, so hot entries round-trip through
# the on-disk compile cache to warm-start future processes.
_FOOTPRINT_MEMO = memo.table("tile_footprint", spillable=True)
_WRITE_FP_MEMO = memo.table("write_footprint", spillable=True)


def _group_key(program: Program, group: FusionGroup, n: int) -> tuple:
    """Structural key of everything :func:`tile_to_instances` reads."""
    per_stmt = []
    for s in group.statements:
        stmt = program.statement(s)
        per_stmt.append(
            (
                s,
                stmt.domain.space,
                tuple(p.constraints for p in stmt.domain.pieces),
                tuple(group.rows[s][:n]),
            )
        )
    return (group.name, tuple(per_stmt))


def _reads_key(program: Program, group: FusionGroup) -> tuple:
    """Structural key of the access expressions the footprint depends on."""
    per_stmt = []
    for s in group.statements:
        stmt = program.statement(s)
        per_stmt.append(
            (
                s,
                (stmt.lhs.tensor, tuple(stmt.lhs.indices)),
                tuple(
                    (l.tensor, tuple(l.indices)) for l in stmt.read_loads()
                ),
            )
        )
    return tuple(per_stmt)


def tile_dim_names(group: FusionGroup, n: int) -> Tuple[str, ...]:
    return tuple(f"{group.name}_o{d}" for d in range(n))


def tile_to_instances(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence,
    tile_dims: Optional[Sequence[str]] = None,
) -> UnionMap:
    """Relation (2) reversed: ``{ (t) -> S[i] : i lands in the tile at t }``.

    One map per statement of the group.  ``tile_sizes`` tiles the leading
    band dimensions; statements are constrained to their domains.

    Tile sizes may be integers or *parameter names* (strings): with
    tile-origin coordinates the containment constraint ``t <= row < t + T``
    stays affine for symbolic ``T``, which is how the paper's akg
    integration handles parametric tile sizes (Section V-A).
    """
    n = len(tile_sizes)
    if n == 0 or n > group.depth:
        raise ValueError(
            f"{len(tile_sizes)} tile sizes for a depth-{group.depth} group"
        )
    tdims = tuple(tile_dims) if tile_dims is not None else tile_dim_names(group, n)
    key = (_group_key(program, group, n), tuple(tile_sizes), tdims)
    cached = _T2I_MEMO.get(key)
    if cached is not memo.MISS:
        return cached
    with instrument.span("tile_to_instances", group=group.name):
        return _tile_to_instances_miss(program, group, tile_sizes, tdims, key)


def _tile_to_instances_miss(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence,
    tdims: Tuple[str, ...],
    key: tuple,
) -> UnionMap:
    n = len(tile_sizes)
    pb = parametric_binding(program, group, tile_sizes, tdims)
    if pb is not None:
        names, binding = pb
        sym = tile_to_instances(program, group, names, tdims)
        return _T2I_MEMO.put(key, sym.specialize(binding))
    size_params = tuple(
        s for s in tile_sizes if isinstance(s, str)
    )
    maps: List[Map] = []
    for s in group.statements:
        stmt = program.statement(s)
        rows = group.rows[s]
        pieces = []
        params = tuple(dict.fromkeys(stmt.params + size_params))
        space = MapSpace(TILE_TUPLE, tdims, s, stmt.dims, params)
        for dpiece in stmt.domain.pieces:
            cons: List[Constraint] = list(dpiece.constraints)
            for d in range(n):
                t = LinExpr.var(tdims[d])
                row = rows[d]
                size = tile_sizes[d]
                size_expr = (
                    LinExpr.var(size) if isinstance(size, str) else LinExpr.const_expr(size)
                )
                cons.append(Constraint.le(t, row))
                cons.append(Constraint.lt(row, t + size_expr))
            pieces.append(BasicMap(space, cons))
        maps.append(Map(space, pieces))
    return _T2I_MEMO.put(key, UnionMap(maps))


def tile_footprint(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence[int],
    tensors: Sequence[str],
    tile_dims: Optional[Sequence[str]] = None,
) -> UnionMap:
    """Relation (4): ``{ (t) -> T[a] : tile t reads element a of T }``.

    Only reads of the listed ``tensors`` (the upwards-exposed data) are
    included; results are keyed ``(TILE_TUPLE, tensor)``.
    """
    with instrument.span("footprint", group=group.name, tensors=len(tensors)):
        fp = _tile_footprint(program, group, tile_sizes, tensors, tile_dims)
        instrument.annotate(relations=len(fp.maps))
        for m in fp.maps.values():
            instrument.observe(
                "footprint.pieces", len(m.pieces), buckets=(1, 2, 4, 8, 16, 32)
            )
        return fp


def _tile_footprint(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence[int],
    tensors: Sequence[str],
    tile_dims: Optional[Sequence[str]] = None,
) -> UnionMap:
    n = len(tile_sizes)
    key = (
        _group_key(program, group, n),
        _reads_key(program, group),
        tuple(tile_sizes),
        tuple(tile_dims) if tile_dims is not None else None,
        tuple(tensors),
    )
    cached = _FOOTPRINT_MEMO.get(key)
    if cached is not memo.MISS:
        return cached
    pb = parametric_binding(program, group, tile_sizes, tile_dims)
    if pb is not None:
        names, binding = pb
        sym = _tile_footprint(program, group, names, tensors, tile_dims)
        return _FOOTPRINT_MEMO.put(key, sym.specialize(binding))
    t2i = tile_to_instances(program, group, tile_sizes, tile_dims)
    out: Dict[str, Map] = {}
    for s in group.statements:
        stmt = program.statement(s)
        reads = stmt.read_relations()
        inst = t2i.get((TILE_TUPLE, s))
        if inst is None:
            continue
        for (_, tensor), access in reads.maps.items():
            if tensor not in tensors:
                continue
            fp = inst.apply_range(access)
            if fp.is_empty():
                continue
            if tensor in out:
                prev = out[tensor]
                rename = dict(zip(fp.space.out_dims, prev.space.out_dims))
                rename.update(zip(fp.space.in_dims, prev.space.in_dims))
                out[tensor] = prev.union(fp.rename_dims(rename))
            else:
                out[tensor] = fp
    instrument.count("footprint.relations", len(out))
    return _FOOTPRINT_MEMO.put(key, UnionMap(list(out.values())))


def footprint_size(
    fp: Map, tile_origin: Mapping[str, int], params: Mapping[str, int]
) -> int:
    """Exact number of elements a concrete tile touches."""
    n = fp.fix_params(params).image_of_point(tile_origin).count_points()
    instrument.observe(
        "footprint.size_elements",
        n,
        buckets=(64, 256, 1024, 4096, 16384, 65536, 262144, 1048576),
    )
    return n


def band_extents(
    program: Program, group: FusionGroup, params: Mapping[str, int]
) -> List[int]:
    """Extent of each outer band dimension over the group's statements."""
    extents = [0] * group.depth
    for s in group.statements:
        stmt = program.statement(s)
        box: Dict[str, Tuple[int, int]] = {}
        for piece in stmt.domain.fix_params(params).pieces:
            for dim, (lo, hi) in piece.bounding_box().items():
                if dim in box:
                    olo, ohi = box[dim]
                    box[dim] = (min(lo, olo), max(hi, ohi))
                else:
                    box[dim] = (lo, hi)
        for d in range(group.depth):
            row = group.rows[s][d]
            lo = hi = row.const
            for sym, c in row.coeffs.items():
                slo, shi = box.get(sym, (0, 0))
                if slo is None or shi is None:
                    raise ValueError(f"unbounded band row {row} in {group.name}")
                lo += c * (slo if c > 0 else shi)
                hi += c * (shi if c > 0 else slo)
            extents[d] = max(extents[d], hi - lo + 1)
    return extents


def interior_tile_origin(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence[int],
    tile_dims: Sequence[str],
    params: Mapping[str, int],
) -> Dict[str, int]:
    """An aligned tile origin near the middle of the band (representative
    of interior tiles for footprint/recompute estimation)."""
    origin: Dict[str, int] = {}
    stmt = program.statement(group.statements[0])
    dom = stmt.domain.fix_params(params)
    box = dom.bounding_box()
    for d, (tdim, size) in enumerate(zip(tile_dims, tile_sizes)):
        row = group.rows[stmt.name][d]
        lo = hi = row.const
        for sym, c in row.coeffs.items():
            slo, shi = box.get(sym, (0, 0))
            if slo is None or shi is None:
                raise ValueError(f"unbounded row {row} in group {group.name}")
            lo += c * (slo if c > 0 else shi)
            hi += c * (shi if c > 0 else slo)
        mid = (lo + hi) // 2
        aligned = (mid // size) * size
        aligned = max((lo // size) * size, min(aligned, (hi // size) * size))
        origin[tdim] = aligned
    return origin


def tile_count(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence[int],
    params: Mapping[str, int],
) -> int:
    """Number of tiles the tiling schedule produces (ceil per dimension)."""
    extents = band_extents(program, group, params)
    total = 1
    for d, size in enumerate(tile_sizes):
        total *= -(-extents[d] // size)
    return total


def write_footprint(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence[int],
    tensors: Sequence[str],
    tile_dims: Optional[Sequence[str]] = None,
) -> UnionMap:
    """Like :func:`tile_footprint` but for writes (used for store traffic)."""
    with instrument.span("write_footprint", group=group.name):
        return _write_footprint(program, group, tile_sizes, tensors, tile_dims)


def _write_footprint(
    program: Program,
    group: FusionGroup,
    tile_sizes: Sequence[int],
    tensors: Sequence[str],
    tile_dims: Optional[Sequence[str]] = None,
) -> UnionMap:
    n = len(tile_sizes)
    key = (
        _group_key(program, group, n),
        _reads_key(program, group),
        tuple(tile_sizes),
        tuple(tile_dims) if tile_dims is not None else None,
        tuple(tensors),
    )
    cached = _WRITE_FP_MEMO.get(key)
    if cached is not memo.MISS:
        return cached
    pb = parametric_binding(program, group, tile_sizes, tile_dims)
    if pb is not None:
        names, binding = pb
        sym = _write_footprint(program, group, names, tensors, tile_dims)
        return _WRITE_FP_MEMO.put(key, sym.specialize(binding))
    t2i = tile_to_instances(program, group, tile_sizes, tile_dims)
    out: List[Map] = []
    for s in group.statements:
        stmt = program.statement(s)
        if stmt.tensor_written() not in tensors:
            continue
        inst = t2i.get((TILE_TUPLE, s))
        if inst is None:
            continue
        fp = inst.apply_range(stmt.write_relation())
        if not fp.is_empty():
            out.append(fp)
    return _WRITE_FP_MEMO.put(key, UnionMap(out))
