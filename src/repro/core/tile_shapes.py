"""Algorithm 1 — constructing arbitrary tile shapes.

Rectangular/parallelogram tiling is applied *only* to live-out computation
spaces.  The tile shapes of intermediate computation spaces are then derived
from the per-tile footprints of the upwards-exposed data, as *extension
schedules* (relation (6)): affine maps from tile origins to the statement
instances each tile must recompute/keep locally.  The output is the paper's
``Mixed_Schedules``: an ordered union of tiling schedules and extension
schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..ir import Program
from ..presburger import Map, UnionMap
from ..scheduler import FusionGroup
from ..service import instrument
from .exposed import exposed_tensors
from .footprint import (
    TILE_TUPLE,
    interior_tile_origin,
    parametric_binding,
    tile_count,
    tile_dim_names,
    tile_footprint,
)


@dataclass(frozen=True)
class TargetSpec:
    """How much parallelism the target machine needs preserved.

    ``m_cap`` bounds the number of parallel dimensions the pass protects
    (1 for OpenMP CPUs, 2 for the CUDA grid); a live-out space is treated
    as tilable only when it offers at least ``min_m`` parallel dimensions
    (Section III-C).  ``max_recompute`` bounds the recomputation factor a
    fused intermediate space may incur (total extended instances over its
    domain size): halo-style overlap passes easily, while footprints that
    scale with a full problem dimension (the matmul-chain case) are
    rejected — the paper's fusion "never introduces redundancy" beyond
    bounded overlapped tiling.
    """

    name: str
    m_cap: int
    min_m: int
    max_recompute: float = 8.0
    #: Cluster-level budget: total recomputation ops a fusion cluster may
    #: accumulate, relative to its genuine work.  Deep stencil chains
    #: (Local Laplacian's 99 stages) split into several clusters once the
    #: accumulated halo work reaches this ratio, mirroring the cost-model
    #: guidance the paper's AKG integration applies.
    max_recompute_ratio: float = 2.0
    #: Per-tile fast-memory budget: fused intermediates must fit the
    #: target's scratchpad (CPU cache share / GPU shared memory / NPU
    #: unified buffer), or their traffic would spill right back to DRAM.
    scratch_bytes: int = 256 * 1024


CPU = TargetSpec("cpu", m_cap=1, min_m=1, scratch_bytes=4 * 1024 * 1024)
GPU = TargetSpec("gpu", m_cap=2, min_m=2, scratch_bytes=96 * 1024)
NPU = TargetSpec("npu", m_cap=1, min_m=1, scratch_bytes=256 * 1024)

TARGETS = {t.name: t for t in (CPU, GPU, NPU)}


@dataclass
class TilingScheduleEntry:
    """Rectangular/parallelogram tiling of one live-out computation space."""

    group: FusionGroup
    tile_sizes: Optional[Tuple[int, ...]]  # None: the group stays untiled
    tile_dims: Tuple[str, ...] = ()

    @property
    def is_tiled(self) -> bool:
        return self.tile_sizes is not None


@dataclass
class ExtensionScheduleEntry:
    """An extension schedule: tile origins -> intermediate instances."""

    group: FusionGroup
    target: FusionGroup
    relation: UnionMap  # keyed (TILE_TUPLE, stmt); in dims = target tile dims

    def instances_for_tile(self, stmt: str, origin, params) -> "object":
        m = self.relation.get((TILE_TUPLE, stmt))
        if m is None:
            raise KeyError(stmt)
        return m.fix_params(params).image_of_point(origin)


MixedEntry = Union[TilingScheduleEntry, ExtensionScheduleEntry]


@dataclass
class MixedSchedules:
    """Algorithm 1's output: ordered tiling + extension schedules.

    Extension entries always follow the tiling entry of their target group,
    nearest producer first — the order Algorithm 2 splices them in.
    """

    entries: List[MixedEntry] = field(default_factory=list)

    def tiling_entries(self) -> List[TilingScheduleEntry]:
        return [e for e in self.entries if isinstance(e, TilingScheduleEntry)]

    def extensions_of(self, group: FusionGroup) -> List[ExtensionScheduleEntry]:
        return [
            e
            for e in self.entries
            if isinstance(e, ExtensionScheduleEntry) and e.target is group
        ]

    def entry_of(self, group: FusionGroup) -> Optional[MixedEntry]:
        for e in self.entries:
            if e.group is group:
                return e
        return None

    def fused_groups(self) -> List[List[FusionGroup]]:
        """The fusion groups Algorithm 1 implies (one per tiling entry)."""
        out = []
        for t in self.tiling_entries():
            out.append([t.group] + [e.group for e in self.extensions_of(t.group)])
        return out


def construct_tile_shapes(
    program: Program,
    liveout: FusionGroup,
    intermediates: Sequence[FusionGroup],
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec = CPU,
) -> MixedSchedules:
    """Algorithm 1: build ``Mixed_Schedules`` for one live-out space.

    ``intermediates`` must be ordered nearest-producer-first (as produced
    by :func:`repro.core.exposed.intermediate_groups_of`).
    """
    mixed = MixedSchedules()
    _algorithm1(program, liveout, list(intermediates), tile_sizes, target, mixed)
    instrument.count("tile_shapes.entries", len(mixed.entries))
    return mixed


def effective_tile_sizes(
    group: FusionGroup, tile_sizes: Optional[Sequence[int]], target: TargetSpec
) -> Optional[Tuple[int, ...]]:
    """Clip the user tile-size vector to the group's band depth.

    When no sizes are given, fusion-without-tiling is realised with
    unit tiles over the protected parallel dimensions (the equake case of
    Section VI-A: an "empty" tiling that still enables post-tiling fusion).
    """
    if tile_sizes is None:
        m = min(group.n_parallel(), target.m_cap)
        if m == 0:
            return None
        return (1,) * m
    sizes = tuple(tile_sizes)[: group.depth]
    return sizes if sizes else None


#: Backwards-compatible alias for the pre-promotion private name.
_effective_tile_sizes = effective_tile_sizes


def _algorithm1(
    program: Program,
    liveout: FusionGroup,
    intermediates: List[FusionGroup],
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec,
    mixed: MixedSchedules,
) -> None:
    with instrument.span(
        "algorithm1", liveout=liveout.name, intermediates=len(intermediates)
    ):
        _algorithm1_step(
            program, liveout, intermediates, tile_sizes, target, mixed
        )


def _algorithm1_step(
    program: Program,
    liveout: FusionGroup,
    intermediates: List[FusionGroup],
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec,
    mixed: MixedSchedules,
) -> None:
    m = min(liveout.n_parallel(), target.m_cap)
    tilable = liveout.permutable and liveout.n_parallel() >= target.min_m
    sizes = effective_tile_sizes(liveout, tile_sizes, target) if tilable else None

    if sizes is None:
        # Line 18: the live-out space is not tilable; emit it untiled and
        # recurse over the remaining spaces.
        mixed.entries.append(TilingScheduleEntry(liveout, None))
        if intermediates:
            _algorithm1(
                program,
                intermediates[0],
                intermediates[1:],
                tile_sizes,
                target,
                mixed,
            )
        return

    tdims = tile_dim_names(liveout, len(sizes))
    mixed.entries.append(TilingScheduleEntry(liveout, sizes, tdims))

    # Lines 5-6: upwards-exposed data of the live-out space and the
    # footprint function f (relation (4)).
    all_spaces = [liveout] + intermediates
    data = list(exposed_tensors(program, liveout, all_spaces))
    footprints: Dict[str, Map] = {}
    # Parametric engine: run the footprint/extension algebra once with
    # symbolic tile sizes (size-independent memo keys shared by every
    # autotune candidate) and specialize only where a *decision* needs
    # concrete numbers or an entry leaves this pass.
    pb = parametric_binding(program, liveout, sizes, tdims)
    if pb is not None:
        names, binding = pb
        fp = tile_footprint(program, liveout, names, data, tdims)
    else:
        binding = None
        fp = tile_footprint(program, liveout, sizes, data, tdims)
    for (_, tensor), m_ in fp.maps.items():
        footprints[tensor] = m_

    untiled: List[FusionGroup] = []
    origin = interior_tile_origin(
        program, liveout, sizes, tdims, program.params
    )
    n_tiles = tile_count(program, liveout, sizes, program.params)
    budget = {
        "work": _group_domain_ops(program, liveout),
        "extra": 0.0,
        "scratch": 0.0,
    }
    for space in intermediates:
        # Line 7-8: preserve the live-out space's parallelism.
        n = space.n_parallel()
        if m > n:
            untiled.append(space)
            continue
        with instrument.span("fuse_space", space=space.name):
            entry = _fuse_space(
                program,
                space,
                liveout,
                footprints,
                tdims,
                origin,
                n_tiles,
                target,
                budget,
                binding,
            )
            instrument.annotate(fused=entry is not None)
        if entry is None:
            instrument.count("tile_shapes.rejected_spaces")
            untiled.append(space)
            continue
        instrument.count("tile_shapes.fused_spaces")
        mixed.entries.append(entry)

    # Line 17: recursively handle the spaces left untiled.
    if untiled:
        _algorithm1(
            program, untiled[0], untiled[1:], tile_sizes, target, mixed
        )


def _group_domain_ops(program: Program, group: FusionGroup) -> float:
    total = 0.0
    for s in group.statements:
        stmt = program.statement(s)
        vol = sum(
            piece.box_volume(program.params) for piece in stmt.domain.pieces
        )
        total += vol * stmt.ops_per_instance()
    return max(total, 1.0)


def _fuse_space(
    program: Program,
    space: FusionGroup,
    liveout: FusionGroup,
    footprints: Dict[str, Map],
    tdims: Tuple[str, ...],
    origin: Mapping[str, int],
    n_tiles: int,
    target: TargetSpec,
    budget: Dict[str, float],
    binding: Optional[Mapping[str, int]] = None,
) -> Optional[ExtensionScheduleEntry]:
    """Lines 9-16: extension schedules for every statement of ``space``.

    Statements are visited consumers-first so that footprints of tensors
    produced *within* the space become available for its earlier
    statements.  Returns None when the space writes nothing the tiles
    need (it then belongs to a later invocation of Algorithm 1) or when
    fusing would exceed the target's recomputation budget.

    With a parametric ``binding`` the footprints (and everything derived
    from them) carry symbolic tile-size parameters; the relation algebra
    then memoizes size-independently, and only budget decisions and the
    emitted extension relations are specialized to concrete sizes.
    """
    written = {
        program.statement(s).tensor_written() for s in space.statements
    }
    if not written & set(footprints):
        return None

    producers = {
        program.statement(s).tensor_written() for s in program.statement_names
    }

    def _conc(m: Map) -> Map:
        return m.specialize(binding) if binding else m
    # Work on a local copy: a rejected space must leave the footprint table
    # untouched, or its producers would be fused (and skipped) to serve a
    # consumer that still runs from its original, earlier position.
    local = dict(footprints)
    ext_maps: List[Map] = []
    space_extra = 0.0
    space_work = 0.0
    space_scratch = 0.0
    ordered = sorted(space.statements, key=program.statement_index, reverse=True)
    for s in ordered:
        stmt = program.statement(s)
        tensor = stmt.tensor_written()
        fp = local.get(tensor)
        if fp is None:
            continue
        # Relation (5) reversed write, then relation (6) = f . (5).  The
        # union of per-consumer footprints is collapsed to its simple hull:
        # overlapping disjuncts would otherwise re-extend (and re-execute)
        # the same instances once per piece.
        ext = (
            fp.apply_range(stmt.write_relation().reverse())
            .dedupe()
            .pattern_hull()
            .dedupe()
        )
        # Recomputation budgets.  Per space: instances all tiles would run
        # over the statement's domain size — halo overlap stays near 1,
        # footprints spanning a whole problem dimension (matmul chains)
        # blow past it.  Per cluster: accumulated recompute ops may not
        # exceed max_recompute_ratio of the cluster's genuine work, which
        # splits very deep stencil chains.
        per_tile = _image_box_volume(_conc(ext), origin, program.params)
        domain_size = sum(
            piece.box_volume(program.params) for piece in stmt.domain.pieces
        )
        if domain_size > 0:
            factor = per_tile * n_tiles / domain_size
            if factor > target.max_recompute:
                return None
            stmt_ops = stmt.ops_per_instance()
            extra_ops = max(0.0, (per_tile * n_tiles - domain_size)) * stmt_ops
            new_extra = budget["extra"] + space_extra + extra_ops
            new_work = budget["work"] + space_work + domain_size * stmt_ops
            if new_extra > target.max_recompute_ratio * new_work:
                return None
            # Fast-memory budget: the per-tile buffer this statement's
            # output occupies must still fit the target scratchpad.
            buffer_bytes = per_tile * 8.0
            if (
                budget["scratch"] + space_scratch + buffer_bytes
                > target.scratch_bytes
            ):
                return None
            space_extra += extra_ops
            space_work += domain_size * stmt_ops
            space_scratch += buffer_bytes
        ext_maps.append(ext)
        # Line 15: extend the exposed data with what s itself reads.  Pure
        # inputs (never written) cannot fuse anything, so their footprints
        # need not be tracked.
        for (_, read_tensor), access in stmt.read_relations().maps.items():
            if read_tensor not in producers:
                continue
            extra = ext.apply_range(access)
            if _conc(extra).is_empty():
                continue
            if read_tensor in local:
                prev = local[read_tensor]
                rename = dict(zip(extra.space.in_dims, prev.space.in_dims))
                rename.update(zip(extra.space.out_dims, prev.space.out_dims))
                merged = prev.union(extra.rename_dims(rename)).dedupe()
                if len(merged) > 1:
                    # Halo unions of consumer stages are shifted copies of
                    # one region; the simple hull collapses them (a sound
                    # over-approximation for footprints: extensions may
                    # only grow).
                    merged = merged.pattern_hull().dedupe()
                local[read_tensor] = merged
            else:
                local[read_tensor] = extra.dedupe()
    if not ext_maps:
        return None
    footprints.clear()
    footprints.update(local)
    budget["extra"] += space_extra
    budget["work"] += space_work
    budget["scratch"] += space_scratch
    # The emitted relation leaves this pass (post-fusion, cost model,
    # promotion all consume it), so it is always concrete.
    return ExtensionScheduleEntry(
        space, liveout, UnionMap([_conc(m) for m in ext_maps])
    )

def _image_box_volume(
    ext: Map, origin: Mapping[str, int], params: Mapping[str, int]
) -> float:
    """Box volume of the instances one representative tile extends."""
    image = ext.fix_params(params).image_of_point(origin)
    box = image.bounding_box()
    total = 1.0
    for lo, hi in box.values():
        if lo is None or hi is None:
            return float("inf")
        total *= max(hi - lo + 1, 0)
    return total
