"""``repro.partition`` — heterogeneous cpu/gpu/npu pipeline partitioning."""

from .host import TransferRecord, execute_partitioned
from .partitioner import (
    CutEdge,
    Partition,
    PartitionedSchedule,
    partition_pipeline,
)

__all__ = [
    "CutEdge",
    "Partition",
    "PartitionedSchedule",
    "TransferRecord",
    "execute_partitioned",
    "partition_pipeline",
]
