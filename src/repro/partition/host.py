"""Host glue: execute a :class:`~repro.partition.PartitionedSchedule`.

The interpreter backend plays all three machines.  The host owns one
store with the pipeline's deterministic initial contents (the same
:func:`~repro.codegen.interp.make_store` a single-target run uses — built
from the *original* program, so input seeding order is identical); each
partition gets a private device store, the host stages the referenced
tensors in, runs the partition's compiled tree, and stages the written
tensors back.  Because every stage-in copies the host's current value and
every stage-out copies the device's result verbatim, the final host store
is bit-identical to a single-store run of the same trees — which the
parity tests pin against the single-target reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..codegen.interp import execute_tree, make_store
from ..ir.tensor import TensorStore
from ..obs.trace import span
from .partitioner import PartitionedSchedule


@dataclass(frozen=True)
class TransferRecord:
    """One staged host<->device copy performed by the glue."""

    tensor: str
    src: str     # "host" or a partition name
    dst: str
    nbytes: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "tensor": self.tensor,
            "src": self.src,
            "dst": self.dst,
            "bytes": self.nbytes,
        }


def execute_partitioned(
    sched: PartitionedSchedule,
    params: Optional[Mapping[str, int]] = None,
    seed: int = 0,
) -> Tuple[TensorStore, Dict[str, int], List[TransferRecord]]:
    """Run every partition in order through the interpreter.

    Returns ``(host_store, per-statement instance counts, staged copies)``.
    The host store's final contents are bit-identical to
    :func:`~repro.codegen.interp.run_program` on a single-target compile
    of the same pipeline with the same ``seed``.
    """
    program = sched.program
    params = dict(program.params, **(params or {}))
    host = make_store(program, params, seed)
    staged: List[TransferRecord] = []

    if sched.is_degenerate:
        part = sched.partitions[0]
        with span(
            "partition.compute",
            partition=part.name,
            target=part.target,
            modeled_seconds=part.modeled_seconds,
        ):
            counts = execute_tree(part.result.tree, part.program, host, params)
        return host, counts, staged

    counts: Dict[str, int] = {}
    for part in sched.partitions:
        device = TensorStore(part.program.tensors, params)
        for tensor in part.program.tensors:
            array = host[tensor]
            with span(
                "partition.transfer",
                tensor=tensor,
                src="host",
                dst=part.name,
                bytes=array.nbytes,
            ):
                device.set_input(tensor, array)
            staged.append(
                TransferRecord(tensor, "host", part.name, array.nbytes)
            )
        with span(
            "partition.compute",
            partition=part.name,
            target=part.target,
            modeled_seconds=part.modeled_seconds,
        ):
            part_counts = execute_tree(
                part.result.tree, part.program, device, params
            )
        for name, n in part_counts.items():
            counts[name] = counts.get(name, 0) + n
        written = {
            program.statement(s).tensor_written() for s in part.statements
        }
        for tensor in sorted(written):
            array = device[tensor]
            with span(
                "partition.transfer",
                tensor=tensor,
                src=part.name,
                dst="host",
                bytes=array.nbytes,
            ):
                host.set_input(tensor, array)
            staged.append(
                TransferRecord(tensor, part.name, "host", array.nbytes)
            )
    return host, counts, staged
