"""Heterogeneous pipeline partitioning: one pipeline, three machines.

:func:`partition_pipeline` assigns each pipeline stage to one of the
``cpu``/``gpu``/``npu`` targets (beam search over per-stage analytical
costs, :mod:`repro.scheduler.partition_search`), groups contiguous
same-target runs into partitions, compiles every partition through the
standard :func:`repro.core.optimize` pass for its target, and prices each
cut edge with the transfer model on the **exact** Presburger footprint of
the consumed region — ``bytes = count_points(readers' footprint) * 8``.

The result is a :class:`PartitionedSchedule`: per-partition
:class:`~repro.core.OptimizeResult`\\ s plus the host glue the interpreter
backend executes end-to-end (:func:`repro.partition.host.execute_partitioned`),
bit-identical to a single-target run.

Degeneracy guarantee: with one candidate target (or when the search puts
every stage on the same target) the single partition *is* the original
program object, compiled through the same ``cached_optimize`` path with
the same :class:`~repro.options.CompileOptions` — schedule, generated
code and cache fingerprint are bit-identical to a plain compile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import OptimizeResult
from ..ir import Program
from ..machine import ITEMSIZE, analyze_optimized, program_cost, transfer_time
from ..options import CompileOptions, PartitionOptions
from ..scheduler.partition_search import (
    beam_assign,
    legal_targets,
    score_assignment,
    stage_infos,
)
from ..service.driver import cached_optimize
from ..service.fingerprint import fingerprint_request


@dataclass(frozen=True)
class CutEdge:
    """One producer/consumer edge crossing a partition boundary."""

    tensor: str
    src: str                 # producer partition name
    dst: str                 # consumer partition name
    src_target: str
    dst_target: str
    nbytes: int              # exact footprint of the consumed region
    seconds: float           # transfer model's price for this edge

    def as_dict(self) -> Dict[str, object]:
        return {
            "tensor": self.tensor,
            "src": self.src,
            "dst": self.dst,
            "src_target": self.src_target,
            "dst_target": self.dst_target,
            "bytes": self.nbytes,
            "seconds": self.seconds,
        }


@dataclass
class Partition:
    """One contiguous run of same-target stages, compiled for that target."""

    name: str
    target: str
    statements: Tuple[str, ...]
    program: Program         # the sub-program this partition executes
    options: CompileOptions  # exactly what it compiled with
    result: OptimizeResult
    fingerprint: str         # the compile-cache key of this partition
    modeled_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "target": self.target,
            "statements": list(self.statements),
            "tile_sizes": list(self.result.tile_sizes or ()) or None,
            "fingerprint": self.fingerprint,
            "modeled_seconds": self.modeled_seconds,
        }


@dataclass
class PartitionedSchedule:
    """A multi-target schedule: partitions, cut edges, modeled totals."""

    program: Program
    options: PartitionOptions
    assignment: Dict[str, str]          # statement -> target name
    partitions: List[Partition]
    cuts: List[CutEdge]
    modeled: Dict[str, object]          # {"mixed": {...}, "single": {...}}
    search_estimate_seconds: float

    @property
    def targets_used(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for p in self.partitions:
            if p.target not in seen:
                seen.append(p.target)
        return tuple(seen)

    @property
    def is_degenerate(self) -> bool:
        """True when everything landed on one target (single partition)."""
        return len(self.partitions) == 1

    def summary(self) -> Dict[str, object]:
        """A JSON-able description (CLI ``--stats``, serve RPC payload)."""
        return {
            "program": self.program.name,
            "targets": list(self.options.target_names),
            "assignment": dict(self.assignment),
            "partitions": [p.as_dict() for p in self.partitions],
            "cuts": [c.as_dict() for c in self.cuts],
            "modeled": self.modeled,
            "search_estimate_seconds": self.search_estimate_seconds,
        }


def _resolve_partition_options(options, targets, removed) -> PartitionOptions:
    if removed:
        names = ", ".join(sorted(removed))
        raise TypeError(
            f"partition_pipeline() no longer accepts per-keyword "
            f"configuration ({names}); construct repro.PartitionOptions(...) "
            f"and pass it as options="
        )
    if options is None:
        opts = PartitionOptions()
    elif isinstance(options, PartitionOptions):
        opts = options
    else:
        raise TypeError(
            f"options must be a repro.PartitionOptions or None, got {options!r}"
        )
    if targets is not None:
        opts = opts.replace(targets=targets)
    return opts


def _contiguous_runs(
    program: Program, assignment: Sequence[str]
) -> List[Tuple[str, List[str]]]:
    runs: List[Tuple[str, List[str]]] = []
    for stmt, target in zip(program.statements, assignment):
        if runs and runs[-1][0] == target:
            runs[-1][1].append(stmt.name)
        else:
            runs.append((target, [stmt.name]))
    return runs


def _subprogram(program: Program, name: str, stmt_names: Sequence[str]) -> Program:
    """The Program a partition executes: its statements, their tensors,
    live-out = everything a later statement (or the pipeline) consumes."""
    stmts = [program.statement(s) for s in stmt_names]
    referenced: Dict[str, None] = {}
    for stmt in stmts:
        for t in stmt.tensors_read():
            referenced.setdefault(t)
        referenced.setdefault(stmt.tensor_written())
    tensors = {t: program.tensors[t] for t in referenced}
    last = max(program.statement_index(s) for s in stmt_names)
    consumed_later = {
        t
        for stmt in program.statements[last + 1 :]
        for t in stmt.tensors_read()
    }
    written_here = {stmt.tensor_written() for stmt in stmts}
    liveout = sorted(written_here & (consumed_later | set(program.liveout)))
    return Program(name, stmts, tensors, dict(program.params), liveout)


def _canonical_region(region):
    """Rename a footprint region's (fresh, per-statement) dims to a
    canonical spelling so regions from different consumers union cleanly."""
    dims = region.space.dims
    return region.rename_dims({d: f"d{i}" for i, d in enumerate(dims)})


def _normalize_assignment(
    program: Program, assignment, stages, popts: PartitionOptions
) -> List[str]:
    """Validate an explicit per-statement assignment (manual placement)."""
    if isinstance(assignment, Mapping):
        missing = [s.name for s in program.statements if s.name not in assignment]
        if missing:
            raise ValueError(f"assignment misses statements: {missing}")
        ordered = [assignment[s.name] for s in program.statements]
    else:
        ordered = list(assignment)
        if len(ordered) != len(program.statements):
            raise ValueError(
                f"assignment has {len(ordered)} entries for "
                f"{len(program.statements)} statements"
            )
    names = popts.target_names
    for stage, target in zip(stages, ordered):
        if target not in names:
            raise ValueError(
                f"assignment places {stage.name!r} on {target!r}, not one "
                f"of the candidate targets {names}"
            )
        if target not in legal_targets(stage, names):
            raise ValueError(
                f"statement {stage.name!r} has no {target!r} mapping "
                f"(in-place update); choose another target"
            )
    return ordered


def partition_pipeline(
    program: Program,
    options: Optional[PartitionOptions] = None,
    *,
    targets=None,
    assignment=None,
    params: Optional[Mapping[str, int]] = None,
    **removed,
) -> PartitionedSchedule:
    """Partition ``program`` across heterogeneous targets and compile it.

    All configuration travels in one :class:`repro.PartitionOptions`
    (``targets=`` is accepted as a convenience and overrides the bundle's
    target list).  ``assignment=`` pins an explicit statement-to-target
    placement (a mapping or a program-order sequence) instead of running
    the beam search — manual placement, still legality-checked.  Each
    partition compiles through the standard :func:`~repro.core.optimize`
    pass via ``cached_optimize``; the returned
    :class:`PartitionedSchedule` carries per-partition results,
    exact-footprint cut edges and the modeled mixed vs. single-target
    totals.
    """
    popts = _resolve_partition_options(options, targets, removed)
    params = dict(program.params, **(params or {}))

    stages = stage_infos(program, params)
    if assignment is None:
        assignment, est = beam_assign(
            stages,
            popts.target_names,
            popts.transfer,
            threads=popts.threads,
            beam_width=popts.beam_width,
        )
    else:
        assignment = _normalize_assignment(program, assignment, stages, popts)
        est = score_assignment(
            stages, assignment, popts.transfer, threads=popts.threads
        )
    runs = _contiguous_runs(program, assignment)

    partitions: List[Partition] = []
    for i, (target, stmt_names) in enumerate(runs):
        if len(runs) == 1:
            part_program = program  # degenerate: identical fingerprint
        else:
            part_program = _subprogram(
                program, f"{program.name}.p{i}", stmt_names
            )
        copts = popts.compile_options(target)
        result = cached_optimize(part_program, options=copts)
        fp = fingerprint_request(
            part_program, copts.target, copts.tile_sizes, copts.startup
        )
        work = analyze_optimized(result, params)
        partitions.append(
            Partition(
                name=f"p{i}",
                target=target,
                statements=tuple(stmt_names),
                program=part_program,
                options=copts,
                result=result,
                fingerprint=fp,
                modeled_seconds=program_cost(work, target, popts.threads),
            )
        )

    cuts = _cut_edges(program, assignment, runs, partitions, popts, params)

    compute = sum(p.modeled_seconds for p in partitions)
    transfer = sum(c.seconds for c in cuts)
    illegal_on: Dict[str, bool] = {
        t: any(t in s.target_illegal for s in stages)
        for t in popts.target_names
    }
    single: Dict[str, Optional[float]] = {}
    for t in popts.target_names:
        if illegal_on[t]:
            single[t] = None  # no legal all-on-t mapping (e.g. in-place on npu)
            continue
        ref = cached_optimize(program, options=popts.compile_options(t))
        single[t] = program_cost(analyze_optimized(ref, params), t, popts.threads)
    modeled = {
        "mixed": {
            "compute_seconds": compute,
            "transfer_seconds": transfer,
            "total_seconds": compute + transfer,
        },
        "single": single,
    }

    stmt_assignment = {
        stmt.name: t for stmt, t in zip(program.statements, assignment)
    }
    return PartitionedSchedule(
        program=program,
        options=popts,
        assignment=stmt_assignment,
        partitions=partitions,
        cuts=cuts,
        modeled=modeled,
        search_estimate_seconds=est,
    )


def _cut_edges(
    program: Program,
    assignment: Sequence[str],
    runs: Sequence[Tuple[str, Sequence[str]]],
    partitions: Sequence[Partition],
    popts: PartitionOptions,
    params: Mapping[str, int],
) -> List[CutEdge]:
    """Exact-footprint cut edges between partitions.

    For every statement consuming a tensor whose latest producer sits in
    an earlier partition, the consumed region (the statement's read
    footprint, accumulator included) joins that edge; the edge's bytes are
    the ``count_points`` of the union of its regions — exact even when
    consumer footprints overlap.
    """
    part_of: Dict[str, int] = {}
    for i, (_, stmt_names) in enumerate(runs):
        for s in stmt_names:
            part_of[s] = i

    producer: Dict[str, str] = {}  # tensor -> latest writer statement
    regions: Dict[Tuple[int, int, str], object] = {}
    for stmt in program.statements:
        j = part_of[stmt.name]
        for (_, tensor), access in stmt.read_relations().maps.items():
            writer = producer.get(tensor)
            if writer is None:
                continue  # pipeline input: host-resident
            i = part_of[writer]
            if i == j:
                continue
            region = _canonical_region(
                access.apply_to_set(stmt.domain).fix_params(params)
            )
            key = (i, j, tensor)
            regions[key] = (
                region if key not in regions else regions[key].union(region)
            )
        producer[stmt.tensor_written()] = stmt.name

    cuts: List[CutEdge] = []
    for (i, j, tensor), region in sorted(
        regions.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
    ):
        nbytes = region.count_points() * ITEMSIZE
        src_t, dst_t = partitions[i].target, partitions[j].target
        cuts.append(
            CutEdge(
                tensor=tensor,
                src=partitions[i].name,
                dst=partitions[j].name,
                src_target=src_t,
                dst_target=dst_t,
                nbytes=nbytes,
                seconds=transfer_time(src_t, dst_t, nbytes, popts.transfer),
            )
        )
    return cuts
