"""Content-addressed fingerprints for compile requests.

A fingerprint is a SHA-256 digest over a *canonical* serialization of
``(Program, target, tile_sizes, startup heuristic)``.  Canonical means
structural: two programs built independently — different builder objects,
different process, different machine — hash identically as long as their
statements, domains, accesses, tensors, parameters and live-outs agree.
That is what makes the compile cache content-addressed rather than
identity-addressed.

The digest is salted with :data:`SCHEMA_VERSION`; bump it whenever the
optimizer's observable behaviour changes so stale cache entries can never
be served against new code.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..ir import Program, Statement
from ..ir.tensor import Tensor
from ..presburger import Set

#: Bump on any change to the optimizer or to this serialization format.
#: v3: byte-stable codegen (sorted FM elimination order) + memo spill store.
#: v4: OptimizeResult.tile_sizes now reports the effective (clipped or
#: defaulted) sizes, so v3 cached results deserialize with stale fields.
SCHEMA_VERSION = 4

_SALT = f"repro-compile-v{SCHEMA_VERSION}"


def canonical_set(s: Set) -> Dict[str, object]:
    """Order-independent structural form of an integer set."""
    pieces: List[List[str]] = []
    for piece in s.pieces:
        pieces.append(sorted(str(c) for c in piece.constraints))
    pieces.sort()
    return {
        "name": s.space.name,
        "dims": list(s.space.dims),
        "params": sorted(s.space.params),
        "pieces": pieces,
    }


def canonical_statement(stmt: Statement) -> Dict[str, object]:
    return {
        "name": stmt.name,
        "kind": stmt.kind,
        "reduce_op": stmt.reduce_op if stmt.kind == "reduce" else None,
        "domain": canonical_set(stmt.domain),
        "lhs": str(stmt.lhs),
        "rhs": str(stmt.rhs),
    }


def canonical_tensor(t: Tensor) -> Dict[str, object]:
    return {
        "name": t.name,
        "shape": [str(s) for s in t.shape],
        "dtype": np.dtype(t.dtype).str,
    }


def canonical_program(program: Program) -> Dict[str, object]:
    """The structural identity of a program (statement order matters —
    textual order is the initial schedule)."""
    return {
        "name": program.name,
        "statements": [canonical_statement(s) for s in program.statements],
        "tensors": [
            canonical_tensor(program.tensors[k]) for k in sorted(program.tensors)
        ],
        "params": {k: program.params[k] for k in sorted(program.params)},
        "liveout": list(program.liveout),
    }


def canonical_target(target: Union[str, object]) -> Dict[str, object]:
    """Serialize a target spec by value, resolving name aliases first.

    An unknown target name still fingerprints (it will fail in
    ``optimize`` itself) so one bad request cannot kill a whole batch.
    """
    from ..core.tile_shapes import TARGETS, TargetSpec

    if isinstance(target, str):
        if target not in TARGETS:
            return {"name": target, "unresolved": True}
        spec: TargetSpec = TARGETS[target]
    else:
        spec = target
    return {
        "name": spec.name,
        "m_cap": spec.m_cap,
        "min_m": spec.min_m,
        "max_recompute": spec.max_recompute,
        "max_recompute_ratio": spec.max_recompute_ratio,
        "scratch_bytes": spec.scratch_bytes,
    }


def canonical_request(
    program: Program,
    target: Union[str, object] = "cpu",
    tile_sizes: Optional[Sequence[int]] = None,
    startup: str = "smartfuse",
) -> Dict[str, object]:
    return {
        "salt": _SALT,
        "program": canonical_program(program),
        "target": canonical_target(target),
        "tile_sizes": list(tile_sizes) if tile_sizes is not None else None,
        "startup": startup,
    }


def _digest(obj: object) -> str:
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: Programs are treated as immutable once built (the compile cache already
#: depends on that), so the structural digest can be memoized per object.
#: Weak keys keep the memo from pinning programs or surviving id reuse.
_program_digests: "weakref.WeakKeyDictionary[Program, str]" = (
    weakref.WeakKeyDictionary()
)


def fingerprint_program(program: Program) -> str:
    """Digest of the program structure alone (no target, no tile sizes)."""
    digest = _program_digests.get(program)
    if digest is None:
        digest = _digest({"salt": _SALT, "program": canonical_program(program)})
        _program_digests[program] = digest
    return digest


def fingerprint_request(
    program: Program,
    target: Union[str, object] = "cpu",
    tile_sizes: Optional[Sequence[int]] = None,
    startup: str = "smartfuse",
) -> str:
    """The cache key of one ``optimize()`` invocation."""
    return _digest(canonical_request(program, target, tile_sizes, startup))
