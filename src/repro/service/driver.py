"""Batch-compile driver: dedupe, cache, fan out, never kill the batch.

``compile_batch`` takes N :class:`CompileRequest`\\ s and returns N
:class:`CompileOutcome`\\ s in the same order.  Identical requests (same
content fingerprint) are compiled once; cached fingerprints are served
without compiling at all; the rest fan out over ``concurrent.futures``
(process pool by default, with thread and serial fallbacks).  A request
that fails records its error string in its outcome — one infeasible
tiling never aborts the other N-1.

Requests that *do* compile start warm when the cache has a spilled memo
snapshot for their program (keyed by program fingerprint): the snapshot is
loaded into the presburger memo tables before compiling — in the worker
process itself under the process pool — and the (now larger) hot set is
spilled back afterwards.  Compiles are byte-deterministic, so entries
produced by any process are interchangeable.  Set ``REPRO_MEMO_SPILL=0``
to disable the round-trip.

``cached_optimize`` is the single-request convenience wrapper the CLI
uses: a memoized drop-in for :func:`repro.core.optimize`.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir import Program
from ..obs import distributed
from . import instrument
from .cache import CompileCache
from .fingerprint import fingerprint_program, fingerprint_request

#: Dispatch strategies for :func:`compile_batch`.
MODES = ("auto", "process", "thread", "serial")

ENV_MEMO_SPILL = "REPRO_MEMO_SPILL"


def memo_spill_enabled() -> bool:
    """Whether memo snapshots round-trip through the disk cache."""
    return os.environ.get(ENV_MEMO_SPILL, "1").lower() not in ("0", "false", "no")


def _memo_cache(cache: Optional[CompileCache]) -> Optional[CompileCache]:
    """The cache to spill memos through, or ``None`` when the round-trip
    is off (no cache, memory-only cache, or env-disabled)."""
    if cache is None or not cache.persistent or not memo_spill_enabled():
        return None
    return cache


def _memo_spec(cache: Optional[CompileCache]) -> Optional[str]:
    """A flat spec string a worker *process* rebuilds the memo cache
    from (see :attr:`CompileCache.spec`); ``None`` disables the worker's
    round-trip — also when the store has no cross-process spelling."""
    memo_cache = _memo_cache(cache)
    return None if memo_cache is None else memo_cache.spec


def load_program_memos(cache: CompileCache, program_fp: str) -> int:
    """Warm this process's memo tables from the spilled snapshot for one
    program; returns the number of entries installed."""
    from ..presburger import memo

    snap = cache.get_memos(program_fp)
    if not snap:
        return 0
    loaded = memo.load_snapshot(snap)
    if loaded:
        instrument.count("driver.memo_entries_loaded", loaded)
        instrument.count("driver.memo_warm_starts")
    return loaded


def spill_program_memos(cache: CompileCache, program_fp: str) -> None:
    """Spill the spillable memo tables back to disk under ``program_fp``."""
    from ..presburger import memo

    snap = memo.snapshot()
    if snap:
        cache.put_memos(program_fp, snap)
        instrument.count("driver.memo_spills")


def _batch_program_fps(requests: Sequence["CompileRequest"]) -> List[str]:
    return list(dict.fromkeys(fingerprint_program(r.program) for r in requests))


def _load_batch_memos(requests, cache: Optional[CompileCache]) -> None:
    """Warm the process memo tables for every program in the batch with
    one batched snapshot fetch (one remote round trip on a tiered
    cache), instead of a ``get_memos`` each."""
    if cache is None or not requests:
        return
    from ..presburger import memo

    snaps = cache.get_memos_many(_batch_program_fps(requests))
    for snap in snaps.values():
        loaded = memo.load_snapshot(snap)
        if loaded:
            instrument.count("driver.memo_entries_loaded", loaded)
            instrument.count("driver.memo_warm_starts")


def _spill_batch_memos(requests, cache: Optional[CompileCache]) -> None:
    if cache is None or not requests:
        return
    for fp in _batch_program_fps(requests):
        spill_program_memos(cache, fp)


@dataclass
class CompileRequest:
    """One ``optimize()`` invocation, by value."""

    program: Program
    target: Union[str, object] = "cpu"
    tile_sizes: Optional[Tuple[int, ...]] = None
    startup: str = "smartfuse"
    tag: Optional[str] = None
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if self.tile_sizes is not None:
            self.tile_sizes = tuple(self.tile_sizes)

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = fingerprint_request(
                self.program, self.target, self.tile_sizes, self.startup
            )
        return self._fingerprint


@dataclass
class CompileOutcome:
    """What happened to one request: a result, a cache hit, or an error."""

    request: CompileRequest
    fingerprint: str
    result: Optional[object] = None
    error: Optional[str] = None
    from_cache: bool = False
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_request(request: CompileRequest) -> Tuple[Optional[object], Optional[str]]:
    """Compile one request in-process; error strings match the serial
    autotuner's ``f"{type}: {exc}"`` format exactly."""
    from ..core import optimize
    from ..options import CompileOptions

    try:
        result = optimize(
            request.program,
            CompileOptions(
                target=request.target,
                tile_sizes=request.tile_sizes,
                startup=request.startup,
            ),
        )
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}"
    return result, None


#: Per-worker-process memo cache, keyed by spec.  Pool workers handle
#: many tasks; rebuilding a (possibly tiered, thread-owning) cache per
#: task would leak flush threads and cold connections.
_worker_memo_cache: Optional[Tuple[str, CompileCache]] = None


def _worker_cache_for(memo_spec: str) -> CompileCache:
    global _worker_memo_cache
    if _worker_memo_cache is None or _worker_memo_cache[0] != memo_spec:
        from .cache import resolve_cache

        if _worker_memo_cache is not None:
            _worker_memo_cache[1].close()
        _worker_memo_cache = (memo_spec, resolve_cache(memo_spec))
    return _worker_memo_cache[1]


def _worker_body(request: CompileRequest, memo_spec: Optional[str]):
    """One worker's compile, including its memo warm-start round-trip."""
    if memo_spec is not None:
        cache = _worker_cache_for(memo_spec)
        program_fp = fingerprint_program(request.program)
        load_program_memos(cache, program_fp)
        result, error = _run_request(request)
        if error is None:
            spill_program_memos(cache, program_fp)
            cache.flush(timeout=2.0)
    else:
        result, error = _run_request(request)
    return result, error


def _worker(payload: bytes) -> bytes:
    """Process-pool entry point: pickled ``(request, memo_spec, observe,
    trace)`` in, pickled ``(result, error, report)`` out.  The worker is a
    fresh process with empty memo tables — exactly where the disk spill
    pays off — so it rebuilds the memo cache from its spec, loads its
    program's snapshot itself and spills the result back.

    Collector stacks are per-thread and per-process, so a worker's spans
    and counters would silently vanish; when the driver is being observed
    the worker collects its own :class:`~repro.obs.CompileReport` (with
    span events when the driver is tracing) and ships it back for merging.

    A distributed trace context rides along as its ``traceparent`` header
    form: the worker re-enters it (so its spans carry the trace id and
    any stores it touches propagate the ``X-Repro-Trace`` header) and
    exports it to :data:`repro.obs.distributed.ENV_VAR` for grandchild
    processes.
    """
    request, memo_spec, observe, trace, ctx_header = pickle.loads(payload)
    ctx = distributed.TraceContext.from_header(ctx_header)
    if ctx is not None:
        os.environ[distributed.ENV_VAR] = ctx.to_header()
    if observe:
        with distributed.use_context(ctx):
            with instrument.collect(trace=trace) as report:
                attrs = {"fingerprint": request.fingerprint[:12]}
                if ctx is not None:
                    attrs["trace_id"] = ctx.trace_id
                    attrs["parent_span_id"] = ctx.span_id
                with instrument.span("compile_worker", **attrs):
                    result, error = _worker_body(request, memo_spec)
    else:
        report = None
        result, error = _worker_body(request, memo_spec)
    return pickle.dumps((result, error, report))


def _default_workers(n_tasks: int) -> int:
    return max(1, min(n_tasks, os.cpu_count() or 1))


def _abort_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a process pool down *now*, without waiting for its compiles.

    ``ProcessPoolExecutor.__exit__`` joins every worker, so a
    KeyboardInterrupt mid-batch would hang until the slowest compile
    finishes (or leak workers if the driver is killed).  Instead: cancel
    everything still queued, terminate the live worker processes, and
    reap them with a bounded join so no zombies linger.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in list(procs):
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in list(procs):
        try:
            proc.join(timeout=1.0)
        except Exception:
            pass


def _dispatch(
    requests: List[CompileRequest],
    mode: str,
    max_workers: Optional[int],
    cache: Optional[CompileCache] = None,
) -> List[Tuple[Optional[object], Optional[str]]]:
    """Compile ``requests`` (already deduplicated), preserving order.

    Worker spans and counters land in per-worker reports (collector
    stacks are thread- and process-local) which are merged back into the
    driver's active collectors here, so batch reports account for work
    done off the driver thread.
    """
    if mode not in MODES:
        raise ValueError(f"unknown dispatch mode {mode!r}; expected one of {MODES}")
    memo_cache = _memo_cache(cache)
    if mode == "serial" or len(requests) <= 1:
        # Serial runs on the driver thread where collectors already see
        # every span directly — no side report to merge.
        _load_batch_memos(requests, memo_cache)
        results = [_run_request(r) for r in requests]
        _spill_batch_memos(requests, memo_cache)
        return results

    observe, trace = instrument.active(), instrument.tracing()
    ctx = distributed.current_context()
    ctx_header = ctx.to_header() if ctx is not None else None
    workers = max_workers or _default_workers(len(requests))
    if mode in ("auto", "process"):
        try:
            memo_spec = _memo_spec(cache)
            payloads = [
                pickle.dumps((r, memo_spec, observe, trace, ctx_header))
                for r in requests
            ]
            t0 = time.perf_counter()
            pool = ProcessPoolExecutor(max_workers=workers)
        except Exception:
            if mode == "process":
                raise
            payloads = None
            # auto: an unpicklable program or a sandboxed interpreter
            # (no fork/semaphores) degrades to threads below.
        if payloads is not None:
            try:
                futures = [pool.submit(_worker, p) for p in payloads]
                raw = [f.result() for f in futures]
            except BaseException as exc:
                # A KeyboardInterrupt (or any dispatch failure) must not
                # wait on — or orphan — the in-flight workers.
                _abort_pool(pool)
                if mode == "process" or not isinstance(exc, Exception):
                    raise
                # auto + ordinary failure: degrade to threads below.
            else:
                pool.shutdown()
                results = []
                for b in raw:
                    result, error, report = pickle.loads(b)
                    if report is not None:
                        # Worker-process perf_counter epochs are not
                        # comparable to ours: rebase onto the dispatch start.
                        instrument.merge_report(report, at=t0)
                        instrument.count("driver.worker_reports_merged")
                    results.append((result, error))
                return results
    # Threads share the process-wide memo tables: load once, spill once.
    _load_batch_memos(requests, memo_cache)

    def _threaded(request: CompileRequest):
        if not observe:
            return _run_request(request) + (None,)
        # Worker threads have fresh thread-locals: re-enter the driver's
        # trace context so store hops under this compile stay linked.
        with distributed.use_context(ctx):
            with instrument.collect(trace=trace) as report:
                attrs = {"fingerprint": request.fingerprint[:12]}
                if ctx is not None:
                    attrs["trace_id"] = ctx.trace_id
                    attrs["parent_span_id"] = ctx.span_id
                with instrument.span("compile_worker", **attrs):
                    result, error = _run_request(request)
        return result, error, report

    try:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            triples = list(pool.map(_threaded, requests))
    except Exception:
        if mode == "thread":
            raise
        triples = [_run_request(r) + (None,) for r in requests]
    results = []
    for result, error, report in triples:
        if report is not None:
            # Same process, same clock: no rebase needed.
            instrument.merge_report(report)
            instrument.count("driver.worker_reports_merged")
        results.append((result, error))
    _spill_batch_memos(requests, memo_cache)
    return results


def compile_batch(
    requests: Sequence[CompileRequest],
    options=None,
    **removed,
) -> List[CompileOutcome]:
    """Compile many requests; one outcome per request, same order.

    Identical fingerprints are compiled once and the result fanned back
    out.  With a cache, warm fingerprints skip compilation entirely
    and fresh results are stored for the next batch (or process).

    A :class:`repro.CompileOptions` supplies the driver knobs —
    ``mode``/``jobs``/``cache`` — in one validated bundle (``None`` uses
    the defaults: auto dispatch, cpu-count workers, no cache).  The
    retired per-keyword spellings raise a ``TypeError`` pointing at
    ``CompileOptions``.

    When ambient dataset collection is on (``$REPRO_DATASET``), each
    successful explicitly-tiled request also appends one candidate record
    to the autotune dataset (:mod:`repro.data`); requests the autotuner
    tagged record through the tuner instead.
    """
    from ..options import resolve_options

    opts = resolve_options(options, "compile_batch", **removed)
    mode, max_workers, cache = opts.mode, opts.jobs, opts.cache
    with instrument.span("compile_batch", mode=mode, requests=len(requests)):
        outcomes: List[CompileOutcome] = [
            CompileOutcome(request=r, fingerprint=r.fingerprint) for r in requests
        ]

        # Dedupe: first request per fingerprint is the representative.
        unique: Dict[str, int] = {}
        for i, out in enumerate(outcomes):
            unique.setdefault(out.fingerprint, i)
        instrument.count("driver.requests", len(outcomes))
        instrument.count("driver.unique_requests", len(unique))

        # Warm fingerprints are served from the cache.
        cached: Dict[str, object] = {}
        if cache is not None:
            for fp in unique:
                hit = cache.get(fp)
                if hit is not None:
                    cached[fp] = hit
        to_compile = [
            outcomes[i].request for fp, i in unique.items() if fp not in cached
        ]

        t0 = time.perf_counter()
        compiled = dict(
            zip(
                (r.fingerprint for r in to_compile),
                _dispatch(to_compile, mode, max_workers, cache),
            )
        )
        elapsed = time.perf_counter() - t0

        for fp, (result, error) in compiled.items():
            if cache is not None and error is None:
                cache.put(fp, result)

        for out in outcomes:
            if out.fingerprint in cached:
                out.result = cached[out.fingerprint]
                out.from_cache = True
            else:
                result, error = compiled[out.fingerprint]
                out.result, out.error = result, error
                out.seconds = elapsed / max(len(to_compile), 1)
        if cache is not None:
            instrument.count("driver.cache_hits", len(cached))
        _collect_batch_records(outcomes)
    return outcomes


def _collect_batch_records(outcomes: Sequence[CompileOutcome]) -> None:
    """Append dataset records for a batch's tiled compiles (best effort).

    Only runs under ambient collection (``$REPRO_DATASET``); skips
    requests without explicit tile sizes (nothing to learn from), failed
    compiles, and requests the autotuner tagged (the tuner records those
    itself, with the sweep's exact threads and search context).
    """
    from ..data import collection_enabled, dataset_from_env, make_record

    if not collection_enabled():
        return
    try:
        from ..learn.features import ranking_features
        from ..machine import analyze_optimized, cpu_time, gpu_time, work_features

        records = []
        seen = set()
        for out in outcomes:
            r = out.request
            if (
                r.tag == "autotune"
                or r.tile_sizes is None
                or not out.ok
                or out.result is None
                or out.fingerprint in seen
            ):
                continue
            seen.add(out.fingerprint)
            try:
                work = analyze_optimized(out.result)
                name = r.target if isinstance(r.target, str) else r.target.name
                cost = (
                    gpu_time(work) if name == "gpu" else cpu_time(work, 32)
                )
                records.append(
                    make_record(
                        fingerprint=fingerprint_program(r.program),
                        tile_sizes=r.tile_sizes,
                        cost=cost,
                        features=ranking_features(
                            r.program, r.tile_sizes, len(r.tile_sizes)
                        ),
                        program=r.program.name,
                        target=name,
                        startup=r.startup,
                        threads=32,
                        dims=len(r.tile_sizes),
                        work=work_features(work),
                        source="batch",
                    )
                )
            except Exception:
                continue
        if records:
            dataset = dataset_from_env()
            if dataset is not None:
                dataset.append(records)
    except Exception:
        # Collection must never fail a compile batch.
        pass


def cached_optimize(
    program: Program,
    options=None,
    **removed,
):
    """Memoized :func:`repro.core.optimize`.

    Uses the process-wide default cache when none is given; raises
    exactly what ``optimize`` would raise on failure.  Configuration is a
    :class:`repro.CompileOptions` (``target``/``tile_sizes``/``startup``/
    ``cache``), passed positionally or as ``options=``; the retired
    per-keyword spellings raise a ``TypeError`` pointing there.
    """
    from ..core import optimize
    from ..options import resolve_options
    from .cache import default_cache

    opts = resolve_options(options, "cached_optimize", **removed)
    cache = opts.cache if opts.cache is not None else default_cache()
    key = fingerprint_request(program, opts.target, opts.tile_sizes, opts.startup)
    result = cache.get(key)
    if result is None:
        memo_cache = _memo_cache(cache)
        program_fp = fingerprint_program(program) if memo_cache else None
        if memo_cache is not None:
            load_program_memos(memo_cache, program_fp)
        result = optimize(program, options=opts.replace(cache=None))
        cache.put(key, result)
        if memo_cache is not None:
            spill_program_memos(memo_cache, program_fp)
    return result
