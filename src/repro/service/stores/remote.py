"""The shared remote tier: a tiny stdlib HTTP store and its client.

This is the sccache-style piece: one :class:`StoreServer` (a
``ThreadingHTTPServer`` wrapping any :class:`~repro.service.stores.base.
CacheStore`, normally a :class:`~repro.service.stores.local.LocalStore`
on a directory) and N compile daemons whose
:class:`~repro.service.stores.layered.LayeredStore` read through and
write behind it — so a fingerprint compiled by any server in the fleet
is a cache hit for every other one.

Protocol (deliberately dumb, stdlib-only, trusted-network):

* ``GET    /cache/<kind>/<key>``  → 200 + raw payload bytes, or 404
* ``HEAD   /cache/<kind>/<key>``  → 200 or 404
* ``PUT    /cache/<kind>/<key>``  → 204 (body = raw payload bytes)
* ``DELETE /cache/<kind>/<key>``  → 204 or 404
* ``POST   /batch/<kind>``        → JSON ``{"keys": [...]}`` in,
  JSON ``{"entries": {key: base64}}`` out — the one-round-trip batched
  memo fetch used by ``get_memos_many``
* ``GET    /keys/<kind>``         → JSON ``{"keys": [...]}``
* ``GET    /info``                → JSON store info
* ``POST   /gc``                  → JSON GC report (query params
  ``max_bytes``/``max_age``/``dry_run``)
* ``GET    /healthz``             → 200 ``ok``

Payloads are opaque bytes end to end — the server never unpickles
anything it is handed, and the schema/corruption validation happens in
the backing :class:`LocalStore` exactly as it does for a local tier.

:class:`HTTPStore` is the blocking client.  Connections are per-thread
(``http.client`` is not thread-safe) with a short default timeout;
transport failures raise :class:`~repro.service.stores.base.
StoreUnavailable`, which the layered tier converts into
count-and-degrade instead of a request failure.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ...obs import distributed
from ...obs.trace import annotate, span
from .base import (
    KINDS,
    CacheStore,
    GCReport,
    OpLog,
    StoreUnavailable,
    check_kind,
)

#: Maximum accepted request body (a compile result is well under this).
MAX_BODY_BYTES = 256 * 1024 * 1024

_KEY_RE = re.compile(r"^[0-9a-fA-F]{4,128}$")
_CACHE_PATH_RE = re.compile(r"^/cache/(results|memos)/([0-9a-fA-F]{4,128})$")


def _valid_key(key: str) -> bool:
    return bool(_KEY_RE.match(key))


class _StoreHandler(BaseHTTPRequestHandler):
    """One request; the backing store hangs off the server object."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-store/1"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def store(self) -> CacheStore:
        return self.server.store

    def parse_request(self):
        self._t0 = time.perf_counter()
        return super().parse_request()

    def _send(self, code: int, body: bytes = b"", content_type: str = "application/octet-stream"):
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        # Distributed tracing: echo the caller's context back and report
        # server-side handling time so the caller can place a store-server
        # span inside its own transport span.
        trace_header = self.headers.get(distributed.HEADER)
        handle_seconds = None
        if trace_header:
            self.send_header(distributed.HEADER, trace_header)
            t0 = getattr(self, "_t0", None)
            if t0 is not None:
                handle_seconds = time.perf_counter() - t0
                self.send_header(
                    distributed.SERVER_MS_HEADER, f"{handle_seconds * 1e3:.3f}"
                )
        self.end_headers()
        if self.command != "HEAD" and body:
            self.wfile.write(body)
        if trace_header:
            self._log_trace(trace_header, code, handle_seconds)

    def _log_trace(
        self, trace_header: str, code: int, handle_seconds: Optional[float]
    ) -> None:
        """Append this traced request to the server's event log."""
        events = getattr(self.server, "events", None)
        if events is None:
            return
        ctx = distributed.TraceContext.from_header(trace_header)
        if ctx is None:
            return
        verb = self.command.lower()
        events.emit(
            f"store.{verb}", trace=ctx, path=self.path, status=code
        )
        if ctx.sampled and handle_seconds is not None:
            events.emit_trace(
                {
                    "schema": distributed.WIRE_SCHEMA,
                    "service": "store",
                    "trace_id": ctx.trace_id,
                    "parent_span_id": ctx.span_id,
                    "wall_t0": time.time() - handle_seconds,
                    "spans": [
                        {
                            "id": 1,
                            "parent": None,
                            "name": f"store.server.{verb}",
                            "start": 0.0,
                            "dur": handle_seconds,
                            "tid": 0,
                            "attrs": {"path": self.path, "status": code},
                        }
                    ],
                    "dropped": 0,
                    "truncated": 0,
                }
            )

    def _send_json(self, code: int, obj) -> None:
        self._send(code, json.dumps(obj).encode(), "application/json")

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "body too large"})
            return None
        return self.rfile.read(length)

    def _cache_target(self) -> Optional[Tuple[str, str]]:
        m = _CACHE_PATH_RE.match(urlparse(self.path).path)
        if not m:
            self._send_json(404, {"error": "bad cache path"})
            return None
        return m.group(1), m.group(2)

    # -- verbs --------------------------------------------------------------

    def do_GET(self):
        path = urlparse(self.path).path
        if path == "/healthz":
            return self._send(200, b"ok", "text/plain")
        if path == "/info":
            return self._send_json(200, self.store.info())
        if path.startswith("/keys/"):
            kind = path[len("/keys/"):]
            if kind not in KINDS:
                return self._send_json(404, {"error": f"unknown kind {kind!r}"})
            return self._send_json(200, {"keys": self.store.keys(kind)})
        target = self._cache_target()
        if target is None:
            return
        blob = self.store.get(*target)
        if blob is None:
            return self._send_json(404, {"error": "miss"})
        self._send(200, blob)

    def do_HEAD(self):
        target = self._cache_target()
        if target is None:
            return
        if self.store.contains(*target):
            self._send(200)
        else:
            self._send(404)

    def do_PUT(self):
        target = self._cache_target()
        if target is None:
            return
        body = self._read_body()
        if body is None:
            return
        log = OpLog()
        ok = self.store.put(*target, body, log)
        if not ok:
            return self._send_json(507, {"error": "store write failed"})
        self._send(204)

    def do_DELETE(self):
        target = self._cache_target()
        if target is None:
            return
        self._send(204 if self.store.delete(*target) else 404)

    def do_POST(self):
        url = urlparse(self.path)
        if url.path.startswith("/batch/"):
            kind = url.path[len("/batch/"):]
            if kind not in KINDS:
                return self._send_json(404, {"error": f"unknown kind {kind!r}"})
            body = self._read_body()
            if body is None:
                return
            try:
                keys = json.loads(body or b"{}").get("keys", [])
            except ValueError:
                return self._send_json(400, {"error": "bad JSON body"})
            keys = [k for k in keys if isinstance(k, str) and _valid_key(k)]
            found = self.store.get_many(kind, keys)
            return self._send_json(
                200,
                {
                    "entries": {
                        k: base64.b64encode(v).decode("ascii")
                        for k, v in found.items()
                    }
                },
            )
        if url.path == "/gc":
            params = parse_qs(url.query)

            def _num(name, conv):
                vals = params.get(name)
                return conv(vals[0]) if vals else None

            try:
                report = self.store.gc(
                    max_bytes=_num("max_bytes", lambda v: int(float(v))),
                    max_age=_num("max_age", float),
                    dry_run=_num("dry_run", lambda v: v in ("1", "true")) or False,
                )
            except ValueError as exc:
                return self._send_json(400, {"error": str(exc)})
            return self._send_json(200, report.as_dict())
        self._send_json(404, {"error": "unknown endpoint"})


class StoreServer:
    """A cache store served over HTTP, on its own daemon thread.

    ``python -m repro cache serve --dir D --port P`` runs one as a
    process; tests and benchmarks embed it::

        with StoreServer(LocalStore(dir)) as srv:
            remote = HTTPStore(srv.url)
    """

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        events_path: Optional[str] = None,
    ):
        if not isinstance(store, CacheStore):
            # A directory path: serve a LocalStore over it.
            from .local import LocalStore

            store = LocalStore(os.fspath(store), tier="remote")
        from ...obs.events import EventLog

        self.store = store
        self.events = EventLog(path=events_path)
        self._httpd = ThreadingHTTPServer((host, port), _StoreHandler)
        self._httpd.daemon_threads = True
        self._httpd.store = store
        self._httpd.events = self.events
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "StoreServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-store-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve loop (the CLI path)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        self.events.close()

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class HTTPStore(CacheStore):
    """Blocking client half of the shared remote tier.

    One ``http.client.HTTPConnection`` per thread (stdlib connections
    are not thread-safe); every transport failure closes the connection
    and surfaces as :class:`StoreUnavailable` so the layered tier can
    back off.  Server-reported misses (404) are plain ``None`` misses.
    """

    tier = "remote"

    def __init__(self, url: str, timeout: float = 5.0, tier: Optional[str] = None):
        super().__init__(tier)
        parsed = urlparse(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"remote store URL must be http://host:port, got {url!r}")
        self.url = url.rstrip("/")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self._local = threading.local()

    # -- transport ----------------------------------------------------------

    def _conn(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            self._local.conn = conn
        return conn

    def _drop_conn(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except Exception:
                pass
            self._local.conn = None

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        # One silent retry through a fresh connection: a keep-alive
        # connection the server idled out looks like a send/recv error.
        headers = {}
        ctx = distributed.current_context()
        if ctx is not None:
            headers[distributed.HEADER] = ctx.to_header()
        self._local.server_ms = None
        for attempt in (0, 1):
            conn = self._conn()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                payload = resp.read()
                ms = resp.getheader(distributed.SERVER_MS_HEADER)
                if ms is not None:
                    try:
                        self._local.server_ms = float(ms)
                    except ValueError:
                        pass
                return resp.status, payload
            except (OSError, http.client.HTTPException) as exc:
                self._drop_conn()
                if attempt:
                    raise StoreUnavailable(
                        f"{method} {self.url}{path}: {type(exc).__name__}: {exc}"
                    ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def _annotate(self, **attrs) -> None:
        """Attach transport outcome (+ server-side ms, if echoed) to the
        innermost open traced span (no-op when not tracing)."""
        server_ms = getattr(self._local, "server_ms", None)
        if server_ms is not None:
            attrs["server_ms"] = server_ms
        annotate(**attrs)

    def _call(self, method: str, path: str, body: Optional[bytes] = None) -> Tuple[int, bytes]:
        status, payload = self._request(method, path, body)
        if status >= 500:
            raise StoreUnavailable(f"{method} {path} -> HTTP {status}")
        return status, payload

    # -- CacheStore ----------------------------------------------------------

    def get(self, kind: str, key: str, log: Optional[OpLog] = None) -> Optional[bytes]:
        check_kind(kind)
        self.stats.inc("gets")
        t0 = time.perf_counter()
        with span("store.get", tier=self.tier, kind=kind, key=key[:12]):
            try:
                status, payload = self._call("GET", f"/cache/{kind}/{key}")
            except StoreUnavailable:
                self.stats.inc("errors")
                if log is not None:
                    log.errors += 1
                raise
            finally:
                self.stats.observe_get(time.perf_counter() - t0)
            self._annotate(hit=status == 200)
        if status == 200:
            self.stats.inc("hits")
            if log is not None and log.tier is None:
                log.tier = self.tier
            return payload
        self.stats.inc("misses")
        return None

    def get_many(
        self, kind: str, keys: Iterable[str], log: Optional[OpLog] = None
    ) -> Dict[str, bytes]:
        check_kind(kind)
        keys = list(keys)
        if not keys:
            return {}
        self.stats.inc("batched_gets")
        self.stats.inc("gets", len(keys))
        body = json.dumps({"keys": keys}).encode()
        with span("store.get_many", tier=self.tier, kind=kind, keys=len(keys)):
            try:
                status, payload = self._call("POST", f"/batch/{kind}", body)
            except StoreUnavailable:
                self.stats.inc("errors")
                if log is not None:
                    log.errors += 1
                raise
            if status != 200:
                self.stats.inc("misses", len(keys))
                self._annotate(hits=0)
                return {}
            entries = json.loads(payload).get("entries", {})
            out = {k: base64.b64decode(v) for k, v in entries.items()}
            self._annotate(hits=len(out))
        self.stats.inc("hits", len(out))
        self.stats.inc("misses", len(keys) - len(out))
        if out and log is not None and log.tier is None:
            log.tier = self.tier
        return out

    def put(self, kind: str, key: str, blob: bytes, log: Optional[OpLog] = None) -> bool:
        check_kind(kind)
        self.stats.inc("puts")
        t0 = time.perf_counter()
        with span(
            "store.put", tier=self.tier, kind=kind, key=key[:12], bytes=len(blob)
        ):
            try:
                status, _ = self._call("PUT", f"/cache/{kind}/{key}", blob)
            except StoreUnavailable:
                self.stats.inc("errors")
                if log is not None:
                    log.errors += 1
                raise
            finally:
                self.stats.observe_put(time.perf_counter() - t0)
            self._annotate(ok=status == 204)
        if status == 204:
            if log is not None:
                log.stored = True
            return True
        self.stats.inc("errors")
        if log is not None:
            log.errors += 1
        return False

    def delete(self, kind: str, key: str) -> bool:
        check_kind(kind)
        self.stats.inc("deletes")
        status, _ = self._call("DELETE", f"/cache/{kind}/{key}")
        return status == 204

    def contains(self, kind: str, key: str) -> bool:
        check_kind(kind)
        status, _ = self._call("HEAD", f"/cache/{kind}/{key}")
        return status == 200

    def keys(self, kind: str) -> List[str]:
        check_kind(kind)
        status, payload = self._call("GET", f"/keys/{kind}")
        if status != 200:
            return []
        return list(json.loads(payload).get("keys", []))

    def info(self) -> Dict[str, object]:
        try:
            status, payload = self._call("GET", "/info")
        except StoreUnavailable as exc:
            return {"tier": self.tier, "url": self.url, "error": str(exc)}
        info = json.loads(payload) if status == 200 else {}
        info["tier"] = self.tier
        info["url"] = self.url
        info["client_stats"] = self.stats.as_dict()
        return info

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        dry_run: bool = False,
    ) -> GCReport:
        params = []
        if max_bytes is not None:
            params.append(f"max_bytes={max_bytes}")
        if max_age is not None:
            params.append(f"max_age={max_age}")
        if dry_run:
            params.append("dry_run=1")
        query = ("?" + "&".join(params)) if params else ""
        status, payload = self._call("POST", f"/gc{query}")
        report = GCReport(dry_run=dry_run)
        if status == 200:
            d = json.loads(payload)
            report.scanned = d.get("scanned", 0)
            report.scanned_bytes = d.get("scanned_bytes", 0)
            report.expired = d.get("expired", 0)
            report.evicted = d.get("evicted", 0)
            report.removed_bytes = d.get("removed_bytes", 0)
            report.remaining_entries = d.get("remaining_entries", 0)
            report.remaining_bytes = d.get("remaining_bytes", 0)
            report.errors = d.get("errors", 0)
        return report

    def ping(self) -> bool:
        """True when the server answers ``/healthz``."""
        try:
            status, _ = self._call("GET", "/healthz")
        except StoreUnavailable:
            return False
        return status == 200

    def close(self) -> None:
        self._drop_conn()

    @property
    def spec(self) -> Optional[str]:
        return self.url

    def __repr__(self) -> str:  # pragma: no cover
        return f"HTTPStore({self.url!r})"
