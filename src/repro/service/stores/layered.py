"""Layered store: local-first reads, write-behind remote publication.

The tiering policy of the fabric, as one composable store:

* **get** — local first (the hot path never pays remote latency); on a
  local miss, read through the remote tier and *backfill* the local
  store so the next read is local.
* **put** — local synchronously (compile results must survive the
  process), then enqueue the entry on a bounded flush queue; a single
  background thread publishes queued entries to the remote tier.  The
  compile hot path never blocks on remote latency, and a full queue
  drops the flush (counted, logged) rather than stall — the remote tier
  is an optimisation, the local tier is the source of truth.
* **get_many** — locals served individually, the misses fetched from
  the remote in one batched round trip, hits backfilled.
* **dead remote** — any transport failure marks the remote tier down
  for ``retry_interval`` seconds: reads and flushes skip it (counted as
  ``remote_down_skips``) instead of paying a timeout each, then one
  probe re-opens it.  A dead remote therefore degrades the fabric to
  exactly the pre-fabric local-only behavior, with zero request
  failures.

The layered store's own :class:`TierStats` carries the fabric-level
counters (backfills, flush queue depth/drops, down-skips); the wrapped
local and remote stores keep their own per-tier hit/miss/latency stats,
and :meth:`tiers` surfaces all three to the metrics registry.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from .base import CacheStore, GCReport, OpLog, StoreUnavailable, TierStats

logger = logging.getLogger("repro.cache")

#: Default bound on the write-behind queue (entries, not bytes).
DEFAULT_FLUSH_QUEUE = 256

#: Seconds a failed remote tier stays marked down before one retry probe.
DEFAULT_RETRY_INTERVAL = 5.0

_STOP = object()


class LayeredStore(CacheStore):
    """Local tier + remote tier under one :class:`CacheStore` surface."""

    tier = "layered"

    def __init__(
        self,
        local: CacheStore,
        remote: CacheStore,
        flush_queue: int = DEFAULT_FLUSH_QUEUE,
        retry_interval: float = DEFAULT_RETRY_INTERVAL,
    ):
        super().__init__()
        self.local = local
        self.remote = remote
        self.retry_interval = retry_interval
        self._queue: "queue.Queue" = queue.Queue(maxsize=flush_queue)
        self._outstanding = 0  # queued + currently flushing
        self._flush_cv = threading.Condition()
        self._down_until = 0.0
        self._down_lock = threading.Lock()
        self.stats.set_gauge("inflight_flush", 0)
        self.stats.set_gauge("remote_down", 0)
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-cache-flush", daemon=True
        )
        self._flusher.start()

    # -- remote liveness -----------------------------------------------------

    def _remote_alive(self) -> bool:
        with self._down_lock:
            return time.monotonic() >= self._down_until

    def _mark_remote_down(self, exc: Exception) -> None:
        with self._down_lock:
            was_down = time.monotonic() < self._down_until
            self._down_until = time.monotonic() + self.retry_interval
        self.stats.set_gauge("remote_down", 1)
        if not was_down:
            logger.warning(
                "remote cache tier unavailable, degrading to local-only "
                "for %.1fs: %s", self.retry_interval, exc
            )

    def _mark_remote_up(self) -> None:
        with self._down_lock:
            if self._down_until:
                self._down_until = 0.0
        self.stats.set_gauge("remote_down", 0)

    # -- reads ---------------------------------------------------------------

    def get(self, kind: str, key: str, log: Optional[OpLog] = None) -> Optional[bytes]:
        blob = self.local.get(kind, key, log)
        if blob is not None:
            return blob
        blob = self._remote_get(kind, key, log)
        if blob is not None:
            self._backfill(kind, key, blob)
        return blob

    def get_many(
        self, kind: str, keys: Iterable[str], log: Optional[OpLog] = None
    ) -> Dict[str, bytes]:
        keys = list(keys)
        out: Dict[str, bytes] = {}
        missing: List[str] = []
        for key in keys:
            blob = self.local.get(kind, key, log)
            if blob is None:
                missing.append(key)
            else:
                out[key] = blob
        if missing and self._remote_alive():
            try:
                fetched = self.remote.get_many(kind, missing, log)
            except StoreUnavailable as exc:
                self._mark_remote_down(exc)
                if log is not None:
                    log.errors += 1
            else:
                self._mark_remote_up()
                for key, blob in fetched.items():
                    self._backfill(kind, key, blob)
                out.update(fetched)
        elif missing:
            self.stats.inc("remote_down_skips")
        return out

    def _remote_get(self, kind: str, key: str, log: Optional[OpLog]) -> Optional[bytes]:
        if not self._remote_alive():
            self.stats.inc("remote_down_skips")
            return None
        try:
            blob = self.remote.get(kind, key, log)
        except StoreUnavailable as exc:
            self._mark_remote_down(exc)
            if log is not None:
                log.errors += 1
            return None
        self._mark_remote_up()
        return blob

    def _backfill(self, kind: str, key: str, blob: bytes) -> None:
        self.stats.inc("backfills")
        self.local.put(kind, key, blob)

    # -- writes --------------------------------------------------------------

    def put(self, kind: str, key: str, blob: bytes, log: Optional[OpLog] = None) -> bool:
        ok = self.local.put(kind, key, blob, log)
        self._enqueue_flush(kind, key, blob)
        return ok

    def delete(self, kind: str, key: str) -> bool:
        removed = self.local.delete(kind, key)
        if self._remote_alive():
            try:
                self.remote.delete(kind, key)
            except StoreUnavailable as exc:
                self._mark_remote_down(exc)
        return removed

    def _enqueue_flush(self, kind: str, key: str, blob: bytes) -> None:
        with self._flush_cv:
            try:
                self._queue.put_nowait((kind, key, blob))
            except queue.Full:
                self.stats.inc("flush_dropped")
                logger.warning(
                    "write-behind queue full (%d entries); dropping remote "
                    "flush of %s/%s", self._queue.maxsize, kind, key[:12]
                )
                return
            self._outstanding += 1
            self.stats.inc("flush_queued")
            self.stats.set_gauge("inflight_flush", self._outstanding)

    def _flush_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            kind, key, blob = item
            try:
                if self._remote_alive():
                    t0 = time.perf_counter()
                    try:
                        # The remote put-skip lives server-side in its
                        # LocalStore; a HEAD probe here would double the
                        # round trips for nothing.
                        self.remote.put(kind, key, blob)
                    except StoreUnavailable as exc:
                        self._mark_remote_down(exc)
                        self.stats.inc("flush_errors")
                    except Exception:
                        self.stats.inc("flush_errors")
                    else:
                        self._mark_remote_up()
                    finally:
                        self.stats.observe_flush(time.perf_counter() - t0)
                else:
                    self.stats.inc("remote_down_skips")
            finally:
                with self._flush_cv:
                    self._outstanding -= 1
                    self.stats.set_gauge("inflight_flush", self._outstanding)
                    self._flush_cv.notify_all()

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until the write-behind queue is drained (tests, drain)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._flush_cv:
            while self._outstanding > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._flush_cv.wait(remaining)
        return True

    # -- maintenance ---------------------------------------------------------

    def contains(self, kind: str, key: str) -> bool:
        if self.local.contains(kind, key):
            return True
        if not self._remote_alive():
            return False
        try:
            found = self.remote.contains(kind, key)
        except StoreUnavailable as exc:
            self._mark_remote_down(exc)
            return False
        self._mark_remote_up()
        return found

    def keys(self, kind: str) -> List[str]:
        return self.local.keys(kind)

    def entries(self, kind: str):
        return self.local.entries(kind)

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        dry_run: bool = False,
    ) -> GCReport:
        """GC the *local* tier; the remote store garbage-collects itself
        (its own budget, its own ``repro cache gc`` / ``POST /gc``)."""
        return self.local.gc(max_bytes=max_bytes, max_age=max_age, dry_run=dry_run)

    def clear(self, kind: str, remote: bool = False) -> int:
        removed = self.local.clear(kind)
        if remote and self._remote_alive():
            try:
                self.remote.clear(kind)
            except StoreUnavailable as exc:
                self._mark_remote_down(exc)
        return removed

    def info(self) -> Dict[str, object]:
        info = dict(self.local.info())
        info["tier"] = self.tier
        info["fabric"] = self.stats.as_dict()
        info["remote"] = {
            "spec": self.remote.spec,
            "alive": self._remote_alive(),
            "stats": self.remote.stats.as_dict(),
        }
        return info

    def tiers(self) -> List[Tuple[str, TierStats]]:
        return (
            [(self.tier, self.stats)]
            + self.local.tiers()
            + self.remote.tiers()
        )

    def close(self) -> None:
        self.flush(timeout=5.0)
        self._queue.put(_STOP)
        self._flusher.join(5.0)
        self.local.close()
        self.remote.close()

    @property
    def spec(self) -> Optional[str]:
        local, remote = self.local.spec, self.remote.spec
        if local is None or remote is None:
            return None
        return f"tiered:{local}|{remote}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"LayeredStore(local={self.local!r}, remote={self.remote!r})"
