"""The ``CacheStore`` interface: what every persistent cache tier speaks.

A store is a durable byte-blob map with two *kinds* of entries —
``"results"`` (pickled :class:`~repro.core.pipeline.OptimizeResult`
payloads) and ``"memos"`` (spilled presburger memo snapshots) — both
keyed by content-addressed fingerprints.  :class:`~repro.service.cache.
CompileCache` is a tiering *policy* (memory LRU + legacy stat ledger)
over one store; the store owns durability: on-disk framing, atomic
writes, corruption eviction, garbage collection.

Three implementations ship with the fabric:

* :class:`~repro.service.stores.local.LocalStore` — the sharded
  local-directory layout (what the pre-fabric ``CompileCache`` inlined);
* :class:`~repro.service.stores.remote.HTTPStore` — a blocking client
  for the tiny stdlib HTTP store server, so many compile servers share
  one warm tier;
* :class:`~repro.service.stores.layered.LayeredStore` — local-first
  reads with remote read-through + local backfill, and write-behind
  flushing to the remote tier from a bounded background queue.

Every store carries a :class:`TierStats` (thread-safe counters plus
get/put latency histograms) and exposes ``tiers()`` so composite stores
can surface *all* their tiers to the metrics registry.  Callers that
need per-operation outcomes (the legacy :class:`~repro.service.cache.
CacheStats` ledger) pass an :class:`OpLog`, which the store fills in
instead of raising: a cache tier must never take a compile down.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from ...obs.metrics import Histogram

#: The two entry kinds every store must accept.
KINDS = ("results", "memos")

#: Histogram bucket bounds for store get/put latencies, in milliseconds.
STORE_LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0
)


def check_kind(kind: str) -> str:
    if kind not in KINDS:
        raise ValueError(f"unknown cache entry kind {kind!r}; expected one of {KINDS}")
    return kind


@dataclass
class OpLog:
    """Per-operation outcome report, filled in by the store.

    The :class:`~repro.service.cache.CompileCache` ledger predates the
    store split and counts *policy-level* events (disk hits, corrupt
    evictions, degraded writes); stores report those through this log so
    the legacy counters keep their exact semantics without the store
    having to know about them.
    """

    tier: Optional[str] = None  #: tier that served a hit ("local"/"remote")
    errors: int = 0  #: I/O or corruption errors encountered
    evictions: int = 0  #: corrupt/stale entries evicted along the way
    stored: bool = False  #: a put wrote a new durable entry
    skipped: bool = False  #: a put was skipped (entry already durable)


class EntryInfo(NamedTuple):
    """One durable entry, as seen by ``entries()``/GC."""

    kind: str
    key: str
    size: int
    mtime: float


class TierStats:
    """Thread-safe per-tier counters and latency histograms.

    One instance per concrete tier; composite stores aggregate via
    :meth:`CacheStore.tiers`.  ``counters``/``gauges``/``histograms``
    snapshot into plain dicts for ``cache info`` and the serve daemon's
    ``repro-metrics/1`` endpoint.
    """

    COUNTER_NAMES = (
        "gets", "hits", "misses", "puts", "put_skips", "deletes",
        "errors", "evictions", "backfills", "batched_gets",
        "flush_queued", "flush_dropped", "flush_errors", "remote_down_skips",
    )

    def __init__(self, tier: str):
        self.tier = tier
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self.get_ms = Histogram(STORE_LATENCY_BUCKETS_MS)
        self.put_ms = Histogram(STORE_LATENCY_BUCKETS_MS)
        self.flush_ms = Histogram(STORE_LATENCY_BUCKETS_MS)

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe_get(self, seconds: float) -> None:
        with self._lock:
            self.get_ms.observe(seconds * 1e3)

    def observe_put(self, seconds: float) -> None:
        with self._lock:
            self.put_ms.observe(seconds * 1e3)

    def observe_flush(self, seconds: float) -> None:
        with self._lock:
            self.flush_ms.observe(seconds * 1e3)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        """Fresh copies, safe to hand to a registry or serializer."""
        with self._lock:
            return {
                "get_ms": Histogram.from_dict(self.get_ms.as_dict()),
                "put_ms": Histogram.from_dict(self.put_ms.as_dict()),
                "flush_ms": Histogram.from_dict(self.flush_ms.as_dict()),
            }

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = dict(self.counters())
        out.update(self.gauges())
        with self._lock:
            out["get_ms_mean"] = self.get_ms.mean
            out["put_ms_mean"] = self.put_ms.mean
            out["flush_ms_mean"] = self.flush_ms.mean
        return out


@dataclass
class GCReport:
    """What one garbage-collection sweep did (or would do)."""

    scanned: int = 0
    scanned_bytes: int = 0
    expired: int = 0  #: entries past ``max_age``
    evicted: int = 0  #: mtime-LRU evictions to meet ``max_bytes``
    removed_bytes: int = 0
    remaining_entries: int = 0
    remaining_bytes: int = 0
    dry_run: bool = False
    errors: int = 0

    @property
    def removed(self) -> int:
        return self.expired + self.evicted

    def as_dict(self) -> Dict[str, object]:
        return {
            "scanned": self.scanned,
            "scanned_bytes": self.scanned_bytes,
            "expired": self.expired,
            "evicted": self.evicted,
            "removed": self.removed,
            "removed_bytes": self.removed_bytes,
            "remaining_entries": self.remaining_entries,
            "remaining_bytes": self.remaining_bytes,
            "dry_run": self.dry_run,
            "errors": self.errors,
        }

    def merge(self, other: "GCReport") -> "GCReport":
        self.scanned += other.scanned
        self.scanned_bytes += other.scanned_bytes
        self.expired += other.expired
        self.evicted += other.evicted
        self.removed_bytes += other.removed_bytes
        self.remaining_entries += other.remaining_entries
        self.remaining_bytes += other.remaining_bytes
        self.errors += other.errors
        self.dry_run = self.dry_run or other.dry_run
        return self


class CacheStore:
    """Abstract persistent tier.  Payloads are opaque bytes; keys are
    content-addressed fingerprints (hex strings, >= 4 chars).

    Implementations must be thread-safe and must never raise out of
    ``get``/``put``/``delete`` for I/O or data errors — report through
    the :class:`OpLog` and their :class:`TierStats` instead.  (Remote
    stores raise :class:`StoreUnavailable` from transport failures so the
    layered tier can count and back off; the layered store swallows it.)
    """

    #: Human-readable tier name ("local", "remote", "layered", ...).
    tier = "store"

    def __init__(self, tier: Optional[str] = None):
        if tier is not None:
            self.tier = tier
        self.stats = TierStats(self.tier)

    # -- required interface -------------------------------------------------

    def get(self, kind: str, key: str, log: Optional[OpLog] = None) -> Optional[bytes]:
        raise NotImplementedError

    def put(self, kind: str, key: str, blob: bytes, log: Optional[OpLog] = None) -> bool:
        """Make ``blob`` durable under ``(kind, key)``; True on success
        (including a skip because the entry already exists)."""
        raise NotImplementedError

    def delete(self, kind: str, key: str) -> bool:
        raise NotImplementedError

    def keys(self, kind: str) -> List[str]:
        raise NotImplementedError

    def info(self) -> Dict[str, object]:
        raise NotImplementedError

    # -- optional interface (sane defaults) ---------------------------------

    def get_many(
        self, kind: str, keys: Iterable[str], log: Optional[OpLog] = None
    ) -> Dict[str, bytes]:
        """Batched get; one round trip where the transport allows it."""
        out: Dict[str, bytes] = {}
        for key in keys:
            blob = self.get(kind, key, log)
            if blob is not None:
                out[key] = blob
        return out

    def contains(self, kind: str, key: str) -> bool:
        return self.get(kind, key) is not None

    def entries(self, kind: str) -> List[EntryInfo]:
        return []

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        dry_run: bool = False,
    ) -> GCReport:
        return GCReport(dry_run=dry_run)

    def clear(self, kind: str) -> int:
        removed = 0
        for key in self.keys(kind):
            if self.delete(kind, key):
                removed += 1
        return removed

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait for any write-behind work to land; True when drained."""
        return True

    def close(self) -> None:
        pass

    def tiers(self) -> List[Tuple[str, TierStats]]:
        """Every (tier name, stats) pair this store aggregates."""
        return [(self.tier, self.stats)]

    @property
    def spec(self) -> Optional[str]:
        """A string :func:`~repro.service.cache.resolve_cache` can turn
        back into an equivalent store in another process, or ``None``
        when the store is not spec-addressable (tests, fakes)."""
        return None


class StoreUnavailable(Exception):
    """A remote tier could not be reached (connect/timeout/HTTP 5xx)."""


__all__ = [
    "KINDS",
    "CacheStore",
    "EntryInfo",
    "GCReport",
    "OpLog",
    "StoreUnavailable",
    "TierStats",
    "check_kind",
]
