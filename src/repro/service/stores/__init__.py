"""``repro.service.stores`` — pluggable persistent cache tiers.

:class:`~repro.service.cache.CompileCache` is a tiering policy (memory
LRU + stat ledger) over one :class:`CacheStore`; this package holds the
store implementations:

* :class:`LocalStore` — sharded local directory (atomic writes, put
  skip, running counters, TTL/size GC);
* :class:`HTTPStore` / :class:`StoreServer` — the shared remote tier: a
  tiny stdlib HTTP store server and its blocking client;
* :class:`LayeredStore` — local-first reads with remote read-through +
  backfill, and write-behind flushing off the compile hot path.

``resolve_store`` turns a spec string back into a store — the same
strings :attr:`CacheStore.spec` produces — so a tier configuration can
travel to worker processes or the CLI as one flat string:

* a directory path → :class:`LocalStore`;
* ``http://host:port`` → :class:`HTTPStore`;
* ``tiered:<local>|<remote>`` → :class:`LayeredStore` over the two.
"""

from __future__ import annotations

import os
from typing import Optional

from .base import (
    KINDS,
    CacheStore,
    EntryInfo,
    GCReport,
    OpLog,
    StoreUnavailable,
    TierStats,
)
from .layered import LayeredStore
from .local import LocalStore, default_gc_budget
from .remote import HTTPStore, StoreServer

TIERED_PREFIX = "tiered:"


def resolve_store(
    spec: str,
    tier: Optional[str] = None,
    gc_max_bytes: Optional[int] = None,
    gc_max_age: Optional[float] = None,
) -> CacheStore:
    """A :class:`CacheStore` from its spec string (see module docstring).

    GC budgets apply to the local tier (layered: the local side only;
    the remote store server owns its own budget).
    """
    spec = os.fspath(spec)
    if spec.startswith(TIERED_PREFIX):
        body = spec[len(TIERED_PREFIX):]
        local_spec, sep, remote_spec = body.partition("|")
        if not sep or not local_spec or not remote_spec:
            raise ValueError(
                f"tiered cache spec must be 'tiered:<local>|<remote>', got {spec!r}"
            )
        return LayeredStore(
            resolve_store(
                local_spec, gc_max_bytes=gc_max_bytes, gc_max_age=gc_max_age
            ),
            resolve_store(remote_spec, tier="remote"),
        )
    if spec.startswith("http://"):
        return HTTPStore(spec, tier=tier)
    return LocalStore(
        spec, tier=tier, gc_max_bytes=gc_max_bytes, gc_max_age=gc_max_age
    )


__all__ = [
    "KINDS",
    "TIERED_PREFIX",
    "CacheStore",
    "EntryInfo",
    "GCReport",
    "HTTPStore",
    "LayeredStore",
    "LocalStore",
    "OpLog",
    "StoreServer",
    "StoreUnavailable",
    "TierStats",
    "default_gc_budget",
    "resolve_store",
]
