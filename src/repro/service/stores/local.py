"""Sharded local-directory store: the fabric's fast durable tier.

The on-disk layout is byte-compatible with the pre-fabric
``CompileCache`` disk tier, so existing cache directories keep working:

* results: ``<dir>/<key[:2]>/<key>.pkl``
* memos:   ``<dir>/memos/<key[:2]>/<key>.pkl``

Each file is a pickled ``(magic, schema, key, payload)`` envelope;
anything corrupt, truncated or from another schema generation is evicted
on load instead of crashing the compile.  Writes are atomic
(``mkstemp`` + ``os.replace``), so concurrent processes hammering one
directory can only ever observe whole entries.

Fabric additions over the inlined original:

* **Put skip** — keys are content-addressed, so an entry that already
  exists on disk is byte-identical to what we would write; ``put``
  checks ``os.path.exists`` first and skips the re-pickle + replace on
  the warm path (counted as ``put_skips``).
* **Running counters** — entry/byte totals per kind are kept
  incrementally (reconciled by one walk on first use) so ``info()`` is
  O(1) instead of re-walking the tree on every stats poll.
* **Garbage collection** — ``gc(max_bytes, max_age)`` drops entries
  older than ``max_age`` seconds, then evicts mtime-LRU entries until
  the store fits ``max_bytes``; ``put`` triggers an opportunistic sweep
  when a configured budget is exceeded (rate-limited so the hot path
  stays O(1) amortized).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from typing import Dict, Iterable, List, Optional

from ..fingerprint import SCHEMA_VERSION
from .base import (
    KINDS,
    CacheStore,
    EntryInfo,
    GCReport,
    OpLog,
    check_kind,
)

_MAGIC = "repro-cache"

#: Opportunistic GC runs at most once per this many puts.
GC_PUT_INTERVAL = 64

ENV_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"
ENV_MAX_AGE = "REPRO_CACHE_MAX_AGE"


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def default_gc_budget() -> tuple:
    """(max_bytes, max_age) from the environment, either may be None."""
    max_bytes = _env_float(ENV_MAX_BYTES)
    max_age = _env_float(ENV_MAX_AGE)
    return (int(max_bytes) if max_bytes is not None else None, max_age)


class LocalStore(CacheStore):
    """Durable sharded directory store (see module docstring)."""

    tier = "local"

    def __init__(
        self,
        directory: str,
        tier: Optional[str] = None,
        gc_max_bytes: Optional[int] = None,
        gc_max_age: Optional[float] = None,
    ):
        super().__init__(tier)
        self.directory = directory
        self.gc_max_bytes = gc_max_bytes
        self.gc_max_age = gc_max_age
        self._lock = threading.Lock()
        # Running totals per kind; None until the first reconcile walk.
        self._counts: Optional[Dict[str, int]] = None
        self._bytes: Optional[Dict[str, int]] = None
        self._puts_since_gc = 0

    # -- paths ---------------------------------------------------------------

    def _base(self, kind: str) -> str:
        check_kind(kind)
        if kind == "results":
            return self.directory
        return os.path.join(self.directory, kind)

    def path(self, kind: str, key: str) -> str:
        return os.path.join(self._base(kind), key[:2], f"{key}.pkl")

    # -- core ops ------------------------------------------------------------

    def get(self, kind: str, key: str, log: Optional[OpLog] = None) -> Optional[bytes]:
        self.stats.inc("gets")
        t0 = time.perf_counter()
        path = self.path(kind, key)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
            magic, schema, stored_key, blob = entry
            if magic != _MAGIC or schema != SCHEMA_VERSION or stored_key != key:
                raise ValueError("stale or foreign cache entry")
            if not isinstance(blob, bytes):
                raise ValueError("malformed cache payload")
        except FileNotFoundError:
            self.stats.inc("misses")
            self.stats.observe_get(time.perf_counter() - t0)
            return None
        except Exception:
            # Corrupted, truncated or stale entry: evict, never crash.
            self.stats.inc("errors")
            if log is not None:
                log.errors += 1
            if self._evict(kind, key) and log is not None:
                log.evictions += 1
            self.stats.inc("misses")
            self.stats.observe_get(time.perf_counter() - t0)
            return None
        self.stats.inc("hits")
        self.stats.observe_get(time.perf_counter() - t0)
        if log is not None and log.tier is None:
            log.tier = self.tier
        return blob

    def put(self, kind: str, key: str, blob: bytes, log: Optional[OpLog] = None) -> bool:
        self.stats.inc("puts")
        t0 = time.perf_counter()
        path = self.path(kind, key)
        try:
            if os.path.exists(path):
                # Content-addressed: same key, same bytes — skip the write.
                self.stats.inc("put_skips")
                if log is not None:
                    log.skipped = True
                return True
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump((_MAGIC, SCHEMA_VERSION, key, blob), f)
                size = os.path.getsize(tmp)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            # A read-only or full cache dir degrades to memory-only.
            self.stats.inc("errors")
            if log is not None:
                log.errors += 1
            return False
        finally:
            self.stats.observe_put(time.perf_counter() - t0)
        with self._lock:
            if self._counts is not None:
                self._counts[kind] += 1
                self._bytes[kind] += size
        if log is not None:
            log.stored = True
        self._maybe_gc()
        return True

    def delete(self, kind: str, key: str) -> bool:
        self.stats.inc("deletes")
        return self._remove(kind, self.path(kind, key))

    def _evict(self, kind: str, key: str) -> bool:
        if self._remove(kind, self.path(kind, key)):
            self.stats.inc("evictions")
            return True
        return False

    def _remove(self, kind: str, path: str) -> bool:
        try:
            size = os.path.getsize(path)
            os.unlink(path)
        except OSError:
            return False
        with self._lock:
            if self._counts is not None:
                self._counts[kind] = max(0, self._counts[kind] - 1)
                self._bytes[kind] = max(0, self._bytes[kind] - size)
        return True

    def contains(self, kind: str, key: str) -> bool:
        return os.path.exists(self.path(kind, key))

    def keys(self, kind: str) -> List[str]:
        return [e.key for e in self.entries(kind)]

    def clear(self, kind: str) -> int:
        removed = 0
        for e in self.entries(kind):
            if self._remove(kind, self.path(kind, e.key)):
                removed += 1
        return removed

    # -- walking + counters --------------------------------------------------

    def entries(self, kind: str) -> List[EntryInfo]:
        base = self._base(kind)
        out: List[EntryInfo] = []
        if not os.path.isdir(base):
            return out
        for sub in sorted(os.listdir(base)):
            subdir = os.path.join(base, sub)
            # The memos store nests under the results tree; don't count
            # its entries as results.
            if not os.path.isdir(subdir) or (kind == "results" and sub in KINDS):
                continue
            for name in sorted(os.listdir(subdir)):
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(subdir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                out.append(EntryInfo(kind, name[: -len(".pkl")], st.st_size, st.st_mtime))
        return out

    def reconcile(self) -> None:
        """Re-walk the tree and resync the running entry/byte counters.

        Runs lazily on the first ``info()``/GC and after any sweep;
        cross-process writers drift the counters between reconciles,
        which is fine for stats polling (GC always re-walks).
        """
        counts = {k: 0 for k in KINDS}
        sizes = {k: 0 for k in KINDS}
        for kind in KINDS:
            for e in self.entries(kind):
                counts[kind] += 1
                sizes[kind] += e.size
        with self._lock:
            self._counts, self._bytes = counts, sizes

    def _counters(self) -> tuple:
        with self._lock:
            if self._counts is not None:
                return dict(self._counts), dict(self._bytes)
        self.reconcile()
        with self._lock:
            return dict(self._counts), dict(self._bytes)

    def info(self) -> Dict[str, object]:
        counts, sizes = self._counters()
        return {
            "tier": self.tier,
            "directory": self.directory,
            "schema_version": SCHEMA_VERSION,
            "entries": counts["results"],
            "bytes": sizes["results"],
            "memo_entries": counts["memos"],
            "memo_bytes": sizes["memos"],
            "gc_max_bytes": self.gc_max_bytes,
            "gc_max_age": self.gc_max_age,
            "stats": self.stats.as_dict(),
        }

    # -- garbage collection --------------------------------------------------

    def _maybe_gc(self) -> None:
        """Opportunistic sweep on put, rate-limited and budget-gated."""
        if self.gc_max_bytes is None and self.gc_max_age is None:
            return
        with self._lock:
            self._puts_since_gc += 1
            if self._puts_since_gc < GC_PUT_INTERVAL:
                # Cheap early-out: only sweep between intervals when the
                # running byte total is known to exceed the budget.
                if self.gc_max_bytes is None or self._bytes is None:
                    return
                if sum(self._bytes.values()) <= self.gc_max_bytes:
                    return
            self._puts_since_gc = 0
        self.gc(self.gc_max_bytes, self.gc_max_age)

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        dry_run: bool = False,
    ) -> GCReport:
        """TTL expiry + mtime-LRU size eviction across both kinds.

        ``max_age`` is in seconds.  A dry run reports what would be
        removed without touching the tree.
        """
        report = GCReport(dry_run=dry_run)
        now = time.time()
        all_entries: List[EntryInfo] = []
        for kind in KINDS:
            all_entries.extend(self.entries(kind))
        report.scanned = len(all_entries)
        report.scanned_bytes = sum(e.size for e in all_entries)

        doomed: List[EntryInfo] = []
        survivors: List[EntryInfo] = []
        if max_age is not None:
            for e in all_entries:
                (doomed if now - e.mtime > max_age else survivors).append(e)
            report.expired = len(doomed)
        else:
            survivors = list(all_entries)

        if max_bytes is not None:
            total = sum(e.size for e in survivors)
            # Oldest first; ties broken by key for determinism.
            survivors.sort(key=lambda e: (e.mtime, e.key))
            i = 0
            while total > max_bytes and i < len(survivors):
                victim = survivors[i]
                doomed.append(victim)
                total -= victim.size
                report.evicted += 1
                i += 1
            survivors = survivors[i:]

        if not dry_run:
            for e in doomed:
                if self._remove(e.kind, self.path(e.kind, e.key)):
                    report.removed_bytes += e.size
                else:
                    report.errors += 1
            # The walk above is authoritative: resync the counters.
            counts = {k: 0 for k in KINDS}
            sizes = {k: 0 for k in KINDS}
            for e in survivors:
                counts[e.kind] += 1
                sizes[e.kind] += e.size
            with self._lock:
                self._counts, self._bytes = counts, sizes
        else:
            report.removed_bytes = sum(e.size for e in doomed)
        report.remaining_entries = len(survivors)
        report.remaining_bytes = sum(e.size for e in survivors)
        return report

    def get_many(
        self, kind: str, keys: Iterable[str], log: Optional[OpLog] = None
    ) -> Dict[str, bytes]:
        out: Dict[str, bytes] = {}
        for key in keys:
            blob = self.get(kind, key, log)
            if blob is not None:
                out[key] = blob
        return out

    @property
    def spec(self) -> Optional[str]:
        return self.directory

    def __repr__(self) -> str:  # pragma: no cover
        return f"LocalStore({self.directory!r})"
