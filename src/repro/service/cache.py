"""Two-tier compile-result cache: in-process LRU over an on-disk store.

Keys are the content-addressed fingerprints of
:mod:`repro.service.fingerprint`; values are pickled
:class:`~repro.core.pipeline.OptimizeResult` objects.  The memory tier
holds pickled bytes (bounded by entry count and total size) so cached
results are never shared mutably between callers — every hit unpickles a
fresh copy.  The disk tier lives under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``) and survives processes; entries are written
atomically and carry a schema version, so a corrupted or stale file is
silently evicted on load instead of crashing the compile.

Next to the result store the cache keeps a ``memos`` store: spilled
presburger memo-table snapshots (:func:`repro.presburger.memo.snapshot`)
keyed by *program* fingerprint, so a fresh process compiling the same
program — a different tile-size candidate, a re-run after the result
store was cleared, a batch worker — starts with the hot ``apply_range``
/``tile_footprint``/``write_footprint`` entries already resident.  Memo
snapshots are an optimisation only and are loaded with the same
corruption-tolerant path as results.

A single :class:`CompileCache` instance is safe to share across threads:
the compile server's worker pool hammers one shared cache, so the memory
tier (the LRU ``OrderedDict`` and its byte accounting) and the stats
counters are guarded by an internal lock.  Disk I/O and (un)pickling
happen outside the lock — concurrent disk stores are already safe via
atomic ``os.replace``.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .fingerprint import SCHEMA_VERSION

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_MAGIC = "repro-cache"


def default_cache_dir() -> str:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`CompileCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    errors: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "memory_evictions": self.memory_evictions,
            "disk_evictions": self.disk_evictions,
            "errors": self.errors,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_stores": self.memo_stores,
        }


@dataclass
class CompileCache:
    """Content-addressed result cache with an LRU memory tier."""

    cache_dir: Optional[str] = None
    max_entries: int = 128
    max_bytes: int = 256 * 1024 * 1024
    persistent: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.cache_dir is None:
            self.cache_dir = default_cache_dir()
        self._mem: "OrderedDict[str, bytes]" = OrderedDict()
        self._mem_bytes = 0
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- lookup ------------------------------------------------------------

    def get(self, key: str):
        """Return a fresh copy of the cached value, or ``None`` on miss."""
        with self._lock:
            blob = self._mem.get(key)
            if blob is not None:
                self._mem.move_to_end(key)
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                with self._lock:
                    self._evict_memory(key)
                    self.stats.errors += 1
            else:
                with self._lock:
                    self.stats.memory_hits += 1
                return value
        if self.persistent:
            blob = self._load_disk(key)
            if blob is not None:
                try:
                    value = pickle.loads(blob)
                except Exception:
                    self._evict_disk(key)
                    with self._lock:
                        self.stats.errors += 1
                else:
                    with self._lock:
                        self.stats.disk_hits += 1
                        self._insert_memory(key, blob)
                    return value
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, value) -> None:
        try:
            blob = pickle.dumps(value)
        except Exception:
            with self._lock:
                self.stats.errors += 1
            return
        with self._lock:
            self.stats.stores += 1
            self._insert_memory(key, blob)
        if self.persistent:
            self._store_disk(key, blob)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._mem:
                return True
        return self.persistent and os.path.exists(self._path(key))

    # -- memory tier -------------------------------------------------------

    def _insert_memory(self, key: str, blob: bytes) -> None:
        with self._lock:
            if key in self._mem:
                self._mem_bytes -= len(self._mem.pop(key))
            self._mem[key] = blob
            self._mem_bytes += len(blob)
            while self._mem and (
                len(self._mem) > self.max_entries
                or self._mem_bytes > self.max_bytes
            ):
                old_key, old_blob = self._mem.popitem(last=False)
                self._mem_bytes -= len(old_blob)
                self.stats.memory_evictions += 1

    def _evict_memory(self, key: str) -> None:
        with self._lock:
            blob = self._mem.pop(key, None)
            if blob is not None:
                self._mem_bytes -= len(blob)
                self.stats.memory_evictions += 1

    # -- memo store --------------------------------------------------------

    def get_memos(self, key: str):
        """The spilled memo snapshot for ``key`` (a program fingerprint),
        or ``None``.  Disk-only: memo entries live in the process-wide memo
        tables once loaded, so there is nothing to tier in memory."""
        if not self.persistent:
            return None
        blob = self._load_disk(key, kind="memos")
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                self._evict_disk(key, kind="memos")
                with self._lock:
                    self.stats.errors += 1
            else:
                with self._lock:
                    self.stats.memo_hits += 1
                return value
        with self._lock:
            self.stats.memo_misses += 1
        return None

    def put_memos(self, key: str, snapshot) -> None:
        """Persist a memo snapshot under ``key``; empty snapshots are
        skipped (nothing to warm-start from)."""
        if not self.persistent or not snapshot:
            return
        try:
            blob = pickle.dumps(snapshot)
        except Exception:
            with self._lock:
                self.stats.errors += 1
            return
        with self._lock:
            self.stats.memo_stores += 1
        self._store_disk(key, blob, kind="memos")

    # -- disk tier ---------------------------------------------------------

    def _path(self, key: str, kind: str = "results") -> str:
        base = self.cache_dir if kind == "results" else os.path.join(
            self.cache_dir, kind
        )
        return os.path.join(base, key[:2], f"{key}.pkl")

    def _load_disk(self, key: str, kind: str = "results") -> Optional[bytes]:
        path = self._path(key, kind)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
            magic, schema, stored_key, blob = entry
            if magic != _MAGIC or schema != SCHEMA_VERSION or stored_key != key:
                raise ValueError("stale or foreign cache entry")
            if not isinstance(blob, bytes):
                raise ValueError("malformed cache payload")
            return blob
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted, truncated or stale entry: evict, never crash.
            with self._lock:
                self.stats.errors += 1
            self._evict_disk(key, kind)
            return None

    def _store_disk(self, key: str, blob: bytes, kind: str = "results") -> None:
        path = self._path(key, kind)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump((_MAGIC, SCHEMA_VERSION, key, blob), f)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            # A read-only or full cache dir degrades to memory-only.
            with self._lock:
                self.stats.errors += 1

    def _evict_disk(self, key: str, kind: str = "results") -> None:
        try:
            os.unlink(self._path(key, kind))
        except OSError:
            return
        with self._lock:
            self.stats.disk_evictions += 1

    # -- maintenance -------------------------------------------------------

    def clear(self, results: bool = True, memos: bool = True) -> int:
        """Drop the selected stores (and the memory tier when ``results``);
        returns the number of disk entries removed."""
        removed = 0
        if results:
            with self._lock:
                self._mem.clear()
                self._mem_bytes = 0
            removed += self._clear_kind("results")
        if memos:
            removed += self._clear_kind("memos")
        return removed

    def _clear_kind(self, kind: str) -> int:
        removed = 0
        for path, _ in self._disk_entries(kind):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def _disk_entries(self, kind: str = "results"):
        base = self.cache_dir if kind == "results" else os.path.join(
            self.cache_dir, kind
        )
        if not self.persistent or not os.path.isdir(base):
            return
        for sub in sorted(os.listdir(base)):
            subdir = os.path.join(base, sub)
            # The memos store nests under the results tree; don't count its
            # entries as results.
            if not os.path.isdir(subdir) or (kind == "results" and sub == "memos"):
                continue
            for name in sorted(os.listdir(subdir)):
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(subdir, name)
                try:
                    size = os.path.getsize(path)
                except OSError:
                    continue
                yield path, size

    def info(self) -> Dict[str, object]:
        entries = list(self._disk_entries())
        memo_entries = list(self._disk_entries("memos"))
        with self._lock:
            memory_entries = len(self._mem)
            memory_bytes = self._mem_bytes
            stats = self.stats.as_dict()
        return {
            "cache_dir": self.cache_dir,
            "schema_version": SCHEMA_VERSION,
            "disk_entries": len(entries),
            "disk_bytes": sum(size for _, size in entries),
            "memo_entries": len(memo_entries),
            "memo_bytes": sum(size for _, size in memo_entries),
            "memory_entries": memory_entries,
            "memory_bytes": memory_bytes,
            "stats": stats,
        }


_default: Optional[Tuple[str, CompileCache]] = None


def default_cache() -> CompileCache:
    """The process-wide cache, rebuilt if ``$REPRO_CACHE_DIR`` changes."""
    global _default
    cache_dir = default_cache_dir()
    if _default is None or _default[0] != cache_dir:
        _default = (cache_dir, CompileCache(cache_dir=cache_dir))
    return _default[1]


def reset_default_cache() -> None:
    """Forget the process-wide cache instance (tests, env changes)."""
    global _default
    _default = None


def resolve_cache(spec) -> CompileCache:
    """A :class:`CompileCache` from a string/path spelling.

    * ``"default"`` — the process-wide :func:`default_cache`;
    * a bare name (no path separator, no ``~``) — a named cache under
      ``<default_cache_dir()>/named/<name>`` so ad-hoc caches never
      collide with the default cache's own stores;
    * anything else — an explicit directory path (``~`` expanded).

    :class:`CompileCache` instances pass through unchanged.
    """
    if isinstance(spec, CompileCache):
        return spec
    path = os.fspath(spec)
    if path == "default":
        return default_cache()
    if os.sep not in path and "/" not in path and not path.startswith("~"):
        return CompileCache(
            cache_dir=os.path.join(default_cache_dir(), "named", path)
        )
    return CompileCache(cache_dir=os.path.expanduser(path))
