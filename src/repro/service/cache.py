"""Two-tier compile-result cache: in-process LRU over an on-disk store.

Keys are the content-addressed fingerprints of
:mod:`repro.service.fingerprint`; values are pickled
:class:`~repro.core.pipeline.OptimizeResult` objects.  The memory tier
holds pickled bytes (bounded by entry count and total size) so cached
results are never shared mutably between callers — every hit unpickles a
fresh copy.  The disk tier lives under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``) and survives processes; entries are written
atomically and carry a schema version, so a corrupted or stale file is
silently evicted on load instead of crashing the compile.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .fingerprint import SCHEMA_VERSION

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_MAGIC = "repro-cache"


def default_cache_dir() -> str:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`CompileCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "memory_evictions": self.memory_evictions,
            "disk_evictions": self.disk_evictions,
            "errors": self.errors,
        }


@dataclass
class CompileCache:
    """Content-addressed result cache with an LRU memory tier."""

    cache_dir: Optional[str] = None
    max_entries: int = 128
    max_bytes: int = 256 * 1024 * 1024
    persistent: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.cache_dir is None:
            self.cache_dir = default_cache_dir()
        self._mem: "OrderedDict[str, bytes]" = OrderedDict()
        self._mem_bytes = 0

    # -- lookup ------------------------------------------------------------

    def get(self, key: str):
        """Return a fresh copy of the cached value, or ``None`` on miss."""
        blob = self._mem.get(key)
        if blob is not None:
            self._mem.move_to_end(key)
            try:
                value = pickle.loads(blob)
            except Exception:
                self._evict_memory(key)
                self.stats.errors += 1
            else:
                self.stats.memory_hits += 1
                return value
        if self.persistent:
            blob = self._load_disk(key)
            if blob is not None:
                try:
                    value = pickle.loads(blob)
                except Exception:
                    self._evict_disk(key)
                    self.stats.errors += 1
                else:
                    self.stats.disk_hits += 1
                    self._insert_memory(key, blob)
                    return value
        self.stats.misses += 1
        return None

    def put(self, key: str, value) -> None:
        try:
            blob = pickle.dumps(value)
        except Exception:
            self.stats.errors += 1
            return
        self.stats.stores += 1
        self._insert_memory(key, blob)
        if self.persistent:
            self._store_disk(key, blob)

    def __contains__(self, key: str) -> bool:
        return key in self._mem or (
            self.persistent and os.path.exists(self._path(key))
        )

    # -- memory tier -------------------------------------------------------

    def _insert_memory(self, key: str, blob: bytes) -> None:
        if key in self._mem:
            self._mem_bytes -= len(self._mem.pop(key))
        self._mem[key] = blob
        self._mem_bytes += len(blob)
        while self._mem and (
            len(self._mem) > self.max_entries or self._mem_bytes > self.max_bytes
        ):
            old_key, old_blob = self._mem.popitem(last=False)
            self._mem_bytes -= len(old_blob)
            self.stats.memory_evictions += 1

    def _evict_memory(self, key: str) -> None:
        blob = self._mem.pop(key, None)
        if blob is not None:
            self._mem_bytes -= len(blob)
            self.stats.memory_evictions += 1

    # -- disk tier ---------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], f"{key}.pkl")

    def _load_disk(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
            magic, schema, stored_key, blob = entry
            if magic != _MAGIC or schema != SCHEMA_VERSION or stored_key != key:
                raise ValueError("stale or foreign cache entry")
            if not isinstance(blob, bytes):
                raise ValueError("malformed cache payload")
            return blob
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupted, truncated or stale entry: evict, never crash.
            self.stats.errors += 1
            self._evict_disk(key)
            return None

    def _store_disk(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump((_MAGIC, SCHEMA_VERSION, key, blob), f)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            # A read-only or full cache dir degrades to memory-only.
            self.stats.errors += 1

    def _evict_disk(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
            self.stats.disk_evictions += 1
        except OSError:
            pass

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Drop both tiers; returns the number of disk entries removed."""
        self._mem.clear()
        self._mem_bytes = 0
        removed = 0
        for path, _ in self._disk_entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def _disk_entries(self):
        if not self.persistent or not os.path.isdir(self.cache_dir):
            return
        for sub in sorted(os.listdir(self.cache_dir)):
            subdir = os.path.join(self.cache_dir, sub)
            if not os.path.isdir(subdir):
                continue
            for name in sorted(os.listdir(subdir)):
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(subdir, name)
                try:
                    size = os.path.getsize(path)
                except OSError:
                    continue
                yield path, size

    def info(self) -> Dict[str, object]:
        entries = list(self._disk_entries())
        return {
            "cache_dir": self.cache_dir,
            "schema_version": SCHEMA_VERSION,
            "disk_entries": len(entries),
            "disk_bytes": sum(size for _, size in entries),
            "memory_entries": len(self._mem),
            "memory_bytes": self._mem_bytes,
            "stats": self.stats.as_dict(),
        }


_default: Optional[Tuple[str, CompileCache]] = None


def default_cache() -> CompileCache:
    """The process-wide cache, rebuilt if ``$REPRO_CACHE_DIR`` changes."""
    global _default
    cache_dir = default_cache_dir()
    if _default is None or _default[0] != cache_dir:
        _default = (cache_dir, CompileCache(cache_dir=cache_dir))
    return _default[1]


def reset_default_cache() -> None:
    """Forget the process-wide cache instance (tests, env changes)."""
    global _default
    _default = None
