"""Tiered compile-result cache: in-process LRU over pluggable stores.

Keys are the content-addressed fingerprints of
:mod:`repro.service.fingerprint`; values are pickled
:class:`~repro.core.pipeline.OptimizeResult` objects.  The memory tier
holds pickled bytes (bounded by entry count and total size) so cached
results are never shared mutably between callers — every hit unpickles a
fresh copy.

Below the memory tier, :class:`CompileCache` is a *policy* over one
:class:`~repro.service.stores.CacheStore` — the cache fabric:

* the default store is a :class:`~repro.service.stores.LocalStore`, the
  sharded on-disk layout under ``$REPRO_CACHE_DIR`` (default
  ``~/.cache/repro``) that survives processes; entries are written
  atomically and carry a schema version, so a corrupted or stale file is
  silently evicted on load instead of crashing the compile;
* with a ``remote`` spec (``$REPRO_CACHE_REMOTE``, a ``--cache-remote``
  flag, or a ``tiered:<local>|<remote>`` cache spelling) the store
  becomes a :class:`~repro.service.stores.LayeredStore`: local-first
  reads, remote read-through with local backfill, and write-behind
  publication to the shared tier — many compile servers sharing one warm
  state, sccache-style;
* stores garbage-collect by TTL and size budget (``repro cache gc``,
  ``$REPRO_CACHE_MAX_BYTES`` / ``$REPRO_CACHE_MAX_AGE``, opportunistic
  sweeps on put) with mtime-LRU eviction.

Next to the result store the cache keeps a ``memos`` store: spilled
presburger memo-table snapshots (:func:`repro.presburger.memo.snapshot`)
keyed by *program* fingerprint, so a fresh process compiling the same
program starts with the hot ``apply_range``/``tile_footprint``/
``write_footprint`` entries already resident.  ``get_memos_many``
fetches a whole batch's snapshots in one remote round trip.

A single :class:`CompileCache` instance is safe to share across threads:
the memory tier (the LRU ``OrderedDict`` and its byte accounting) and
the stats counters are guarded by an internal lock; stores are
thread-safe themselves.  Disk/network I/O and (un)pickling happen
outside the lock.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .fingerprint import SCHEMA_VERSION
from .stores import (
    TIERED_PREFIX,
    CacheStore,
    LayeredStore,
    OpLog,
    default_gc_budget,
    resolve_store,
)
from .stores.base import GCReport, TierStats

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_REMOTE = "REPRO_CACHE_REMOTE"


def default_cache_dir() -> str:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def default_remote_spec() -> Optional[str]:
    """The fleet-wide shared tier, when ``$REPRO_CACHE_REMOTE`` is set."""
    return os.environ.get(ENV_CACHE_REMOTE) or None


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`CompileCache`.

    This is the legacy policy-level ledger (``optimize --stats``, the
    serve daemon's ``serve.cache.*`` gauges); per-tier counters and
    latency histograms live on each store's
    :class:`~repro.service.stores.TierStats` (``tier_metrics()``).
    """

    memory_hits: int = 0
    disk_hits: int = 0
    remote_hits: int = 0
    misses: int = 0
    stores: int = 0
    skipped_stores: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    errors: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "remote_hits": self.remote_hits,
            "misses": self.misses,
            "stores": self.stores,
            "skipped_stores": self.skipped_stores,
            "memory_evictions": self.memory_evictions,
            "disk_evictions": self.disk_evictions,
            "errors": self.errors,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_stores": self.memo_stores,
        }


@dataclass
class CompileCache:
    """Content-addressed result cache: LRU memory tier over one store.

    ``cache_dir`` names the local tier's directory; ``remote`` is an
    optional remote-tier spec (an ``http://host:port`` store server or a
    shared directory) that upgrades the store to a layered local+remote
    fabric.  Pass ``store`` to supply a ready-made
    :class:`~repro.service.stores.CacheStore` instead (tests, exotic
    tierings); ``persistent=False`` keeps everything in memory.
    """

    cache_dir: Optional[str] = None
    max_entries: int = 128
    max_bytes: int = 256 * 1024 * 1024
    persistent: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    remote: Optional[str] = None
    gc_max_bytes: Optional[int] = None
    gc_max_age: Optional[float] = None
    store: Optional[CacheStore] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if self.store is None and self.cache_dir is None:
            self.cache_dir = default_cache_dir()
        if self.cache_dir is not None:
            self.cache_dir = os.fspath(self.cache_dir)
        if self.gc_max_bytes is None and self.gc_max_age is None:
            self.gc_max_bytes, self.gc_max_age = default_gc_budget()
        if not self.persistent:
            self.store = None
        elif self.store is None:
            self.store = self._build_store()
        self._mem: "OrderedDict[str, bytes]" = OrderedDict()
        self._mem_bytes = 0
        self._lock = threading.RLock()

    def _build_store(self) -> CacheStore:
        spec = self.cache_dir
        if self.remote:
            spec = f"{TIERED_PREFIX}{self.cache_dir}|{self.remote}"
        return resolve_store(
            spec, gc_max_bytes=self.gc_max_bytes, gc_max_age=self.gc_max_age
        )

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        # Stores hold locks, sockets and flush threads; rebuild from the
        # spec fields on the other side.
        state["store"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.persistent and self.store is None:
            self.store = self._build_store()
        self._lock = threading.RLock()

    @property
    def spec(self) -> Optional[str]:
        """A flat string :func:`resolve_cache` turns back into an
        equivalent cache in another process, or ``None`` when the store
        is memory-only or not spec-addressable."""
        if self.store is None:
            return None
        return self.store.spec

    # -- lookup ------------------------------------------------------------

    def _ledger(self, log: OpLog) -> None:
        if log.errors or log.evictions:
            with self._lock:
                self.stats.errors += log.errors
                self.stats.disk_evictions += log.evictions

    def get(self, key: str):
        """Return a fresh copy of the cached value, or ``None`` on miss."""
        with self._lock:
            blob = self._mem.get(key)
            if blob is not None:
                self._mem.move_to_end(key)
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                with self._lock:
                    self._evict_memory(key)
                    self.stats.errors += 1
            else:
                with self._lock:
                    self.stats.memory_hits += 1
                return value
        if self.store is not None:
            log = OpLog()
            blob = self.store.get("results", key, log)
            self._ledger(log)
            if blob is not None:
                try:
                    value = pickle.loads(blob)
                except Exception:
                    self.store.delete("results", key)
                    with self._lock:
                        self.stats.errors += 1
                        self.stats.disk_evictions += 1
                else:
                    with self._lock:
                        self.stats.disk_hits += 1
                        if log.tier == "remote":
                            self.stats.remote_hits += 1
                        self._insert_memory(key, blob)
                    return value
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, value) -> None:
        try:
            blob = pickle.dumps(value)
        except Exception:
            with self._lock:
                self.stats.errors += 1
            return
        with self._lock:
            self.stats.stores += 1
            self._insert_memory(key, blob)
        if self.store is not None:
            log = OpLog()
            self.store.put("results", key, blob, log)
            self._ledger(log)
            if log.skipped:
                with self._lock:
                    self.stats.skipped_stores += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._mem:
                return True
        return self.store is not None and self.store.contains("results", key)

    # -- memory tier -------------------------------------------------------

    def _insert_memory(self, key: str, blob: bytes) -> None:
        with self._lock:
            if key in self._mem:
                self._mem_bytes -= len(self._mem.pop(key))
            self._mem[key] = blob
            self._mem_bytes += len(blob)
            while self._mem and (
                len(self._mem) > self.max_entries
                or self._mem_bytes > self.max_bytes
            ):
                old_key, old_blob = self._mem.popitem(last=False)
                self._mem_bytes -= len(old_blob)
                self.stats.memory_evictions += 1

    def _evict_memory(self, key: str) -> None:
        with self._lock:
            blob = self._mem.pop(key, None)
            if blob is not None:
                self._mem_bytes -= len(blob)
                self.stats.memory_evictions += 1

    # -- memo store --------------------------------------------------------

    def get_memos(self, key: str):
        """The spilled memo snapshot for ``key`` (a program fingerprint),
        or ``None``.  Store-only: memo entries live in the process-wide
        memo tables once loaded, so there is nothing to tier in memory."""
        if self.store is None:
            return None
        log = OpLog()
        blob = self.store.get("memos", key, log)
        self._ledger(log)
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                self.store.delete("memos", key)
                with self._lock:
                    self.stats.errors += 1
                    self.stats.disk_evictions += 1
            else:
                with self._lock:
                    self.stats.memo_hits += 1
                return value
        with self._lock:
            self.stats.memo_misses += 1
        return None

    def get_memos_many(self, keys: Iterable[str]) -> Dict[str, object]:
        """Batched :meth:`get_memos`: every snapshot the store has for
        ``keys``, fetched from the remote tier in one round trip.  Used
        by ``compile_batch`` and the serve daemon to warm a whole batch's
        programs at once."""
        keys = list(dict.fromkeys(keys))
        if self.store is None or not keys:
            with self._lock:
                self.stats.memo_misses += len(keys)
            return {}
        log = OpLog()
        blobs = self.store.get_many("memos", keys, log)
        self._ledger(log)
        out: Dict[str, object] = {}
        for key, blob in blobs.items():
            try:
                out[key] = pickle.loads(blob)
            except Exception:
                self.store.delete("memos", key)
                with self._lock:
                    self.stats.errors += 1
                    self.stats.disk_evictions += 1
        with self._lock:
            self.stats.memo_hits += len(out)
            self.stats.memo_misses += len(keys) - len(out)
        return out

    def put_memos(self, key: str, snapshot) -> None:
        """Persist a memo snapshot under ``key``; empty snapshots are
        skipped (nothing to warm-start from)."""
        if self.store is None or not snapshot:
            return
        try:
            blob = pickle.dumps(snapshot)
        except Exception:
            with self._lock:
                self.stats.errors += 1
            return
        with self._lock:
            self.stats.memo_stores += 1
        log = OpLog()
        self.store.put("memos", key, blob, log)
        self._ledger(log)
        if log.skipped:
            with self._lock:
                self.stats.skipped_stores += 1

    # -- compat shims -------------------------------------------------------

    def _local_store(self):
        """The local tier (tests poke at on-disk paths directly)."""
        store = self.store
        return getattr(store, "local", store)

    def _path(self, key: str, kind: str = "results") -> str:
        return self._local_store().path(kind, key)

    # -- maintenance -------------------------------------------------------

    def clear(self, results: bool = True, memos: bool = True, remote: bool = False) -> int:
        """Drop the selected stores (and the memory tier when ``results``);
        returns the number of local entries removed.  The remote tier is
        only touched when ``remote=True`` — it is shared state."""
        removed = 0
        if results:
            with self._lock:
                self._mem.clear()
                self._mem_bytes = 0
        if self.store is None:
            return 0
        kinds = [k for k, on in (("results", results), ("memos", memos)) if on]
        for kind in kinds:
            if isinstance(self.store, LayeredStore):
                removed += self.store.clear(kind, remote=remote)
            else:
                removed += self.store.clear(kind)
        return removed

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        dry_run: bool = False,
    ) -> GCReport:
        """Garbage-collect the local tier: TTL expiry plus mtime-LRU
        eviction down to the byte budget.  Defaults to the configured
        budgets (``$REPRO_CACHE_MAX_BYTES`` / ``$REPRO_CACHE_MAX_AGE``)."""
        if self.store is None:
            return GCReport(dry_run=dry_run)
        return self.store.gc(
            max_bytes=max_bytes if max_bytes is not None else self.gc_max_bytes,
            max_age=max_age if max_age is not None else self.gc_max_age,
            dry_run=dry_run,
        )

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Drain any write-behind publication to the remote tier."""
        return True if self.store is None else self.store.flush(timeout)

    def close(self) -> None:
        if self.store is not None:
            self.store.close()

    def tier_metrics(self) -> List[Tuple[str, TierStats]]:
        """Every (tier name, stats) pair of the underlying store fabric."""
        return [] if self.store is None else self.store.tiers()

    def info(self) -> Dict[str, object]:
        if self.store is not None:
            sinfo = self.store.info()
        else:
            sinfo = {"entries": 0, "bytes": 0, "memo_entries": 0, "memo_bytes": 0}
        with self._lock:
            memory_entries = len(self._mem)
            memory_bytes = self._mem_bytes
            stats = self.stats.as_dict()
        info: Dict[str, object] = {
            "cache_dir": self.cache_dir,
            "schema_version": SCHEMA_VERSION,
            "disk_entries": sinfo.get("entries", 0),
            "disk_bytes": sinfo.get("bytes", 0),
            "memo_entries": sinfo.get("memo_entries", 0),
            "memo_bytes": sinfo.get("memo_bytes", 0),
            "memory_entries": memory_entries,
            "memory_bytes": memory_bytes,
            "gc_max_bytes": self.gc_max_bytes,
            "gc_max_age": self.gc_max_age,
            "stats": stats,
            "tiers": {
                tier: tstats.as_dict() for tier, tstats in self.tier_metrics()
            },
        }
        if "remote" in sinfo:
            info["remote"] = sinfo["remote"]
        return info


_default: Optional[Tuple[Tuple[str, Optional[str]], CompileCache]] = None


def default_cache() -> CompileCache:
    """The process-wide cache, rebuilt if ``$REPRO_CACHE_DIR`` or
    ``$REPRO_CACHE_REMOTE`` changes."""
    global _default
    key = (default_cache_dir(), default_remote_spec())
    if _default is None or _default[0] != key:
        _default = (key, CompileCache(cache_dir=key[0], remote=key[1]))
    return _default[1]


def reset_default_cache() -> None:
    """Forget the process-wide cache instance (tests, env changes)."""
    global _default
    _default = None


def _named_dir(name: str) -> str:
    return os.path.join(default_cache_dir(), "named", name)


def _spec_dir(path: str) -> str:
    """A directory from a local-tier spelling: bare names are namespaced
    under ``<default_cache_dir()>/named/``, paths pass through."""
    if path == "default":
        return default_cache_dir()
    if os.sep not in path and "/" not in path and not path.startswith("~"):
        return _named_dir(path)
    return os.path.expanduser(path)


def resolve_cache(spec) -> CompileCache:
    """A :class:`CompileCache` from a string/path/mapping spelling.

    * ``"default"`` — the process-wide :func:`default_cache`;
    * a bare name (no path separator, no ``~``) — a named cache under
      ``<default_cache_dir()>/named/<name>`` so ad-hoc caches never
      collide with the default cache's own stores;
    * ``"tiered:<local>|<remote>"`` — a layered fabric: ``<local>`` is
      any of the spellings above, ``<remote>`` an ``http://host:port``
      store server or a shared directory;
    * ``"http://host:port"`` — a remote-only cache (no local tier);
    * a mapping — ``{"local": ..., "remote": ..., "gc_max_bytes": ...,
      "gc_max_age": ..., "max_entries": ..., "max_bytes": ...}``;
    * anything else — an explicit directory path (``~`` expanded).

    :class:`CompileCache` instances pass through unchanged.
    """
    if isinstance(spec, CompileCache):
        return spec
    if isinstance(spec, Mapping):
        kwargs = dict(spec)
        local = kwargs.pop("local", "default")
        return CompileCache(cache_dir=_spec_dir(os.fspath(local)), **kwargs)
    path = os.fspath(spec)
    if path == "default":
        return default_cache()
    if path.startswith(TIERED_PREFIX):
        body = path[len(TIERED_PREFIX):]
        local, sep, remote = body.partition("|")
        if not sep or not local or not remote:
            raise ValueError(
                f"tiered cache spec must be 'tiered:<local>|<remote>', got {path!r}"
            )
        return CompileCache(cache_dir=_spec_dir(local), remote=remote)
    if path.startswith("http://"):
        return CompileCache(
            cache_dir=None,
            persistent=True,
            store=resolve_store(path, tier="remote"),
        )
    return CompileCache(cache_dir=_spec_dir(path))
