"""Backwards-compatible alias of :mod:`repro.obs`.

The pass-level instrumentation layer started life here; it grew into the
full observability subsystem ``repro.obs`` (hierarchical tracing, metrics
registry, exporters).  Every historical name — ``span``, ``count``,
``collect``, ``active``, ``CompileReport``, ``SpanStat`` — now lives in
:mod:`repro.obs.trace`; this module re-exports the whole surface so
``from repro.service import instrument`` keeps working unchanged.
"""

from __future__ import annotations

from ..obs.trace import (  # noqa: F401
    MAX_EVENTS,
    CompileReport,
    SpanEvent,
    SpanStat,
    active,
    annotate,
    collect,
    count,
    current_span_id,
    gauge,
    merge_report,
    observe,
    span,
    tracing,
)

__all__ = [
    "MAX_EVENTS",
    "CompileReport",
    "SpanEvent",
    "SpanStat",
    "active",
    "annotate",
    "collect",
    "count",
    "current_span_id",
    "gauge",
    "merge_report",
    "observe",
    "span",
    "tracing",
]
