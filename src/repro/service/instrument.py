"""Pass-level observability: spans, counters and per-compile reports.

The optimizer's passes wrap themselves in ``with span("tile_shapes"):``
and hot kernels bump counters (``count("presburger.fm_eliminate")``).
Both are near-free when nobody is listening: a compile report only
accumulates inside a ``with collect() as report:`` block on the same
thread.

This module is deliberately standalone — it imports nothing from the
rest of the package, so the lowest layers (``repro.presburger``) can use
it without creating an import cycle.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Mapping, Optional


@dataclass
class SpanStat:
    """Aggregate of every entry into one named span."""

    calls: int = 0
    seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds


@dataclass
class CompileReport:
    """Everything observed during one instrumented region."""

    spans: Dict[str, SpanStat] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    cache: Dict[str, int] = field(default_factory=dict)

    def add_span(self, name: str, seconds: float) -> None:
        self.spans.setdefault(name, SpanStat()).add(seconds)

    def add_count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def merge_cache_stats(self, stats: Mapping[str, int]) -> None:
        for k, v in stats.items():
            self.cache[k] = self.cache.get(k, 0) + v

    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.spans.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "spans": {
                k: {"calls": v.calls, "seconds": v.seconds}
                for k, v in self.spans.items()
            },
            "counters": dict(self.counters),
            "cache": dict(self.cache),
        }

    def format(self, indent: str = "  ") -> str:
        """A human-readable multi-line rendering for ``--stats``."""
        lines: List[str] = []
        if self.spans:
            lines.append("per-pass timings:")
            width = max(len(k) for k in self.spans)
            for name, stat in sorted(
                self.spans.items(), key=lambda kv: -kv[1].seconds
            ):
                lines.append(
                    f"{indent}{name.ljust(width)}  "
                    f"{stat.seconds * 1e3:9.2f} ms  ({stat.calls} calls)"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(k) for k in self.counters)
            for name in sorted(self.counters):
                lines.append(f"{indent}{name.ljust(width)}  {self.counters[name]}")
        if self.cache:
            lines.append("cache:")
            width = max(len(k) for k in self.cache)
            for name in sorted(self.cache):
                lines.append(f"{indent}{name.ljust(width)}  {self.cache[name]}")
        return "\n".join(lines) if lines else "(no instrumentation recorded)"


_state = threading.local()


def _collectors() -> List[CompileReport]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


def active() -> bool:
    """True when at least one collector is listening on this thread."""
    return bool(getattr(_state, "stack", None))


@contextmanager
def collect(report: Optional[CompileReport] = None) -> Iterator[CompileReport]:
    """Accumulate spans/counters from the enclosed code into a report."""
    if report is None:
        report = CompileReport()
    stack = _collectors()
    stack.append(report)
    try:
        yield report
    finally:
        stack.remove(report)


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time the enclosed block under ``name`` (no-op when not collecting)."""
    stack = getattr(_state, "stack", None)
    if not stack:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        elapsed = perf_counter() - t0
        for report in stack:
            report.add_span(name, elapsed)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on every active collector (no-op otherwise)."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return
    for report in stack:
        report.add_count(name, n)
