"""``repro.service`` — the compilation service layer.

Turns the one-shot ``repro.core.optimize`` pass into a reusable service:

* :mod:`fingerprint` — content-addressed SHA-256 keys for compile requests;
* :mod:`cache` — the tiered result cache (LRU memory over a store fabric);
* :mod:`stores` — pluggable persistent tiers: local directory, shared
  HTTP remote, layered local+remote with write-behind;
* :mod:`driver` — deduplicating, parallel batch-compile driver;
* :mod:`instrument` — pass-level spans/counters and per-compile reports.

Only :mod:`instrument` is imported eagerly — it is dependency-free, so
the lowest layers (``repro.presburger``) can bump counters without an
import cycle.  Everything else loads lazily on first attribute access.
"""

from __future__ import annotations

from . import instrument

__all__ = [
    "CacheStats",
    "CacheStore",
    "CompileCache",
    "CompileOutcome",
    "CompileRequest",
    "HTTPStore",
    "LayeredStore",
    "LocalStore",
    "StoreServer",
    "cached_optimize",
    "compile_batch",
    "default_cache",
    "default_cache_dir",
    "fingerprint_program",
    "fingerprint_request",
    "instrument",
    "load_program_memos",
    "memo_spill_enabled",
    "reset_default_cache",
    "resolve_cache",
    "resolve_store",
    "spill_program_memos",
]

_LAZY = {
    "CacheStats": ("cache", "CacheStats"),
    "CompileCache": ("cache", "CompileCache"),
    "default_cache": ("cache", "default_cache"),
    "default_cache_dir": ("cache", "default_cache_dir"),
    "reset_default_cache": ("cache", "reset_default_cache"),
    "resolve_cache": ("cache", "resolve_cache"),
    "CacheStore": ("stores", "CacheStore"),
    "HTTPStore": ("stores", "HTTPStore"),
    "LayeredStore": ("stores", "LayeredStore"),
    "LocalStore": ("stores", "LocalStore"),
    "StoreServer": ("stores", "StoreServer"),
    "resolve_store": ("stores", "resolve_store"),
    "CompileOutcome": ("driver", "CompileOutcome"),
    "CompileRequest": ("driver", "CompileRequest"),
    "cached_optimize": ("driver", "cached_optimize"),
    "compile_batch": ("driver", "compile_batch"),
    "load_program_memos": ("driver", "load_program_memos"),
    "memo_spill_enabled": ("driver", "memo_spill_enabled"),
    "spill_program_memos": ("driver", "spill_program_memos"),
    "fingerprint_program": ("fingerprint", "fingerprint_program"),
    "fingerprint_request": ("fingerprint", "fingerprint_request"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
