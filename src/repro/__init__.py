"""repro — post-tiling fusion for the memory hierarchy (MICRO 2020).

A from-scratch Python reproduction of Zhao & Di, "Optimizing the Memory
Hierarchy by Compositing Automatic Transformations on Computations and
Data".  The top-level namespace re-exports the public API; see README.md
for the tour.
"""

from .core import OptimizeResult, optimize
from .ir import Program, ProgramBuilder, Tensor
from .options import CompileOptions, PartitionOptions
from .partition import PartitionedSchedule, partition_pipeline

__version__ = "0.1.0"

__all__ = [
    "CompileOptions",
    "OptimizeResult",
    "PartitionOptions",
    "PartitionedSchedule",
    "Program",
    "ProgramBuilder",
    "Tensor",
    "optimize",
    "partition_pipeline",
    "__version__",
]
