"""Trace exporters and the profile-tree view.

Turns a traced :class:`~repro.obs.trace.CompileReport` into:

* **Chrome trace-event JSON** (:func:`chrome_trace`) — complete-event
  (``"ph": "X"``) records loadable in Perfetto / ``chrome://tracing``;
* **JSONL** (:func:`jsonl_lines`) — one structured event per line with a
  leading meta record and a trailing metrics snapshot, for log pipelines;
* a **profile tree** (:func:`profile_tree` / :func:`format_profile`) —
  spans aggregated by call path with self/total time, the ``repro
  profile`` view.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .trace import CompileReport, SpanEvent

#: Schema tags checked by :mod:`repro.obs.schema`.
TRACE_SCHEMA = "repro-trace/1"
JSONL_SCHEMA = "repro-events/1"


def _entry_order(events: List[SpanEvent]) -> List[SpanEvent]:
    """Events sorted by span *entry* (reports append them in exit order),
    so parents precede their children in exported streams."""
    return sorted(events, key=lambda e: (e.start, -e.duration))


def _args(event: SpanEvent) -> Dict[str, object]:
    args: Dict[str, object] = {}
    for k, v in event.attrs.items():
        args[k] = v if isinstance(v, (int, float, bool, str, type(None))) else str(v)
    for k, v in event.counters.items():
        args[f"counter.{k}"] = v
    return args


def chrome_trace(report: CompileReport, pid: int = 1) -> Dict[str, object]:
    """The report's events as a Chrome trace-event JSON object."""
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro compile"},
        }
    ]
    for e in _entry_order(report.events):
        events.append(
            {
                "name": e.name,
                "cat": "compile",
                "ph": "X",
                "ts": e.start * 1e6,  # microseconds
                "dur": e.duration * 1e6,
                "pid": pid,
                "tid": e.tid,
                "args": _args(e),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "spans": len(report.events),
            "dropped_events": report.dropped_events,
        },
    }


def jsonl_lines(report: CompileReport) -> List[str]:
    """The report as JSONL: meta line, span lines, metrics line."""
    lines = [
        json.dumps(
            {
                "type": "meta",
                "schema": JSONL_SCHEMA,
                "spans": len(report.events),
                "dropped_events": report.dropped_events,
            },
            sort_keys=True,
        )
    ]
    for e in _entry_order(report.events):
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "id": e.id,
                    "parent": e.parent,
                    "name": e.name,
                    "start": e.start,
                    "dur": e.duration,
                    "tid": e.tid,
                    "attrs": _args(e),
                    "counters": dict(e.counters),
                },
                sort_keys=True,
            )
        )
    lines.append(
        json.dumps({"type": "metrics", **report.to_metrics()}, sort_keys=True)
    )
    return lines


def write_trace(report: CompileReport, path: str, format: str = "chrome") -> None:
    """Serialize the report's trace to ``path`` (``chrome`` or ``jsonl``)."""
    if format == "chrome":
        with open(path, "w") as f:
            json.dump(chrome_trace(report), f, indent=1, sort_keys=True)
            f.write("\n")
    elif format == "jsonl":
        with open(path, "w") as f:
            for line in jsonl_lines(report):
                f.write(line + "\n")
    else:
        raise ValueError(f"unknown trace format {format!r}; use 'chrome' or 'jsonl'")


# ---------------------------------------------------------------------------
# profile tree


@dataclass
class ProfileNode:
    """Spans aggregated by call path: one node per (path, name)."""

    name: str
    calls: int = 0
    total: float = 0.0  # inclusive seconds
    counters: Dict[str, int] = field(default_factory=dict)
    children: Dict[str, "ProfileNode"] = field(default_factory=dict)

    @property
    def self_seconds(self) -> float:
        return max(0.0, self.total - sum(c.total for c in self.children.values()))

    def walk_depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(c.walk_depth() for c in self.children.values())


def profile_tree(report: CompileReport) -> List[ProfileNode]:
    """Aggregate the report's events into per-path profile roots.

    Events sharing a (parent path, name) merge into one node, so a span
    entered 99 times under the same parent renders as one line with
    ``calls=99`` — the ``repro profile`` view.
    """
    by_id: Dict[int, SpanEvent] = {e.id: e for e in report.events}
    roots: Dict[str, ProfileNode] = {}
    node_of: Dict[int, ProfileNode] = {}

    def _node_for(event: SpanEvent) -> ProfileNode:
        cached = node_of.get(event.id)
        if cached is not None:
            return cached
        parent = by_id.get(event.parent) if event.parent is not None else None
        if parent is None:
            table = roots
        else:
            table = _node_for(parent).children
        node = table.get(event.name)
        if node is None:
            node = table[event.name] = ProfileNode(event.name)
        node_of[event.id] = node
        return node

    # Sort parents-first so recursion depth stays shallow, then fold in.
    for e in sorted(report.events, key=lambda e: (e.start, -e.duration)):
        node = _node_for(e)
        node.calls += 1
        node.total += e.duration
        for k, v in e.counters.items():
            node.counters[k] = node.counters.get(k, 0) + v
    return sorted(roots.values(), key=lambda n: -n.total)


def format_profile(
    roots: List[ProfileNode],
    top: int = 8,
    max_depth: int = 6,
    wall_seconds: Optional[float] = None,
    indent: str = "  ",
) -> str:
    """Render the profile tree: total/self milliseconds, calls, name.

    ``top`` bounds the children shown per level (the rest fold into an
    ``(… k more)`` line so totals stay honest); ``wall_seconds`` appends a
    coverage line comparing the root total against wall-clock.
    """
    lines: List[str] = []
    total_all = sum(r.total for r in roots)
    header = f"{'total ms':>10}  {'self ms':>10}  {'calls':>7}  span"
    lines.append(header)
    lines.append("-" * len(header))

    def _emit(node: ProfileNode, depth: int) -> None:
        lines.append(
            f"{node.total * 1e3:10.2f}  {node.self_seconds * 1e3:10.2f}  "
            f"{node.calls:7d}  {indent * depth}{node.name}"
        )
        if depth + 1 >= max_depth:
            return
        children = sorted(node.children.values(), key=lambda n: -n.total)
        for child in children[:top]:
            _emit(child, depth + 1)
        hidden = children[top:]
        if hidden:
            t = sum(c.total for c in hidden)
            lines.append(
                f"{t * 1e3:10.2f}  {'':>10}  {sum(c.calls for c in hidden):7d}  "
                f"{indent * (depth + 1)}(… {len(hidden)} more)"
            )

    for root in roots[:top]:
        _emit(root, 0)
    if wall_seconds:
        cov = 100.0 * total_all / wall_seconds if wall_seconds > 0 else 0.0
        lines.append(
            f"span total {total_all * 1e3:.2f} ms over wall-clock "
            f"{wall_seconds * 1e3:.2f} ms ({cov:.1f}% covered)"
        )
    return "\n".join(lines)
