"""Schema validation for exported traces and metric snapshots.

Hand-rolled (no jsonschema dependency) validators returning error lists,
plus a tiny CLI for CI smoke jobs::

    python -m repro.obs.schema chrome  trace.json
    python -m repro.obs.schema jsonl   events.jsonl
    python -m repro.obs.schema metrics snapshot.json
    python -m repro.obs.schema events  daemon-events.jsonl

Exit status 0 when the file validates, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Mapping

from .export import JSONL_SCHEMA
from .metrics import SNAPSHOT_SCHEMA

_NUM = (int, float)


def validate_chrome_trace(obj: object) -> List[str]:
    """Errors in a Chrome trace-event JSON object (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(obj, Mapping):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    n_complete = 0
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, Mapping):
            errors.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "M"):
            errors.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(e.get("name"), str) or not e["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(e.get("pid"), int) or not isinstance(e.get("tid"), int):
            errors.append(f"{where}: pid/tid must be ints")
        if ph == "X":
            n_complete += 1
            for k in ("ts", "dur"):
                v = e.get(k)
                if not isinstance(v, _NUM) or isinstance(v, bool) or v < 0:
                    errors.append(f"{where}: bad {k} {v!r}")
            args = e.get("args", {})
            if not isinstance(args, Mapping):
                errors.append(f"{where}: args must be an object")
    if n_complete == 0:
        errors.append("no complete ('X') span events")
    return errors


def trace_nesting_depth(obj: Mapping) -> int:
    """Deepest span nesting in a Chrome trace, by containment per thread.

    Complete events carry no explicit parent links, so depth is inferred
    the way trace viewers render it: a span nests under any span of the
    same thread whose [ts, ts+dur) interval contains it.
    """
    by_tid: Dict[int, List[tuple]] = {}
    for e in obj.get("traceEvents", []):
        if isinstance(e, Mapping) and e.get("ph") == "X":
            by_tid.setdefault(e.get("tid", 0), []).append(
                (float(e["ts"]), float(e["ts"]) + float(e["dur"]))
            )
    depth = 0
    for spans in by_tid.values():
        spans.sort(key=lambda ab: (ab[0], -(ab[1] - ab[0])))
        open_stack: List[float] = []  # end times of enclosing spans
        for start, end in spans:
            while open_stack and start >= open_stack[-1]:
                open_stack.pop()
            open_stack.append(end)
            depth = max(depth, len(open_stack))
    return depth


def validate_metrics_snapshot(obj: object) -> List[str]:
    """Errors in a ``repro-metrics/1`` snapshot (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(obj, Mapping):
        return ["top level is not an object"]
    if obj.get("schema") != SNAPSHOT_SCHEMA:
        errors.append(f"schema is {obj.get('schema')!r}, expected {SNAPSHOT_SCHEMA!r}")
    for section, value_check in (
        ("counters", lambda v: isinstance(v, int) and not isinstance(v, bool)),
        ("gauges", lambda v: isinstance(v, _NUM) and not isinstance(v, bool)),
    ):
        table = obj.get(section, {})
        if not isinstance(table, Mapping):
            errors.append(f"{section} is not an object")
            continue
        for k, v in table.items():
            if not isinstance(k, str):
                errors.append(f"{section}: non-string key {k!r}")
            if not value_check(v):
                errors.append(f"{section}[{k}]: bad value {v!r}")
    hists = obj.get("histograms", {})
    if not isinstance(hists, Mapping):
        errors.append("histograms is not an object")
        hists = {}
    for name, h in hists.items():
        where = f"histograms[{name}]"
        if not isinstance(h, Mapping):
            errors.append(f"{where}: not an object")
            continue
        bounds, counts = h.get("bounds"), h.get("counts")
        if not isinstance(bounds, list) or not bounds or bounds != sorted(bounds):
            errors.append(f"{where}: bounds must be a sorted non-empty array")
        elif not isinstance(counts, list) or len(counts) != len(bounds) + 1:
            errors.append(f"{where}: counts must have len(bounds)+1 entries")
        elif sum(int(c) for c in counts) != h.get("count"):
            errors.append(f"{where}: count does not equal the bucket sum")
    return errors


def validate_jsonl(lines: List[str]) -> List[str]:
    """Errors in a JSONL event log (empty list = valid)."""
    errors: List[str] = []
    if not lines:
        return ["empty event log"]
    records = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append((i, json.loads(line)))
        except ValueError as exc:
            errors.append(f"line {i + 1}: not JSON ({exc})")
    if errors:
        return errors
    if not records or records[0][1].get("type") != "meta":
        errors.append("first record must be the meta header")
    elif records[0][1].get("schema") != JSONL_SCHEMA:
        errors.append(f"meta schema is {records[0][1].get('schema')!r}")
    n_spans = 0
    seen_ids = set()
    for i, rec in records:
        t = rec.get("type")
        if t == "span":
            n_spans += 1
            for k in ("id", "name", "start", "dur"):
                if k not in rec:
                    errors.append(f"line {i + 1}: span missing {k}")
            seen_ids.add(rec.get("id"))
            parent = rec.get("parent")
            if parent is not None and parent not in seen_ids:
                errors.append(f"line {i + 1}: parent {parent} not seen before child")
        elif t == "metrics":
            errors.extend(
                f"metrics line: {e}" for e in validate_metrics_snapshot(rec)
            )
        elif t != "meta":
            errors.append(f"line {i + 1}: unknown record type {t!r}")
    if n_spans == 0:
        errors.append("no span records")
    return errors


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2 or argv[0] not in ("chrome", "jsonl", "metrics", "events"):
        print(__doc__, file=sys.stderr)
        return 2
    kind, path = argv
    with open(path) as f:
        if kind == "jsonl":
            errors = validate_jsonl(f.read().splitlines())
        elif kind == "events":
            from .events import validate_event_log

            errors = validate_event_log(f.read().splitlines())
        else:
            try:
                obj = json.load(f)
            except ValueError as exc:
                print(f"{path}: not JSON: {exc}", file=sys.stderr)
                return 1
            errors = (
                validate_chrome_trace(obj)
                if kind == "chrome"
                else validate_metrics_snapshot(obj)
            )
    if errors:
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        return 1
    extra = ""
    if kind == "chrome":
        extra = f" (nesting depth {trace_nesting_depth(obj)})"
    print(f"{path}: valid {kind}{extra}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
