"""``repro.obs`` — the observability subsystem.

Grown out of ``repro.service.instrument`` (which remains as a
backwards-compatible alias):

* :mod:`trace` — hierarchical spans with parent/child links and
  attributes, counters, gauges, histograms, per-compile
  :class:`CompileReport` objects and cross-worker merging;
* :mod:`metrics` — the process-level :class:`MetricsRegistry` with a
  stable JSON snapshot schema, merge and run-to-run diff;
* :mod:`export` — Chrome trace-event JSON / JSONL exporters and the
  profile-tree view;
* :mod:`schema` — validators for every exported artifact (used by the CI
  ``trace-smoke`` job and the perf-regression gate).

Only the stdlib is imported here, so the lowest layers of the package
(``repro.presburger``) instrument themselves without import cycles.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricDelta,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    diff_snapshots,
    format_diff,
)
from .trace import (
    MAX_EVENTS,
    CompileReport,
    SpanEvent,
    SpanStat,
    active,
    annotate,
    collect,
    count,
    current_span_id,
    gauge,
    merge_report,
    observe,
    span,
    tracing,
)
from .export import (
    JSONL_SCHEMA,
    TRACE_SCHEMA,
    ProfileNode,
    chrome_trace,
    format_profile,
    jsonl_lines,
    profile_tree,
    write_trace,
)
from .schema import (
    trace_nesting_depth,
    validate_chrome_trace,
    validate_jsonl,
    validate_metrics_snapshot,
)
from .distributed import (
    HEADER,
    TraceContext,
    critical_path,
    current_context,
    new_context,
    report_to_wire,
    stitch,
    stitch_event_logs,
    stream_from_report,
    use_context,
    validate_trace_field,
    wire_to_events,
)
from .events import EventLog, SampleRing, validate_event_log

__all__ = [
    "DEFAULT_BUCKETS",
    "HEADER",
    "MAX_EVENTS",
    "SNAPSHOT_SCHEMA",
    "TRACE_SCHEMA",
    "JSONL_SCHEMA",
    "CompileReport",
    "EventLog",
    "SampleRing",
    "TraceContext",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "ProfileNode",
    "SpanEvent",
    "SpanStat",
    "active",
    "annotate",
    "chrome_trace",
    "collect",
    "count",
    "critical_path",
    "current_context",
    "current_span_id",
    "diff_snapshots",
    "format_diff",
    "format_profile",
    "gauge",
    "jsonl_lines",
    "merge_report",
    "new_context",
    "observe",
    "profile_tree",
    "report_to_wire",
    "span",
    "stitch",
    "stitch_event_logs",
    "stream_from_report",
    "trace_nesting_depth",
    "tracing",
    "use_context",
    "validate_chrome_trace",
    "validate_event_log",
    "validate_jsonl",
    "validate_metrics_snapshot",
    "validate_trace_field",
    "wire_to_events",
    "write_trace",
]
