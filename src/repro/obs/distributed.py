"""Distributed tracing: one trace across client, daemon, workers and stores.

A compile that flows ``repro client`` → ``repro serve`` → batch worker →
remote cache store crosses at least three processes; each of them records
spans into its own :class:`~repro.obs.trace.CompileReport`, and without a
shared identity those span forests cannot be reassembled.  This module
supplies that identity and the glue around it:

* :class:`TraceContext` — a W3C-traceparent-style context
  (``trace_id``/``span_id``/head-sampling flag) with three serialized
  forms: the ``traceparent`` header line (``00-<trace>-<span>-<flags>``)
  for HTTP hops (:data:`HEADER`) and worker environments
  (:data:`ENV_VAR`), and a JSON object (:meth:`TraceContext.to_wire`) for
  the optional ``trace`` field of ``repro-serve/1`` requests;
* an ambient per-thread *current context*
  (:func:`use_context`/:func:`current_context`) so layers that never see
  the request — ``HTTPStore`` deep inside a cache lookup — can stamp the
  right ids on their spans and headers;
* **wire spans** (:func:`report_to_wire`/:func:`wire_to_events`) — a
  bounded JSON form of a traced report plus a wall-clock anchor, so a
  daemon can hand its span tree back to the client that caused it;
* **stitching** (:func:`stitch`) — span streams from any number of
  processes, each anchored by its own ``wall_t0``, merged onto one
  wall-clock timeline as one Perfetto-loadable Chrome trace (one ``pid``
  lane per service);
* **critical-path analysis** (:func:`critical_path`) — longest dependency
  chain through a cost-weighted DAG, used by ``repro profile
  --critical-path`` to compare measured partition/transfer times against
  the Presburger-priced model.

Sampling follows the head-based model: the caller that *mints* the
context decides (:func:`sample`), everyone downstream honours the flag.
An unsampled context costs downstream layers only the null-span fast
path — they never open a tracing collector.
"""

from __future__ import annotations

import json
import random
import re
import secrets
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter, time
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .export import TRACE_SCHEMA, _entry_order
from .trace import CompileReport, SpanEvent

#: HTTP header carrying the serialized context on store hops.
HEADER = "X-Repro-Trace"
#: Response header: server-side handling milliseconds for the stitched view.
SERVER_MS_HEADER = "X-Repro-Server-Ms"
#: Environment variable carrying the context into worker processes.
ENV_VAR = "REPRO_TRACE"
#: Schema tag of the wire-span payload exchanged over ``repro-serve/1``.
WIRE_SCHEMA = "repro-spans/1"
#: Cap on spans serialized into one wire payload (mirrors ``MAX_EVENTS``:
#: a runaway trace must not blow up an RPC response).
MAX_WIRE_SPANS = 4000

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")
_HEADER_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


def _new_trace_id() -> str:
    return secrets.token_hex(16)


def _new_span_id() -> str:
    return secrets.token_hex(8)


@dataclass(frozen=True)
class TraceContext:
    """Identity of one distributed trace, as seen from one span.

    ``span_id`` names the *owning* span: when the context crosses a
    process boundary it is sent as ``parent_span_id`` and the receiver's
    spans nest (logically) under it.  ``sampled`` is the head-sampling
    decision made where the trace was minted; unsampled contexts still
    propagate (so lifecycle events keep their ids) but no process records
    span events for them.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A fresh span id under the same trace (crossing one more hop)."""
        return TraceContext(self.trace_id, _new_span_id(), self.sampled)

    # -- traceparent header form (HTTP hops, worker env) --------------------

    def to_header(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["TraceContext"]:
        if not value:
            return None
        m = _HEADER_RE.match(value.strip())
        if not m:
            return None
        return cls(m.group(1), m.group(2), sampled=bool(int(m.group(3), 16) & 1))

    # -- JSON wire form (the ``trace`` request field) -----------------------

    def to_wire(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_wire(cls, obj: Optional[Mapping[str, object]]) -> Optional["TraceContext"]:
        if not obj or validate_trace_field(obj):
            return None
        return cls(
            str(obj["trace_id"]),
            str(obj.get("parent_span_id") or _new_span_id()),
            sampled=bool(obj.get("sampled", True)),
        )


def new_context(sampled: bool = True) -> TraceContext:
    """Mint a brand-new trace (the client/CLI entry point)."""
    return TraceContext(_new_trace_id(), _new_span_id(), sampled=sampled)


def sample(rate: float) -> bool:
    """Head-sampling decision for a freshly minted trace."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return random.random() < rate


def validate_trace_field(obj: object) -> List[str]:
    """Errors in a ``trace`` request field (empty list = valid).

    Both ends of ``repro-serve/1`` run this; an *absent* field is always
    valid (that check lives in the protocol layer), a present one must be
    well-formed so a typo'd trace id fails loudly instead of silently
    breaking stitching.
    """
    errors: List[str] = []
    if not isinstance(obj, dict):
        return [f"trace: expected object, got {type(obj).__name__}"]
    tid = obj.get("trace_id")
    if not isinstance(tid, str) or not _TRACE_ID_RE.match(tid):
        errors.append("trace.trace_id: expected 32 lowercase hex chars")
    psid = obj.get("parent_span_id")
    if psid is not None and (
        not isinstance(psid, str) or not _SPAN_ID_RE.match(psid)
    ):
        errors.append("trace.parent_span_id: expected 16 lowercase hex chars")
    sampled = obj.get("sampled")
    if sampled is not None and not isinstance(sampled, bool):
        errors.append("trace.sampled: expected boolean")
    for key in obj:
        if key not in ("trace_id", "parent_span_id", "sampled"):
            errors.append(f"trace.{key}: unknown field")
    return errors


# ---------------------------------------------------------------------------
# ambient per-thread context

_ctx_state = threading.local()


def current_context() -> Optional[TraceContext]:
    """The context entered via :func:`use_context` on this thread, if any."""
    stack = getattr(_ctx_state, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def use_context(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``ctx`` the ambient context for the enclosed block.

    ``None`` is accepted and pushes nothing, so call sites can write
    ``with use_context(maybe_ctx):`` without branching.
    """
    if ctx is None:
        yield None
        return
    stack = getattr(_ctx_state, "stack", None)
    if stack is None:
        stack = _ctx_state.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.remove(ctx)


def context_from_env(environ: Mapping[str, str]) -> Optional[TraceContext]:
    """Parse :data:`ENV_VAR` from a worker's environment, if set."""
    return TraceContext.from_header(environ.get(ENV_VAR))


# ---------------------------------------------------------------------------
# wire spans: a traced report serialized for an RPC response / event log


def wall_anchor(report: CompileReport) -> float:
    """Unix time corresponding to the report's perf_counter epoch.

    Computed from the *current* pair of clocks, so it is exact up to the
    (sub-microsecond) time between the two reads; span ``start`` offsets
    added to it place events on the shared wall-clock timeline stitching
    needs.
    """
    return time() - (perf_counter() - report.epoch)


def _plain_attrs(attrs: Mapping[str, object]) -> Dict[str, object]:
    """Span attributes scrubbed to JSON-primitive values."""
    return {
        k: v if isinstance(v, (int, float, bool, str, type(None))) else str(v)
        for k, v in attrs.items()
    }


def report_to_wire(
    report: CompileReport,
    service: str,
    ctx: Optional[TraceContext] = None,
    limit: int = MAX_WIRE_SPANS,
) -> Dict[str, object]:
    """The report's span events as one JSON-serializable stream.

    The wire form is size-conscious because a sampled request ships it
    back through the daemon response on every call: timestamps are
    rounded to nanoseconds (sub-ns float digits are timer noise), thread
    ids are compacted to small per-payload lane indices, and per-span
    counters — whose dotted names repeat across hundreds of spans — are
    dictionary-encoded as ``[name_index, value]`` pairs against the
    payload-level ``counter_names`` table.
    """
    events = _entry_order(report.events)
    counter_names: Dict[str, int] = {}
    tids: Dict[int, int] = {}
    spans: List[Dict[str, object]] = []
    for e in events[:limit]:
        entry: Dict[str, object] = {
            "id": e.id,
            "parent": e.parent,
            "name": e.name,
            "start": round(e.start, 9),
            "dur": round(e.duration, 9),
            "tid": tids.setdefault(e.tid, len(tids)),
            "attrs": _plain_attrs(e.attrs),
        }
        if e.counters:
            entry["c"] = [
                [counter_names.setdefault(k, len(counter_names)), n]
                for k, n in e.counters.items()
            ]
        spans.append(entry)
    payload: Dict[str, object] = {
        "schema": WIRE_SCHEMA,
        "service": service,
        "wall_t0": wall_anchor(report),
        "spans": spans,
        "dropped": report.dropped_events,
        "truncated": max(0, len(events) - limit),
    }
    if counter_names:
        payload["counter_names"] = list(counter_names)
    if ctx is not None:
        payload["trace_id"] = ctx.trace_id
        payload["parent_span_id"] = ctx.span_id
    return payload


def _span_counters(
    span: Mapping[str, object], counter_names: Sequence[str]
) -> Dict[str, int]:
    """Decode one wire span's ``[name_index, value]`` counter pairs."""
    out: Dict[str, int] = {}
    for idx, n in span.get("c", []):
        idx = int(idx)
        if 0 <= idx < len(counter_names):
            out[str(counter_names[idx])] = int(n)
    return out


def wire_to_events(payload: Mapping[str, object]) -> List[SpanEvent]:
    """Wire spans back into :class:`SpanEvent` objects (ids kept as-is)."""
    counter_names = payload.get("counter_names", [])
    out: List[SpanEvent] = []
    for s in payload.get("spans", []):
        out.append(
            SpanEvent(
                id=int(s["id"]),
                parent=None if s.get("parent") is None else int(s["parent"]),
                name=str(s["name"]),
                start=float(s["start"]),
                duration=float(s["dur"]),
                tid=int(s.get("tid", 0)),
                attrs=dict(s.get("attrs", {})),
                counters=_span_counters(s, counter_names),
            )
        )
    return out


# ---------------------------------------------------------------------------
# stitching: many per-process streams -> one Perfetto-loadable trace


def stream_from_report(
    report: CompileReport,
    service: str,
    ctx: Optional[TraceContext] = None,
) -> Dict[str, object]:
    """A local report as a stitchable stream (same shape as wire payloads)."""
    return report_to_wire(report, service, ctx)


def derive_store_stream(stream: Mapping[str, object]) -> Optional[Dict[str, object]]:
    """Synthesize the remote store *server's* lane from client-side spans.

    ``HTTPStore`` annotates each ``store.*`` span with the handling time
    the store server reported back (:data:`SERVER_MS_HEADER`).  That is
    enough to place a server-side span inside the client-side one —
    centered, since the transport halves around it are symmetric to first
    order — without shipping the store's own event log.
    """
    spans: List[Dict[str, object]] = []
    next_id = 1
    for s in stream.get("spans", []):
        attrs = s.get("attrs", {})
        server_ms = attrs.get("server_ms")
        if server_ms is None or not str(s.get("name", "")).startswith("store."):
            continue
        dur = min(float(server_ms) / 1e3, float(s["dur"]))
        start = float(s["start"]) + (float(s["dur"]) - dur) / 2.0
        spans.append(
            {
                "id": next_id,
                "parent": None,
                "name": f"{s['name']}.server",
                "start": start,
                "dur": dur,
                "tid": 0,
                "attrs": {k: v for k, v in attrs.items() if k != "server_ms"},
            }
        )
        next_id += 1
    if not spans:
        return None
    return {
        "schema": WIRE_SCHEMA,
        "service": "store",
        "wall_t0": stream["wall_t0"],
        "spans": spans,
        "dropped": 0,
        "truncated": 0,
    }


def stitch(
    streams: Sequence[Mapping[str, object]],
    trace_id: Optional[str] = None,
) -> Dict[str, object]:
    """Merge per-process span streams into one Chrome trace object.

    Each stream gets its own ``pid`` lane named after its ``service``;
    events are rebased onto a shared wall-clock timeline via each
    stream's ``wall_t0`` anchor, and every event's args carry the
    ``trace_id`` so cross-lane membership is greppable in the JSON and
    visible in Perfetto's args panel.
    """
    streams = [s for s in streams if s and s.get("spans")]
    if not streams:
        base = 0.0
    else:
        base = min(float(s["wall_t0"]) for s in streams)
    if trace_id is None:
        for s in streams:
            if s.get("trace_id"):
                trace_id = str(s["trace_id"])
                break
    events: List[Dict[str, object]] = []
    dropped = 0
    for pid, stream in enumerate(streams, start=1):
        offset = float(stream["wall_t0"]) - base
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": str(stream.get("service", f"process {pid}"))},
            }
        )
        dropped += int(stream.get("dropped", 0)) + int(stream.get("truncated", 0))
        counter_names = stream.get("counter_names", [])
        for s in stream["spans"]:
            args = dict(s.get("attrs", {}))
            for name, n in _span_counters(s, counter_names).items():
                args[f"counter.{name}"] = n
            if trace_id is not None:
                args["trace_id"] = trace_id
            events.append(
                {
                    "name": str(s["name"]),
                    "cat": "compile",
                    "ph": "X",
                    "ts": max(0.0, (offset + float(s["start"]))) * 1e6,
                    "dur": float(s["dur"]) * 1e6,
                    "pid": pid,
                    "tid": int(s.get("tid", 0)),
                    "args": args,
                }
            )
    other: Dict[str, object] = {
        "schema": TRACE_SCHEMA,
        "spans": sum(len(s["spans"]) for s in streams),
        "dropped_events": dropped,
        "services": [str(s.get("service", "")) for s in streams],
    }
    if trace_id is not None:
        other["trace_id"] = trace_id
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def stitch_event_logs(
    paths: Sequence[str], trace_id: str
) -> Tuple[Dict[str, object], int]:
    """Assemble a trace from ``type: "trace"`` records in event-log files.

    Every daemon (and store server) appends one wire-span record per
    sampled request to its event log; ``repro trace --request <id>``
    collects the records matching ``trace_id`` across any number of logs
    — from different hosts, as long as their clocks are NTP-close — and
    stitches them.  Returns the Chrome trace dict and the number of
    streams found.
    """
    streams: List[Mapping[str, object]] = []
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if rec.get("type") == "trace" and rec.get("trace_id") == trace_id:
                    streams.append(rec)
    streams.sort(key=lambda s: float(s.get("wall_t0", 0.0)))
    return stitch(streams, trace_id=trace_id), len(streams)


# ---------------------------------------------------------------------------
# critical path: longest dependency chain through a cost-weighted DAG


def critical_path(
    nodes: Mapping[str, float],
    edges: Sequence[Tuple[str, str, float]],
) -> Tuple[float, List[str]]:
    """Longest (node cost + edge cost) chain through a dependency DAG.

    ``nodes`` maps name → cost (seconds); each edge ``(src, dst, cost)``
    says ``dst`` cannot start until ``src`` finished and the edge's
    transfer completed.  Returns the total critical-path seconds and the
    node names along it, source first.  Cycles raise ``ValueError``
    (partition schedules are DAGs by construction).
    """
    incoming: Dict[str, List[Tuple[str, float]]] = {name: [] for name in nodes}
    for src, dst, cost in edges:
        if src in incoming and dst in incoming:
            incoming[dst].append((src, cost))

    finish: Dict[str, float] = {}
    best_pred: Dict[str, Optional[str]] = {}
    visiting: set = set()

    def _finish(name: str) -> float:
        if name in finish:
            return finish[name]
        if name in visiting:
            raise ValueError(f"cycle through partition {name!r}")
        visiting.add(name)
        start = 0.0
        pred: Optional[str] = None
        for src, cost in incoming[name]:
            t = _finish(src) + cost
            if t > start:
                start, pred = t, src
        visiting.discard(name)
        best_pred[name] = pred
        finish[name] = start + nodes[name]
        return finish[name]

    if not nodes:
        return 0.0, []
    last = max(nodes, key=_finish)
    path: List[str] = []
    cur: Optional[str] = last
    while cur is not None:
        path.append(cur)
        cur = best_pred.get(cur)
    path.reverse()
    return finish[last], path


__all__ = [
    "ENV_VAR",
    "HEADER",
    "MAX_WIRE_SPANS",
    "SERVER_MS_HEADER",
    "WIRE_SCHEMA",
    "TraceContext",
    "context_from_env",
    "critical_path",
    "current_context",
    "derive_store_stream",
    "new_context",
    "report_to_wire",
    "sample",
    "stitch",
    "stitch_event_logs",
    "stream_from_report",
    "use_context",
    "validate_trace_field",
    "wall_anchor",
    "wire_to_events",
]
