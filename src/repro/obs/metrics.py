"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the *aggregation* side of the observability layer: spans
and counters stream into per-collection :class:`~repro.obs.trace.CompileReport`
objects (one per compile, one per batch worker), and a
:class:`MetricsRegistry` folds any number of reports — from this process,
from batch worker threads, or unpickled from worker processes — into one
coherent set of metrics with a stable JSON snapshot schema.

Snapshots are plain dicts (``schema`` ``repro-metrics/1``) so they can be
written next to benchmark results, diffed run-to-run (``repro stats diff``)
and checked by the perf-regression gate (``benchmarks/check_regression.py``).

This module is deliberately standalone: it imports nothing from the rest
of the package so the lowest layers can use it without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Identifier of the snapshot layout produced by :meth:`MetricsRegistry.snapshot`.
SNAPSHOT_SCHEMA = "repro-metrics/1"

#: Default histogram bucket upper bounds (powers of two: dimension counts,
#: piece counts and footprint sizes are all small-integer distributions).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Histogram:
    """A fixed-bucket histogram (cumulative-style bounds, like Prometheus).

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last edge.  Bounds are fixed at construction so
    histograms from different workers merge exactly, bucket by bucket.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, edge in enumerate(self.bounds):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket counts.

        Linearly interpolates within the bucket that crosses the target
        rank (lower edge 0 for the first bucket, ``max`` as the upper
        edge of the overflow bucket) — the usual Prometheus-style
        estimate, good enough for p50/p99 dashboards.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        target = q * self.count
        cum = 0
        lo = 0.0
        for i, c in enumerate(self.counts):
            if i < len(self.bounds):
                hi = float(self.bounds[i])
            else:  # overflow bucket: cap at the observed max
                hi = float(self.max) if self.max is not None else lo
            if cum + c >= target and c:
                frac = (target - cum) / c
                value = lo + (hi - lo) * max(0.0, min(1.0, frac))
                if self.min is not None:
                    value = max(value, float(self.min))
                if self.max is not None:
                    value = min(value, float(self.max))
                return value
            cum += c
            lo = hi
        return float(self.max) if self.max is not None else lo

    def as_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "Histogram":
        h = cls(tuple(d["bounds"]))
        counts = list(d["counts"])
        if len(counts) != len(h.counts):
            raise ValueError("histogram counts do not match bounds")
        h.counts = [int(c) for c in counts]
        h.count = int(d["count"])
        h.sum = float(d["sum"])
        h.min = d.get("min")
        h.max = d.get("max")
        return h

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram(count={self.count}, sum={self.sum:.4g})"


@dataclass
class MetricsRegistry:
    """Counters + gauges + histograms with snapshot/merge/diff.

    The registry itself is not thread-safe; the intended pattern is one
    :class:`~repro.obs.trace.CompileReport` per worker (collected on the
    worker's own thread) folded into a registry afterwards via
    :meth:`absorb_report`.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(
        self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(buckets)
        h.observe(value)

    # -- aggregation -------------------------------------------------------

    def absorb_report(self, report) -> None:
        """Fold one :class:`~repro.obs.trace.CompileReport` into the registry.

        Span aggregates become ``span.<name>.seconds`` gauges (summed) and
        ``span.<name>.calls`` counters; counters, histograms and cache
        stats merge additively; report gauges overwrite (last wins).
        """
        for name, stat in report.spans.items():
            self.inc(f"span.{name}.calls", stat.calls)
            self.gauges[f"span.{name}.seconds"] = (
                self.gauges.get(f"span.{name}.seconds", 0.0) + stat.seconds
            )
        for name, n in report.counters.items():
            self.inc(name, n)
        for name, n in report.cache.items():
            self.inc(f"cache.{name}", n)
        for name, value in report.gauges.items():
            self.gauges[name] = value
        for name, h in report.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                clone = Histogram(h.bounds)
                clone.merge(h)
                self.histograms[name] = clone
            else:
                mine.merge(h)

    def merge_snapshot(self, snap: Mapping[str, object]) -> None:
        """Merge a :meth:`snapshot` dict (e.g. from a worker process)."""
        for name, n in snap.get("counters", {}).items():
            self.inc(name, int(n))
        for name, v in snap.get("gauges", {}).items():
            self.gauges[name] = float(v)
        for name, d in snap.get("histograms", {}).items():
            h = Histogram.from_dict(d)
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = h
            else:
                mine.merge(h)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A stable, JSON-serializable view of every metric."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict() for k in sorted(self.histograms)
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, object]) -> "MetricsRegistry":
        if snap.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"unsupported metrics snapshot schema {snap.get('schema')!r}"
            )
        reg = cls()
        reg.merge_snapshot(snap)
        reg.meta = dict(snap.get("meta", {}))
        return reg


@dataclass
class MetricDelta:
    """One metric's change between two snapshots."""

    kind: str  # "counter" | "gauge" | "histogram"
    name: str
    a: Optional[float]
    b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def ratio(self) -> Optional[float]:
        if self.a is None or self.b is None or self.a == 0:
            return None
        return self.b / self.a


def diff_snapshots(
    a: Mapping[str, object], b: Mapping[str, object]
) -> List[MetricDelta]:
    """Run-to-run comparison of two metrics snapshots.

    Histograms are compared by their means (per-bucket drift rarely matters
    for regression tracking; the mean and count catch shape changes).
    """
    out: List[MetricDelta] = []
    for kind, key in (("counter", "counters"), ("gauge", "gauges")):
        av: Mapping[str, float] = a.get(key, {})
        bv: Mapping[str, float] = b.get(key, {})
        for name in sorted(set(av) | set(bv)):
            out.append(MetricDelta(kind, name, av.get(name), bv.get(name)))
    ah: Mapping[str, Mapping] = a.get("histograms", {})
    bh: Mapping[str, Mapping] = b.get("histograms", {})
    for name in sorted(set(ah) | set(bh)):
        mean_a = mean_b = None
        if name in ah and ah[name]["count"]:
            mean_a = ah[name]["sum"] / ah[name]["count"]
        if name in bh and bh[name]["count"]:
            mean_b = bh[name]["sum"] / bh[name]["count"]
        out.append(MetricDelta("histogram", f"{name}.mean", mean_a, mean_b))
    return out


def format_diff(
    deltas: Iterable[MetricDelta],
    only_changed: bool = True,
    indent: str = "  ",
) -> str:
    """Human-readable diff table (``repro stats diff``)."""
    rows: List[Tuple[str, str, str, str, str]] = []
    for d in deltas:
        if only_changed and d.a == d.b:
            continue
        fmt = (lambda v: "-" if v is None else
               (f"{v:.6g}" if isinstance(v, float) else str(v)))
        ratio = d.ratio
        rows.append(
            (
                d.name,
                fmt(d.a),
                fmt(d.b),
                "-" if d.delta is None else f"{d.delta:+.6g}",
                "-" if ratio is None else f"{ratio:.3f}x",
            )
        )
    if not rows:
        return "(no differences)"
    headers = ("metric", "a", "b", "delta", "ratio")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    for row in rows:
        lines.append(
            indent + "  ".join(c.ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)
