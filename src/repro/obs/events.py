"""Structured event log and telemetry ring buffer for long-lived daemons.

Two bounded-memory companions to the span layer:

* :class:`EventLog` — append-only ``repro-events/1`` JSONL records
  (``type: "event"`` lifecycle records with a level and trace/span ids,
  plus ``type: "trace"`` wire-span records for stitching).  Disk usage is
  bounded by size-triggered rotation (current file + one ``.1`` backup);
  the in-memory tail mirrors the span guard exactly — a hard ``cap``
  with a ``dropped`` counter, like ``MAX_EVENTS``/``dropped_events`` —
  so a flood of events degrades visibility, never memory.
* :class:`SampleRing` — fixed-capacity ring of periodic metrics samples
  with monotonically increasing sequence numbers, the backing store of
  the serve daemon's ``watch`` verb: clients poll ``since(seq)`` and get
  only new samples plus a count of any they missed.

Both are thread-safe; the serve daemon emits from its event loop and its
executor threads alike.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Mapping, Optional, Tuple

from .export import JSONL_SCHEMA

#: Accepted event severities, lowest to highest.
LEVELS = ("debug", "info", "warn", "error")

#: Default cap on the in-memory event tail (mirrors ``trace.MAX_EVENTS``
#: in spirit; events are far rarer than spans so the cap is smaller).
MAX_LOG_EVENTS = 10_000

#: Default rotation threshold for the on-disk log.
MAX_LOG_BYTES = 8 << 20


class EventLog:
    """Bounded structured event log (JSONL on disk, capped tail in memory).

    ``path=None`` keeps the log memory-only (tests, embedded use).  Every
    record carries ``at`` (unix seconds) and ``type``; ``emit`` adds
    ``level``/``event`` and optional trace ids, ``emit_trace`` appends a
    pre-built wire-span payload for ``repro trace --request`` stitching.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_bytes: int = MAX_LOG_BYTES,
        cap: int = MAX_LOG_EVENTS,
    ):
        self.path = path
        self.max_bytes = max_bytes
        self.cap = cap
        self.dropped = 0
        self.written = 0
        self.rotations = 0
        self._recent: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._fh = None
        if path:
            os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
            self._fh = open(path, "a")

    # -- recording -----------------------------------------------------------

    def emit(
        self,
        event: str,
        level: str = "info",
        trace=None,
        span_id: Optional[int] = None,
        **fields,
    ) -> None:
        """Append one lifecycle event record.

        ``trace`` is an optional :class:`~repro.obs.distributed.
        TraceContext`; its ids land on the record so ``grep trace_id``
        finds a request's full lifecycle across every log it touched.
        """
        if level not in LEVELS:
            raise ValueError(f"unknown event level {level!r}; expected one of {LEVELS}")
        rec: Dict[str, object] = {
            "type": "event",
            "schema": JSONL_SCHEMA,
            "at": time.time(),
            "level": level,
            "event": event,
        }
        if trace is not None:
            rec["trace_id"] = trace.trace_id
            rec["parent_span_id"] = trace.span_id
        if span_id is not None:
            rec["span_id"] = span_id
        rec.update(fields)
        self._append(rec)

    def emit_trace(self, payload: Mapping[str, object]) -> None:
        """Append a wire-span record (one per sampled request)."""
        rec: Dict[str, object] = {"type": "trace", "at": time.time()}
        rec.update(payload)
        self._append(rec)

    def _append(self, rec: Dict[str, object]) -> None:
        with self._lock:
            if len(self._recent) < self.cap:
                self._recent.append(rec)
            else:
                self.dropped += 1
            if self._fh is not None:
                self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
                self._fh.flush()
                self.written += 1
                try:
                    if self._fh.tell() >= self.max_bytes:
                        self._rotate()
                except (OSError, ValueError):
                    pass

    def _rotate(self) -> None:
        """Roll ``path`` to ``path.1`` (lock held by caller)."""
        self._fh.close()
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:
            pass
        self._fh = open(self.path, "a")
        self.rotations += 1

    # -- views ---------------------------------------------------------------

    def recent(
        self, limit: Optional[int] = None, type: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """The newest buffered records, optionally only one record type
        (``"event"`` skips the bulky wire-span ``"trace"`` payloads)."""
        with self._lock:
            out = list(self._recent)
        if type is not None:
            out = [r for r in out if r.get("type") == type]
        return out if limit is None else out[-limit:]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "buffered": len(self._recent),
                "dropped": self.dropped,
                "written": self.written,
                "rotations": self.rotations,
            }

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def validate_event_log(lines) -> List[str]:
    """Errors in an event-log JSONL stream (empty list = valid)."""
    errors: List[str] = []
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {i}: not JSON ({exc})")
            continue
        if not isinstance(rec, dict):
            errors.append(f"line {i}: expected object")
            continue
        kind = rec.get("type")
        if kind not in ("event", "trace"):
            errors.append(f"line {i}: unknown record type {kind!r}")
            continue
        if not isinstance(rec.get("at"), (int, float)):
            errors.append(f"line {i}: missing numeric 'at'")
        if kind == "event":
            if rec.get("level") not in LEVELS:
                errors.append(f"line {i}: bad level {rec.get('level')!r}")
            if not isinstance(rec.get("event"), str):
                errors.append(f"line {i}: missing event name")
        else:
            if not isinstance(rec.get("spans"), list):
                errors.append(f"line {i}: trace record missing span list")
    return errors


class SampleRing:
    """Fixed-capacity ring of timestamped samples with sequence numbers.

    ``add`` assigns each sample the next sequence number; ``since(seq)``
    returns every retained sample newer than ``seq`` plus how many the
    caller missed because the ring wrapped — the same drop-visibly
    contract as the span cap.
    """

    def __init__(self, capacity: int = 300):
        if capacity <= 0:
            raise ValueError("SampleRing capacity must be positive")
        self.capacity = capacity
        self._samples: List[Tuple[int, Dict[str, object]]] = []
        self._next_seq = 1
        self._lock = threading.Lock()

    def add(self, sample: Dict[str, object]) -> int:
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._samples.append((seq, sample))
            if len(self._samples) > self.capacity:
                del self._samples[: len(self._samples) - self.capacity]
            return seq

    def since(self, seq: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """(samples newer than ``seq``, count of missed/evicted samples)."""
        with self._lock:
            fresh = [
                dict(s, seq=sq) for sq, s in self._samples if sq > seq
            ]
            oldest = self._samples[0][0] if self._samples else self._next_seq
            missed = max(0, oldest - seq - 1) if seq else 0
            return fresh, missed

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


__all__ = [
    "LEVELS",
    "MAX_LOG_BYTES",
    "MAX_LOG_EVENTS",
    "EventLog",
    "SampleRing",
    "validate_event_log",
]
