"""Hierarchical compile tracing: spans, counters, histograms, reports.

This is the recording side of ``repro.obs``.  The optimizer's passes wrap
themselves in ``with span("tile_shapes"):`` and hot kernels bump counters
(``count("presburger.fm_eliminate")``) or histograms
(``observe("presburger.fm.eliminated_dims", n)``).  All of it is
near-free when nobody is listening: a :class:`CompileReport` only
accumulates inside a ``with collect() as report:`` block on the same
thread, and the no-listener fast path of :func:`span`/:func:`count` is a
single thread-local read (asserted by ``benchmarks/bench_obs_overhead.py``).

Two listening levels exist:

* ``collect()`` — aggregate per-span timings and counters (the historical
  ``optimize --stats`` behaviour);
* ``collect(trace=True)`` — additionally record every span entry as a
  :class:`SpanEvent` with parent/child links, per-span attributes and
  per-span counter deltas.  Event streams export as Chrome trace-event
  JSON or JSONL via :mod:`repro.obs.export`.

This module imports only the stdlib and :mod:`repro.obs.metrics`, so the
lowest layers (``repro.presburger``) can use it without an import cycle.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from .metrics import DEFAULT_BUCKETS, Histogram

#: Event-stream cap per report: a runaway presburger loop must not turn a
#: trace into a multi-gigabyte file.  Overflow increments ``dropped_events``.
MAX_EVENTS = 200_000


@dataclass
class SpanStat:
    """Aggregate of every entry into one named span."""

    calls: int = 0
    seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.seconds += seconds


@dataclass
class SpanEvent:
    """One recorded span entry (only under ``collect(trace=True)``).

    ``start`` is seconds since the owning report's epoch; ``parent`` links
    to the enclosing span's ``id`` (``None`` for roots).  ``counters``
    holds the deltas of every counter bumped while this span was the
    innermost open span — memo hits/misses, FM eliminations — so hot-path
    behaviour is attributable to the pass that triggered it.
    """

    id: int
    parent: Optional[int]
    name: str
    start: float
    duration: float
    tid: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)


@dataclass
class CompileReport:
    """Everything observed during one instrumented region."""

    spans: Dict[str, SpanStat] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    cache: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    record_events: bool = False
    max_events: int = MAX_EVENTS
    dropped_events: int = 0
    #: perf_counter value event ``start`` offsets are relative to.  Only
    #: meaningful within the recording process; cross-process merges rebase
    #: via :meth:`merge`'s ``at`` argument.
    epoch: float = field(default_factory=perf_counter)

    # -- recording ---------------------------------------------------------

    def add_span(self, name: str, seconds: float) -> None:
        self.spans.setdefault(name, SpanStat()).add(seconds)

    def add_count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def add_event(self, event: SpanEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def observe(
        self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(buckets)
        h.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def merge_cache_stats(self, stats: Mapping[str, int]) -> None:
        for k, v in stats.items():
            self.cache[k] = self.cache.get(k, 0) + v

    # -- aggregation across workers ---------------------------------------

    def merge(
        self,
        other: "CompileReport",
        parent: Optional[int] = None,
        at: Optional[float] = None,
    ) -> None:
        """Fold another report (a batch worker's) into this one.

        Foreign events get fresh ids (ids are only unique per process — a
        worker process restarts the counter), their roots are re-parented
        under ``parent``, and their times are rebased: by the epoch
        difference for same-process reports, or so the earliest foreign
        event lands at perf_counter time ``at`` for cross-process reports.
        """
        for name, stat in other.spans.items():
            mine = self.spans.setdefault(name, SpanStat())
            mine.calls += stat.calls
            mine.seconds += stat.seconds
        for name, n in other.counters.items():
            self.add_count(name, n)
        self.merge_cache_stats(other.cache)
        self.gauges.update(other.gauges)
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(h.bounds)
            mine.merge(h)
        self.dropped_events += other.dropped_events
        if not other.events:
            return
        if at is None:
            offset = other.epoch - self.epoch
        else:
            offset = (at - self.epoch) - min(e.start for e in other.events)
        remap = {e.id: next(_ids) for e in other.events}
        for e in other.events:
            self.add_event(
                SpanEvent(
                    id=remap[e.id],
                    parent=remap.get(e.parent, parent) if e.parent is not None else parent,
                    name=e.name,
                    start=e.start + offset,
                    duration=e.duration,
                    tid=e.tid,
                    attrs=dict(e.attrs),
                    counters=dict(e.counters),
                )
            )

    # -- views -------------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.spans.values())

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "spans": {
                k: {"calls": v.calls, "seconds": v.seconds}
                for k, v in self.spans.items()
            },
            "counters": dict(self.counters),
            "cache": dict(self.cache),
        }
        if self.gauges:
            out["gauges"] = dict(self.gauges)
        if self.histograms:
            out["histograms"] = {
                k: h.as_dict() for k, h in self.histograms.items()
            }
        if self.record_events:
            out["events"] = len(self.events)
            out["dropped_events"] = self.dropped_events
        return out

    def to_metrics(self, **meta) -> Dict[str, object]:
        """This report as a ``repro-metrics/1`` snapshot dict."""
        from .metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.absorb_report(self)
        reg.meta.update(meta)
        return reg.snapshot()

    def format(self, indent: str = "  ") -> str:
        """A human-readable multi-line rendering for ``--stats``."""
        lines: List[str] = []
        if self.spans:
            lines.append("per-pass timings:")
            width = max(len(k) for k in self.spans)
            for name, stat in sorted(
                self.spans.items(), key=lambda kv: -kv[1].seconds
            ):
                lines.append(
                    f"{indent}{name.ljust(width)}  "
                    f"{stat.seconds * 1e3:9.2f} ms  ({stat.calls} calls)"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(k) for k in self.counters)
            for name in sorted(self.counters):
                lines.append(f"{indent}{name.ljust(width)}  {self.counters[name]}")
        if self.histograms:
            lines.append("histograms:")
            width = max(len(k) for k in self.histograms)
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"{indent}{name.ljust(width)}  n={h.count} mean={h.mean:.2f} "
                    f"min={h.min} max={h.max}"
                )
        if self.gauges:
            lines.append("gauges:")
            width = max(len(k) for k in self.gauges)
            for name in sorted(self.gauges):
                lines.append(f"{indent}{name.ljust(width)}  {self.gauges[name]:g}")
        if self.cache:
            lines.append("cache:")
            width = max(len(k) for k in self.cache)
            for name in sorted(self.cache):
                lines.append(f"{indent}{name.ljust(width)}  {self.cache[name]}")
        return "\n".join(lines) if lines else "(no instrumentation recorded)"


_state = threading.local()
#: Process-wide event id source (GIL-atomic); worker-process ids are
#: remapped through it on merge so ids stay unique per trace.
_ids = itertools.count(1)


class _Frame:
    """One open (not yet exited) traced span on the current thread."""

    __slots__ = ("id", "parent", "name", "attrs", "counters")

    def __init__(self, id: int, parent: Optional[int], name: str, attrs: dict):
        self.id = id
        self.parent = parent
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, int] = {}


def _collectors() -> List[CompileReport]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


def _frames() -> List[_Frame]:
    frames = getattr(_state, "frames", None)
    if frames is None:
        frames = []
        _state.frames = frames
    return frames


def active() -> bool:
    """True when at least one collector is listening on this thread."""
    return bool(getattr(_state, "stack", None))


def tracing() -> bool:
    """True when at least one collector records span events on this thread."""
    stack = getattr(_state, "stack", None)
    return bool(stack) and any(r.record_events for r in stack)


def current_span_id() -> Optional[int]:
    """Id of the innermost open traced span on this thread, or ``None``."""
    frames = getattr(_state, "frames", None)
    return frames[-1].id if frames else None


@contextmanager
def collect(
    report: Optional[CompileReport] = None,
    trace: bool = False,
    max_events: Optional[int] = None,
) -> Iterator[CompileReport]:
    """Accumulate spans/counters from the enclosed code into a report.

    With ``trace=True`` the report also records hierarchical
    :class:`SpanEvent`\\ s (exportable via :mod:`repro.obs.export`).
    """
    if report is None:
        report = CompileReport(record_events=trace)
    elif trace:
        report.record_events = True
    if max_events is not None:
        report.max_events = max_events
    stack = _collectors()
    stack.append(report)
    try:
        yield report
    finally:
        stack.remove(report)


class _NullSpan:
    """Shared no-op context manager: the disabled-instrumentation path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """An active span: aggregates into every collector, and — when any
    collector is tracing — records a :class:`SpanEvent` with parent links."""

    __slots__ = ("name", "attrs", "t0", "frame")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.frame: Optional[_Frame] = None

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered mid-span (traced spans only)."""
        if self.frame is not None:
            self.frame.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = getattr(_state, "stack", None)
        if stack and any(r.record_events for r in stack):
            frames = _frames()
            parent = frames[-1].id if frames else None
            self.frame = _Frame(next(_ids), parent, self.name, dict(self.attrs))
            frames.append(self.frame)
        self.t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = perf_counter() - self.t0
        frame = self.frame
        if frame is not None:
            frames = getattr(_state, "frames", None)
            if frames:
                if frames[-1] is frame:
                    frames.pop()
                else:  # unbalanced exit (generator teardown): best effort
                    try:
                        frames.remove(frame)
                    except ValueError:
                        pass
            if exc_type is not None:
                frame.attrs.setdefault("error", exc_type.__name__)
        stack = getattr(_state, "stack", None)
        if stack:
            tid = threading.get_ident()
            for report in stack:
                report.add_span(self.name, elapsed)
                if report.record_events and frame is not None:
                    report.add_event(
                        SpanEvent(
                            id=frame.id,
                            parent=frame.parent,
                            name=self.name,
                            start=self.t0 - report.epoch,
                            duration=elapsed,
                            tid=tid,
                            attrs=dict(frame.attrs),
                            counters=dict(frame.counters),
                        )
                    )
        return False


def span(name: str, **attrs):
    """Time the enclosed block under ``name`` (no-op when not collecting).

    Keyword arguments become span attributes on the recorded event (ignored
    unless a tracing collector is active).  The returned object has an
    ``annotate(**attrs)`` method for attributes computed mid-block.
    """
    if not getattr(_state, "stack", None):
        return _NULL_SPAN
    return _Span(name, attrs)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on every active collector (no-op otherwise)."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return
    for report in stack:
        report.add_count(name, n)
    frames = getattr(_state, "frames", None)
    if frames:
        c = frames[-1].counters
        c[name] = c.get(name, 0) + n


def observe(
    name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS
) -> None:
    """Record ``value`` into histogram ``name`` on every active collector."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return
    for report in stack:
        report.observe(name, value, buckets)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` on every active collector (no-op otherwise)."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return
    for report in stack:
        report.set_gauge(name, value)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost open traced span, if any."""
    frames = getattr(_state, "frames", None)
    if frames:
        frames[-1].attrs.update(attrs)


def merge_report(
    report: CompileReport, at: Optional[float] = None
) -> None:
    """Fold a worker's report into every collector active on this thread.

    Used by the batch driver: worker threads/processes collect their own
    reports (thread-local stacks do not cross workers) and the driver
    merges them back, re-parenting the worker's root spans under the
    driver's currently open span.
    """
    stack = getattr(_state, "stack", None)
    if not stack:
        return
    parent = current_span_id()
    for r in stack:
        r.merge(report, parent=parent, at=at)
