"""``repro.ir`` — program representation: tensors, expressions, statements."""

from .expr import (
    Affine,
    BinOp,
    Call,
    Const,
    Expr,
    Load,
    as_expr,
    exp,
    quant,
    relu,
    sqrt,
    vmax,
    vmin,
)
from .program import Program, ProgramBuilder
from .statement import ASSIGN, REDUCE, Statement
from .tensor import Tensor, TensorStore

__all__ = [
    "ASSIGN",
    "Affine",
    "BinOp",
    "Call",
    "Const",
    "Expr",
    "Load",
    "Program",
    "ProgramBuilder",
    "REDUCE",
    "Statement",
    "Tensor",
    "TensorStore",
    "as_expr",
    "exp",
    "quant",
    "relu",
    "sqrt",
    "vmax",
    "vmin",
]
