"""Statements: the polyhedral unit of computation.

A statement owns an iteration domain (a :class:`Set` whose tuple name is the
statement name), a single tensor write, and a scalar right-hand side.  Access
relations are *derived* from the expression tree rather than declared, so
they can never drift out of sync with what the interpreter executes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..presburger import (
    BasicMap,
    LinExpr,
    Map,
    MapSpace,
    Set,
    UnionMap,
    fresh_names,
)
from .expr import Expr, Load

ASSIGN = "assign"
REDUCE = "reduce"


class Statement:
    """One statement: ``lhs = rhs`` or ``lhs += rhs`` over a domain."""

    def __init__(
        self,
        name: str,
        domain: Set,
        lhs: Load,
        rhs: Expr,
        kind: str = ASSIGN,
        reduce_op: str = "+",
    ):
        if domain.space.name != name:
            raise ValueError(
                f"domain tuple name {domain.space.name!r} != statement name {name!r}"
            )
        if kind not in (ASSIGN, REDUCE):
            raise ValueError(f"bad statement kind {kind!r}")
        self.name = name
        self.domain = domain
        self.lhs = lhs
        self.rhs = rhs
        self.kind = kind
        self.reduce_op = reduce_op

    # -- shape queries -----------------------------------------------------

    @property
    def dims(self) -> Tuple[str, ...]:
        return self.domain.space.dims

    @property
    def params(self) -> Tuple[str, ...]:
        return self.domain.space.params

    def ops_per_instance(self) -> int:
        base = self.rhs.op_count()
        if self.kind == REDUCE:
            base += 1  # the accumulate
        return max(base, 1)

    # -- access relations ---------------------------------------------------

    def _access_map(self, tensor: str, indices: Sequence[LinExpr]) -> Map:
        pieces = []
        out_dims: Optional[Tuple[str, ...]] = None
        for dpiece in self.domain.pieces:
            bmap = BasicMap.from_exprs(
                self.name,
                self.dims,
                tensor,
                list(indices),
                params=self.params,
                out_dims=out_dims,
                domain=dpiece,
            )
            out_dims = bmap.space.out_dims
            pieces.append(bmap)
        if out_dims is None:
            out_dims = fresh_names(
                [f"o{i}" for i in range(len(indices))], list(self.dims) + list(self.params)
            )
        space = MapSpace(self.name, self.dims, tensor, out_dims, self.params)
        return Map(space, pieces)

    def write_relation(self) -> Map:
        return self._access_map(self.lhs.tensor, self.lhs.indices)

    def read_loads(self) -> List[Load]:
        loads = list(self.rhs.loads())
        if self.kind == REDUCE:
            loads.append(self.lhs)
        return loads

    def read_relations(self) -> UnionMap:
        by_tensor: Dict[str, Map] = {}
        for load in self.read_loads():
            m = self._access_map(load.tensor, load.indices)
            key = load.tensor
            if key in by_tensor:
                prev = by_tensor[key]
                rename = dict(zip(m.space.out_dims, prev.space.out_dims))
                by_tensor[key] = prev.union(m.rename_dims(rename))
            else:
                by_tensor[key] = m
        return UnionMap(list(by_tensor.values()))

    def tensors_read(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(l.tensor for l in self.read_loads()))

    def tensor_written(self) -> str:
        return self.lhs.tensor

    def __repr__(self):
        sym = "+=" if self.kind == REDUCE else "="
        return f"Statement({self.name}: {self.lhs} {sym} {self.rhs})"
