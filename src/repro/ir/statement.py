"""Statements: the polyhedral unit of computation.

A statement owns an iteration domain (a :class:`Set` whose tuple name is the
statement name), a single tensor write, and a scalar right-hand side.  Access
relations are *derived* from the expression tree rather than declared, so
they can never drift out of sync with what the interpreter executes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..presburger import (
    BasicMap,
    LinExpr,
    Map,
    MapSpace,
    Set,
    UnionMap,
    fresh_names,
    memo,
)
from .expr import Expr, Load

ASSIGN = "assign"
REDUCE = "reduce"

# Access relations are derived per call, but dependence analysis probes the
# same statement pair many times and the autotuner replays whole passes, so
# the derivations repeat verbatim.  Statements are mutable; the memo keys
# are therefore structural (domain space + constraints + access exprs),
# never the statement object itself.
_ACCESS_MEMO = memo.table("access_map")
_READS_MEMO = memo.table("read_relations")


class Statement:
    """One statement: ``lhs = rhs`` or ``lhs += rhs`` over a domain."""

    def __init__(
        self,
        name: str,
        domain: Set,
        lhs: Load,
        rhs: Expr,
        kind: str = ASSIGN,
        reduce_op: str = "+",
    ):
        if domain.space.name != name:
            raise ValueError(
                f"domain tuple name {domain.space.name!r} != statement name {name!r}"
            )
        if kind not in (ASSIGN, REDUCE):
            raise ValueError(f"bad statement kind {kind!r}")
        self.name = name
        self.domain = domain
        self.lhs = lhs
        self.rhs = rhs
        self.kind = kind
        self.reduce_op = reduce_op

    # -- shape queries -----------------------------------------------------

    @property
    def dims(self) -> Tuple[str, ...]:
        return self.domain.space.dims

    @property
    def params(self) -> Tuple[str, ...]:
        return self.domain.space.params

    def ops_per_instance(self) -> int:
        base = self.rhs.op_count()
        if self.kind == REDUCE:
            base += 1  # the accumulate
        return max(base, 1)

    # -- access relations ---------------------------------------------------

    def _access_map(self, tensor: str, indices: Sequence[LinExpr]) -> Map:
        key = (
            self.domain.space,
            tuple(p.constraints for p in self.domain.pieces),
            tensor,
            tuple(indices),
        )
        cached = _ACCESS_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        pieces = []
        out_dims: Optional[Tuple[str, ...]] = None
        for dpiece in self.domain.pieces:
            bmap = BasicMap.from_exprs(
                self.name,
                self.dims,
                tensor,
                list(indices),
                params=self.params,
                out_dims=out_dims,
                domain=dpiece,
            )
            out_dims = bmap.space.out_dims
            pieces.append(bmap)
        if out_dims is None:
            out_dims = fresh_names(
                [f"o{i}" for i in range(len(indices))], list(self.dims) + list(self.params)
            )
        space = MapSpace(self.name, self.dims, tensor, out_dims, self.params)
        return _ACCESS_MEMO.put(key, Map(space, pieces))

    def write_relation(self) -> Map:
        return self._access_map(self.lhs.tensor, self.lhs.indices)

    def read_loads(self) -> List[Load]:
        loads = list(self.rhs.loads())
        if self.kind == REDUCE:
            loads.append(self.lhs)
        return loads

    def read_relations(self) -> UnionMap:
        loads = self.read_loads()
        key = (
            self.domain.space,
            tuple(p.constraints for p in self.domain.pieces),
            tuple((l.tensor, tuple(l.indices)) for l in loads),
        )
        cached = _READS_MEMO.get(key)
        if cached is not memo.MISS:
            return cached
        by_tensor: Dict[str, Map] = {}
        for load in loads:
            m = self._access_map(load.tensor, load.indices)
            tensor = load.tensor
            if tensor in by_tensor:
                prev = by_tensor[tensor]
                rename = dict(zip(m.space.out_dims, prev.space.out_dims))
                by_tensor[tensor] = prev.union(m.rename_dims(rename))
            else:
                by_tensor[tensor] = m
        return _READS_MEMO.put(key, UnionMap(list(by_tensor.values())))

    def tensors_read(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(l.tensor for l in self.read_loads()))

    def tensor_written(self) -> str:
        return self.lhs.tensor

    def __repr__(self):
        sym = "+=" if self.kind == REDUCE else "="
        return f"Statement({self.name}: {self.lhs} {sym} {self.rhs})"
