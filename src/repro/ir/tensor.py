"""Tensors: named multi-dimensional arrays with possibly-symbolic shapes."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple, Union

import numpy as np

from ..presburger import LinExpr
from .expr import Load

ShapeEntry = Union[int, str, LinExpr]


class Tensor:
    """A named array.  Shape entries are ints, param names or affine exprs.

    Indexing a tensor with affine expressions builds a :class:`Load` node::

        A = Tensor("A", ("H", "W"))
        A[h + kh, w + kw]       # -> Load("A", (h+kh, w+kw))
    """

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Sequence[ShapeEntry], dtype=np.float64):
        self.name = name
        self.shape = tuple(LinExpr.coerce(s) for s in shape)
        self.dtype = dtype

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def concrete_shape(self, params: Mapping[str, int]) -> Tuple[int, ...]:
        out = []
        for s in self.shape:
            val = s.eval(params)
            if val <= 0:
                raise ValueError(f"tensor {self.name} has extent {val} <= 0")
            out.append(val)
        return tuple(out)

    def size_elems(self, params: Mapping[str, int]) -> int:
        total = 1
        for e in self.concrete_shape(params):
            total *= e
        return total

    def size_bytes(self, params: Mapping[str, int]) -> int:
        return self.size_elems(params) * np.dtype(self.dtype).itemsize

    def __getitem__(self, indices) -> Load:
        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != self.ndim:
            raise IndexError(
                f"tensor {self.name} has {self.ndim} dims, got {len(indices)} indices"
            )
        return Load(self.name, [LinExpr.coerce(i) for i in indices])

    def __repr__(self):
        return f"Tensor({self.name}, shape=({', '.join(str(s) for s in self.shape)}))"


class TensorStore:
    """Concrete storage for a set of tensors during interpretation."""

    def __init__(self, tensors: Mapping[str, Tensor], params: Mapping[str, int]):
        self.params = dict(params)
        self.arrays: Dict[str, np.ndarray] = {}
        self.tensors = dict(tensors)
        for name, t in tensors.items():
            self.arrays[name] = np.zeros(t.concrete_shape(params), dtype=t.dtype)

    def read(self, tensor: str, idx: Tuple[int, ...]) -> float:
        return self.arrays[tensor][idx]

    def write(self, tensor: str, idx: Tuple[int, ...], value: float) -> None:
        self.arrays[tensor][idx] = value

    def accumulate(self, tensor: str, idx: Tuple[int, ...], value: float) -> None:
        self.arrays[tensor][idx] += value

    def set_input(self, tensor: str, array: np.ndarray) -> None:
        expected = self.arrays[tensor].shape
        if tuple(array.shape) != expected:
            raise ValueError(
                f"input {tensor} has shape {array.shape}, expected {expected}"
            )
        self.arrays[tensor] = array.astype(self.tensors[tensor].dtype, copy=True)

    def __getitem__(self, tensor: str) -> np.ndarray:
        return self.arrays[tensor]
