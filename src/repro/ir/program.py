"""Programs and the builder DSL used by all pipelines.

A :class:`Program` is an ordered sequence of statements (textual order =
initial schedule), a tensor table, parameter defaults and a set of live-out
tensors.  :class:`ProgramBuilder` offers the small DSL the workloads are
written in::

    b = ProgramBuilder("conv2d", params={"H": 64, "W": 64, "KH": 3, "KW": 3})
    A = b.tensor("A", ("H", "W"))
    h, w = b.iters("h", "w")
    b.assign("S0", (h, w), "0 <= h < H and 0 <= w < W", A[h, w], quant(A[h, w]))
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..presburger import LinExpr, Set, UnionMap, UnionSet, parse_set
from .expr import Load, as_expr
from .statement import ASSIGN, REDUCE, Statement
from .tensor import Tensor


class Program:
    """An ordered statement list with tensors and live-out information."""

    def __init__(
        self,
        name: str,
        statements: Sequence[Statement],
        tensors: Mapping[str, Tensor],
        params: Mapping[str, int],
        liveout: Optional[Iterable[str]] = None,
    ):
        self.name = name
        self.statements = list(statements)
        self.tensors = dict(tensors)
        self.params = dict(params)
        names = [s.name for s in self.statements]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate statement names in {name}: {names}")
        if liveout is None:
            liveout = self._infer_liveout()
        self.liveout = tuple(liveout)
        for t in self.liveout:
            if t not in self.tensors:
                raise ValueError(f"live-out tensor {t!r} not declared")

    def _infer_liveout(self) -> Tuple[str, ...]:
        written = {s.tensor_written() for s in self.statements}
        read = {t for s in self.statements for t in s.tensors_read()}
        return tuple(sorted(written - read))

    # -- lookups -----------------------------------------------------------

    def statement(self, name: str) -> Statement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(name)

    def statement_index(self, name: str) -> int:
        for i, s in enumerate(self.statements):
            if s.name == name:
                return i
        raise KeyError(name)

    @property
    def statement_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.statements)

    def input_tensors(self) -> Tuple[str, ...]:
        written = {s.tensor_written() for s in self.statements}
        read = [t for s in self.statements for t in s.tensors_read()]
        return tuple(dict.fromkeys(t for t in read if t not in written))

    def intermediate_tensors(self) -> Tuple[str, ...]:
        written = [s.tensor_written() for s in self.statements]
        return tuple(
            dict.fromkeys(t for t in written if t not in self.liveout)
        )

    # -- polyhedral views ----------------------------------------------------

    def domains(self) -> UnionSet:
        return UnionSet([s.domain for s in self.statements])

    def reads(self) -> UnionMap:
        acc = UnionMap.empty()
        for s in self.statements:
            acc = acc.union(s.read_relations())
        return acc

    def writes(self) -> UnionMap:
        return UnionMap([s.write_relation() for s in self.statements])

    def writers_of(self, tensor: str) -> List[Statement]:
        return [s for s in self.statements if s.tensor_written() == tensor]

    def readers_of(self, tensor: str) -> List[Statement]:
        return [s for s in self.statements if tensor in s.tensors_read()]

    def total_instances(self, params: Optional[Mapping[str, int]] = None) -> int:
        params = dict(self.params, **(params or {}))
        return sum(s.domain.count_points(params) for s in self.statements)

    def __repr__(self):
        return (
            f"Program({self.name}, {len(self.statements)} statements, "
            f"liveout={list(self.liveout)})"
        )


class ProgramBuilder:
    """Fluent construction of :class:`Program` objects."""

    def __init__(self, name: str, params: Optional[Mapping[str, int]] = None):
        self.name = name
        self.params: Dict[str, int] = dict(params or {})
        self._tensors: Dict[str, Tensor] = {}
        self._statements: List[Statement] = []
        self._liveout: Optional[List[str]] = None

    # -- declarations --------------------------------------------------------

    def tensor(self, name: str, shape: Sequence, dtype=np.float64) -> Tensor:
        if name in self._tensors:
            raise ValueError(f"tensor {name!r} already declared")
        t = Tensor(name, shape, dtype)
        self._tensors[name] = t
        return t

    def iters(self, *names: str) -> Tuple[LinExpr, ...]:
        return tuple(LinExpr.var(n) for n in names)

    def param(self, name: str) -> LinExpr:
        if name not in self.params:
            raise KeyError(f"unknown param {name!r}")
        return LinExpr.var(name)

    # -- statements ----------------------------------------------------------

    def _domain(self, name: str, dims: Sequence[LinExpr], cond: str) -> Set:
        dim_names = []
        for d in dims:
            syms = d.symbols()
            if len(syms) != 1 or d.coeff(syms[0]) != 1 or d.const != 0:
                raise ValueError(f"statement dims must be plain iterators, got {d}")
            dim_names.append(syms[0])
        prologue = f"[{', '.join(self.params)}] -> " if self.params else ""
        text = f"{prologue}{{ {name}[{', '.join(dim_names)}] : {cond} }}"
        return parse_set(text)

    def assign(self, name, dims, cond, lhs: Load, rhs) -> Statement:
        stmt = Statement(name, self._domain(name, dims, cond), lhs, as_expr(rhs), ASSIGN)
        self._statements.append(stmt)
        return stmt

    def reduce(self, name, dims, cond, lhs: Load, rhs, op: str = "+") -> Statement:
        stmt = Statement(
            name, self._domain(name, dims, cond), lhs, as_expr(rhs), REDUCE, op
        )
        self._statements.append(stmt)
        return stmt

    # -- finalisation ----------------------------------------------------------

    def set_liveout(self, *tensors: str) -> "ProgramBuilder":
        self._liveout = [t.name if isinstance(t, Tensor) else t for t in tensors]
        return self

    def build(self) -> Program:
        return Program(
            self.name, self._statements, self._tensors, self.params, self._liveout
        )
