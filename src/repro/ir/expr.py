"""Expression AST for statement bodies.

Statements compute scalar expressions over tensor elements.  The AST serves
three purposes:

* access-relation derivation — every :class:`Load` carries affine index
  expressions, from which read relations are built;
* execution — :meth:`Expr.evaluate` runs the expression over concrete
  iterator values and a tensor store (the interpreter backend);
* cost analysis — :meth:`Expr.op_count` counts arithmetic operations for
  the machine models.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, Mapping, Sequence, Union

from ..presburger import LinExpr


class Expr:
    """Base class for scalar expressions."""

    def loads(self) -> Iterator["Load"]:
        """Yield every Load node in the expression tree."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int], store) -> float:
        raise NotImplementedError

    def op_count(self) -> int:
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other) -> "Expr":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other) -> "Expr":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other) -> "Expr":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other) -> "Expr":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other) -> "Expr":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other) -> "Expr":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other) -> "Expr":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other) -> "Expr":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "Expr":
        return BinOp("-", Const(0), self)


def as_expr(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, LinExpr):
        return Affine(value)
    raise TypeError(f"cannot convert {value!r} to Expr")


class Const(Expr):
    """A literal scalar."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, float]):
        self.value = value

    def loads(self):
        return iter(())

    def evaluate(self, env, store):
        return self.value

    def op_count(self):
        return 0

    def __repr__(self):
        return f"Const({self.value})"

    def __str__(self):
        return str(self.value)


class Affine(Expr):
    """An affine combination of iterators/params used as a value."""

    __slots__ = ("expr",)

    def __init__(self, expr: LinExpr):
        self.expr = expr

    def loads(self):
        return iter(())

    def evaluate(self, env, store):
        return self.expr.eval(env)

    def op_count(self):
        return len(self.expr.coeffs)

    def __repr__(self):
        return f"Affine({self.expr})"

    def __str__(self):
        return f"({self.expr})"


class Load(Expr):
    """A read of one tensor element at affine indices."""

    __slots__ = ("tensor", "indices")

    def __init__(self, tensor: str, indices: Sequence[LinExpr]):
        self.tensor = tensor
        self.indices = tuple(LinExpr.coerce(i) for i in indices)

    def loads(self):
        yield self

    def evaluate(self, env, store):
        idx = tuple(e.eval(env) for e in self.indices)
        return store.read(self.tensor, idx)

    def op_count(self):
        return 0

    def __repr__(self):
        return f"Load({self})"

    def __str__(self):
        return f"{self.tensor}[{', '.join(str(i) for i in self.indices)}]"


class BinOp(Expr):
    """A binary arithmetic operation."""

    _FNS: Dict[str, Callable[[float, float], float]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "min": min,
        "max": max,
    }

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in self._FNS:
            raise ValueError(f"unsupported binary op {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def loads(self):
        yield from self.lhs.loads()
        yield from self.rhs.loads()

    def evaluate(self, env, store):
        return self._FNS[self.op](self.lhs.evaluate(env, store), self.rhs.evaluate(env, store))

    def op_count(self):
        return 1 + self.lhs.op_count() + self.rhs.op_count()

    def __repr__(self):
        return f"BinOp({self})"

    def __str__(self):
        if self.op in ("min", "max"):
            return f"{self.op}({self.lhs}, {self.rhs})"
        return f"({self.lhs} {self.op} {self.rhs})"


class Call(Expr):
    """A call to a named intrinsic (quantisation, ReLU, exp, ...)."""

    INTRINSICS: Dict[str, Callable] = {
        "relu": lambda x: x if x > 0 else 0.0,
        "quant": lambda x: float(int(x * 8.0)) / 8.0,
        "exp": math.exp,
        "log": lambda x: math.log(x) if x > 0 else 0.0,
        "sqrt": lambda x: math.sqrt(x) if x > 0 else 0.0,
        "abs": abs,
        "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)),
        "clamp01": lambda x: 0.0 if x < 0 else (1.0 if x > 1 else x),
    }

    __slots__ = ("fn", "args", "cost")

    def __init__(self, fn: str, *args, cost: int = 4):
        if fn not in self.INTRINSICS:
            raise ValueError(f"unknown intrinsic {fn!r}")
        self.fn = fn
        self.args = tuple(as_expr(a) for a in args)
        self.cost = cost

    def loads(self):
        for a in self.args:
            yield from a.loads()

    def evaluate(self, env, store):
        return self.INTRINSICS[self.fn](*(a.evaluate(env, store) for a in self.args))

    def op_count(self):
        return self.cost + sum(a.op_count() for a in self.args)

    def __repr__(self):
        return f"Call({self})"

    def __str__(self):
        return f"{self.fn}({', '.join(str(a) for a in self.args)})"


def relu(x) -> Call:
    return Call("relu", x)


def quant(x) -> Call:
    return Call("quant", x)


def exp(x) -> Call:
    return Call("exp", x)


def sqrt(x) -> Call:
    return Call("sqrt", x)


def vmin(a, b) -> BinOp:
    return BinOp("min", as_expr(a), as_expr(b))


def vmax(a, b) -> BinOp:
    return BinOp("max", as_expr(a), as_expr(b))
