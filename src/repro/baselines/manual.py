"""Manual / partition-driven schedules (Halide baselines, PolyMage, equake).

Two levels of fidelity:

* :func:`scheduled_from_partition` — a :class:`Scheduled` whose fusion
  groups are given explicitly (used for the PPCG heuristic groupings the
  paper reports for equake, and any grouping that fuses without
  recomputation);
* :func:`partitioned_result` — runs the paper's own tiling/extension
  machinery *within* each given partition group (live-out stage of the
  group tiled, other stages pulled in as extension schedules).  This
  models Halide's ``compute_at`` and PolyMage's overlapped tiling: fused
  groups recompute halos, but the *grouping* is fixed by the schedule
  author instead of being derived from the data space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import MixedSchedules, TargetSpec, construct_tile_shapes
from ..core.tile_shapes import CPU
from ..deps import memory_deps
from ..ir import Program
from ..scheduler import FusionGroup, Scheduled, groups_tree, identity_rows
from ..scheduler.parallelism import band_attributes


def make_group(
    program: Program, deps, statements: Sequence[str], name: str
) -> FusionGroup:
    depth = min(len(program.statement(s).dims) for s in statements)
    rows = {
        s: identity_rows(program.statement(s).dims, depth) for s in statements
    }
    coincident, permutable = band_attributes(
        deps, list(statements), rows, depth, program.params
    )
    return FusionGroup(
        name=name,
        statements=sorted(statements, key=program.statement_index),
        depth=depth,
        rows=rows,
        coincident=coincident,
        permutable=permutable,
    )


def scheduled_from_partition(
    program: Program, partition: Sequence[Sequence[str]]
) -> Scheduled:
    """A Scheduled whose groups are exactly the given statement partition."""
    _check_partition(program, partition)
    deps = memory_deps(program)
    groups = [
        make_group(program, deps, part, f"M{i}")
        for i, part in enumerate(partition)
    ]
    tree = groups_tree(program, groups)
    return Scheduled(program, "manual", groups, deps, tree)


@dataclass
class PartitionedResult:
    """Duck-types OptimizeResult for the analyzers (program + mixed)."""

    program: Program
    mixed: MixedSchedules
    scheduled: Scheduled


def partitioned_result(
    program: Program,
    partition: Sequence[Sequence[str]],
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec = CPU,
) -> PartitionedResult:
    """Tile + fuse within each partition group using the paper's machinery.

    Within a group, the stage producing data consumed outside the group
    (or live-out) is the tiled space; the remaining stages become extension
    schedules, recomputing their per-tile footprints — Halide's
    ``compute_at`` semantics under a fixed grouping.
    """
    _check_partition(program, partition)
    deps = memory_deps(program)
    # Build one group per *statement* so Algorithm 1 sees separated
    # computation spaces inside each partition group.
    singleton: Dict[str, FusionGroup] = {}
    counter = 0
    mixed = MixedSchedules()
    all_groups: List[FusionGroup] = []
    for part in partition:
        part_groups = []
        for s in part:
            g = make_group(program, deps, [s], f"M{counter}")
            counter += 1
            singleton[s] = g
            part_groups.append(g)
        all_groups.extend(part_groups)
        liveout_g = _group_liveout(program, part, part_groups)
        inters = [g for g in part_groups if g is not liveout_g]
        inters.reverse()  # nearest producer first (program order reversed)
        sub = construct_tile_shapes(program, liveout_g, inters, tile_sizes, target)
        mixed.entries.extend(sub.entries)
    scheduled = Scheduled(
        program, "manual", all_groups, deps, groups_tree(program, all_groups)
    )
    return PartitionedResult(program, mixed, scheduled)


def _group_liveout(
    program: Program, part: Sequence[str], part_groups: Sequence[FusionGroup]
) -> FusionGroup:
    """The stage of the partition group whose output escapes the group."""
    part_set = set(part)
    escaping = []
    for g in part_groups:
        (s,) = g.statements
        tensor = program.statement(s).tensor_written()
        if tensor in program.liveout:
            escaping.append(g)
            continue
        readers = {r.name for r in program.readers_of(tensor)}
        if readers - part_set:
            escaping.append(g)
    if not escaping:
        return part_groups[-1]
    # The last escaping stage anchors the tiling; earlier escaping stages
    # will simply not be fused (their footprints are not tracked).
    return escaping[-1]


def _check_partition(program: Program, partition: Sequence[Sequence[str]]) -> None:
    seen: List[str] = []
    for part in partition:
        seen.extend(part)
    names = list(program.statement_names)
    if sorted(seen) != sorted(names):
        missing = set(names) - set(seen)
        extra = set(seen) - set(names)
        raise ValueError(
            f"partition does not cover the program exactly "
            f"(missing={sorted(missing)}, unknown={sorted(extra)})"
        )
