"""A Halide-flavoured scheduling DSL over the baseline machinery.

Halide separates the *algorithm* (our :class:`Program`) from the
*schedule*: per-stage directives like ``compute_root()`` (materialise the
stage into memory) and ``compute_at(consumer)`` (recompute the stage's
required region inside the consumer's tiles).  This module provides that
vocabulary and lowers it onto :func:`repro.baselines.partitioned_result`,
so manual schedules can be written the way Halide users write them —
and costed with the same machinery as everything else.

The expressiveness gap the paper identifies remains by construction:
these primitives only transform *computations*; the grouping is whatever
the schedule author wrote, never derived from the data space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import TargetSpec
from ..core.tile_shapes import CPU
from ..ir import Program
from .manual import PartitionedResult, partitioned_result


class HalideScheduleError(ValueError):
    pass


@dataclass
class _StageSchedule:
    stage: str                      # the *stage* name (statement group)
    placement: str = "inline"       # "root" | "at" | "inline"
    anchor: Optional[str] = None    # consumer stage for compute_at


class HalideSchedule:
    """Accumulates per-stage directives, then lowers to a partition.

    Stages are the pipeline's logical stages (``program.stages``); the
    last stage is implicitly ``compute_root``.  Every stage must end up
    either rooted (its own loop nest) or computed at a rooted consumer
    (fused into that consumer's tiles); unscheduled stages are inlined
    into their nearest rooted consumer, like Halide's default.
    """

    def __init__(self, program: Program):
        if not hasattr(program, "stages"):
            raise HalideScheduleError(
                "program has no stage structure (build it with ImagePipeline)"
            )
        self.program = program
        self.stage_names: List[str] = [
            self._stage_label(stage) for stage in program.stages  # type: ignore[attr-defined]
        ]
        self._by_label: Dict[str, List[str]] = {
            self._stage_label(stage): list(stage)
            for stage in program.stages  # type: ignore[attr-defined]
        }
        self._schedules: Dict[str, _StageSchedule] = {
            name: _StageSchedule(name) for name in self.stage_names
        }
        # output stage is always materialised
        self._schedules[self.stage_names[-1]].placement = "root"

    @staticmethod
    def _stage_label(stage: Sequence[str]) -> str:
        return stage[0]

    # -- directives ---------------------------------------------------------

    def compute_root(self, stage: str) -> "HalideSchedule":
        self._stage(stage).placement = "root"
        self._stage(stage).anchor = None
        return self

    def compute_at(self, stage: str, consumer: str) -> "HalideSchedule":
        if consumer not in self._schedules:
            raise HalideScheduleError(f"unknown consumer stage {consumer!r}")
        s = self._stage(stage)
        s.placement = "at"
        s.anchor = consumer
        return self

    def _stage(self, name: str) -> _StageSchedule:
        if name not in self._schedules:
            raise HalideScheduleError(
                f"unknown stage {name!r}; stages: {self.stage_names}"
            )
        return self._schedules[name]

    # -- lowering -------------------------------------------------------------

    def partition(self) -> List[List[str]]:
        """Resolve directives into a statement partition (fusion groups)."""
        roots = [n for n in self.stage_names if self._schedules[n].placement == "root"]
        if not roots:
            raise HalideScheduleError("no compute_root stage")

        # Resolve each stage to the root it lives under.
        home: Dict[str, str] = {}
        for name in self.stage_names:
            sched = self._schedules[name]
            if sched.placement == "root":
                home[name] = name
            elif sched.placement == "at":
                anchor = sched.anchor
                seen = {name}
                while anchor is not None and self._schedules[anchor].placement == "at":
                    if anchor in seen:
                        raise HalideScheduleError(
                            f"compute_at cycle through {anchor!r}"
                        )
                    seen.add(anchor)
                    anchor = self._schedules[anchor].anchor
                if anchor is None or self._schedules[anchor].placement != "root":
                    raise HalideScheduleError(
                        f"stage {name!r} computed at a non-rooted stage"
                    )
                home[name] = anchor
        # Inlined stages follow their nearest rooted consumer (the next
        # rooted stage in pipeline order, Halide's effective default).
        for i, name in enumerate(self.stage_names):
            if name in home:
                continue
            for later in self.stage_names[i + 1 :]:
                if later in home and home[later] == later:
                    home[name] = later
                    break
            else:
                home[name] = self.stage_names[-1]

        groups: Dict[str, List[str]] = {r: [] for r in roots}
        for name in self.stage_names:
            groups[home[name]].extend(self._by_label[name])
        # Preserve pipeline order of the groups (by their root position).
        ordered = sorted(groups, key=self.stage_names.index)
        return [groups[r] for r in ordered if groups[r]]

    def lower(
        self,
        tile_sizes: Optional[Sequence[int]],
        target: TargetSpec = CPU,
    ) -> PartitionedResult:
        """Tile + fuse per the schedule, via the paper's own machinery."""
        return partitioned_result(
            self.program, self.partition(), tile_sizes, target
        )
