"""``repro.baselines`` — the comparators of the evaluation.

* PPCG heuristics (minfuse/smartfuse/maxfuse/hybridfuse) live in
  :mod:`repro.scheduler.fusion` and are costed with ``analyze_scheduled``;
* :func:`halide_result` — Halide's published manual schedules, as fixed
  partitions run through the paper's own tiling machinery;
* :func:`polymage_result` — PolyMage: aggressive fusion with
  tiling-after-fusion, costed with the ``box_total`` overlap policy
  (group-wide over-approximated halos);
* naive — the untransformed sequential program.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import TargetSpec
from ..core.tile_shapes import CPU
from ..ir import Program
from ..machine import ProgramWork, analyze_optimized, analyze_scheduled
from ..scheduler import MINFUSE, schedule_program
from .manual import (
    PartitionedResult,
    make_group,
    partitioned_result,
    scheduled_from_partition,
)


def halide_result(
    program: Program,
    partition: Sequence[Sequence[str]],
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec = CPU,
) -> PartitionedResult:
    """Halide manual schedule: a fixed partition with compute_at fusion."""
    return partitioned_result(program, partition, tile_sizes, target)


def halide_work(
    program: Program,
    partition: Sequence[Sequence[str]],
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec = CPU,
    params=None,
) -> ProgramWork:
    res = halide_result(program, partition, tile_sizes, target)
    return analyze_optimized(res, params)  # exact per-stage regions


def polymage_result(
    program: Program,
    partition: Sequence[Sequence[str]],
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec = CPU,
) -> PartitionedResult:
    """PolyMage grouping (given partition), overlapped tiling after fusion."""
    return partitioned_result(program, partition, tile_sizes, target)


def polymage_work(
    program: Program,
    partition: Sequence[Sequence[str]],
    tile_sizes: Optional[Sequence[int]],
    target: TargetSpec = CPU,
    params=None,
) -> ProgramWork:
    res = polymage_result(program, partition, tile_sizes, target)
    return analyze_optimized(res, params, overlap="box_total")


def naive_work(program: Program, params=None) -> ProgramWork:
    """The untransformed program: no fusion, no tiling, no vectorisation."""
    sched = schedule_program(program, MINFUSE)
    work = analyze_scheduled(sched, None, params)
    for c in work.clusters:
        c.vectorizable = False
        c.n_parallel_dims = 0
        c.parallel_units = 1
    return work


__all__ = [
    "PartitionedResult",
    "halide_result",
    "halide_work",
    "make_group",
    "naive_work",
    "partitioned_result",
    "polymage_result",
    "polymage_work",
    "scheduled_from_partition",
]
