"""``repro.learn`` — a learned cost-model ranker for the autotune grid.

Fit offline on the :mod:`repro.data` candidate store (``repro learn
fit``), the :class:`RankModel` predicts the analytical cost of a tile-size
candidate from features that need *no compilation* — program structure
plus tile geometry — so the autotuner's ``pruned`` search mode can rank
the whole grid in microseconds and run exact specialization only on the
top-k (:func:`repro.scheduler.autotune.autotune_tile_sizes`).
"""

from .features import (
    FEATURE_NAMES,
    MAX_DIMS,
    candidate_features,
    feature_vector,
    program_features,
    ranking_features,
)
from .model import (
    MODEL_SCHEMA,
    ModelSchemaError,
    RankModel,
    default_model_path,
    fit_records,
    head_key,
    load_model,
    save_model,
)

__all__ = [
    "FEATURE_NAMES",
    "MAX_DIMS",
    "MODEL_SCHEMA",
    "ModelSchemaError",
    "RankModel",
    "candidate_features",
    "default_model_path",
    "feature_vector",
    "fit_records",
    "head_key",
    "load_model",
    "program_features",
    "ranking_features",
    "save_model",
]
