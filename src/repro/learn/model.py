"""The ranking model: standardize -> ridge or gradient-boosted stumps.

Pure python + numpy, deterministic, and serialized as a *plain dict* with
a schema tag (:data:`MODEL_SCHEMA`) so a pickled model survives module
refactors and a stale or foreign pickle is rejected loudly instead of
mis-scoring candidates.

Two heads are available per fit:

* ``ridge`` — closed-form L2 linear regression on standardized features;
  the robust cross-program generalizer.
* ``stumps`` — gradient-boosted depth-1 regression trees; fits the
  per-program cost landscape almost exactly, which is what makes the
  pruned search's top-k cut safe on programs the dataset has seen.

A fit always trains one *global* head over every record plus one
*per-(program, target)* head for each group with enough rows
(``min_program_rows``); prediction uses the specific head when the
program is covered and the global head otherwise.  ``coverage()`` is the
row count backing a head — the autotuner falls back to the exhaustive
sweep when it is below the model's ``min_coverage``.

Targets are ``log(cost)``: costs span orders of magnitude across
programs, and ranking only needs the order, which the monotone transform
preserves while keeping the global head's residuals comparable.
"""

from __future__ import annotations

import math
import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .features import FEATURE_NAMES, feature_vector

#: Bump on any change to the serialized model layout.
MODEL_SCHEMA = "repro-ranker/1"

#: Ranking quantum in log-cost units: predicted scores within this are a
#: tie.  Sits between the fitted heads' within-class noise (<= ~3e-4 log
#: on the bench landscapes) and the gap separating distinct analytical
#: cost classes (>= ~1.5e-3).  Ties break on the tile-size tuple, so each
#: predicted-tie class ranks its canonical member first — the same
#: representative the exhaustive sweep's tie-break chooses.
SCORE_QUANTUM = 1e-3

ENV_MODEL = "REPRO_AUTOTUNE_MODEL"


class ModelSchemaError(ValueError):
    """A pickled model file does not carry the expected schema tag."""


def default_model_path() -> str:
    env = os.environ.get(ENV_MODEL)
    if env:
        return env
    from ..service.cache import default_cache_dir

    return os.path.join(default_cache_dir(), "models", "autotune-ranker.pkl")


def head_key(fingerprint: str, target: str) -> str:
    """The per-program head index: one cost landscape per (program, target)."""
    return f"{fingerprint}|{target}"


# ---------------------------------------------------------------------------
# heads


def _fit_ridge(X: np.ndarray, y: np.ndarray, lam: float) -> Dict[str, object]:
    n, p = X.shape
    A = X.T @ X + lam * np.eye(p)
    b = X.T @ (y - y.mean())
    coef = np.linalg.solve(A, b)
    return {"kind": "ridge", "coef": coef.tolist(), "intercept": float(y.mean())}


def _fit_stumps(
    X: np.ndarray, y: np.ndarray, rounds: int, learning_rate: float
) -> Dict[str, object]:
    n, p = X.shape
    base = float(y.mean())
    resid = y - base
    order = np.argsort(X, axis=0, kind="stable")
    feats: List[int] = []
    thrs: List[float] = []
    lefts: List[float] = []
    rights: List[float] = []
    for _ in range(rounds):
        best: Optional[Tuple[float, int, float, float, float]] = None
        for j in range(p):
            xs = X[order[:, j], j]
            rs = resid[order[:, j]]
            splits = np.nonzero(xs[:-1] < xs[1:])[0]
            if splits.size == 0:
                continue
            csum = np.cumsum(rs)
            total = csum[-1]
            n_left = splits + 1.0
            n_right = n - n_left
            s_left = csum[splits]
            s_right = total - s_left
            # SSE reduction of the split (up to a constant): the variance
            # explained by the two leaf means.
            gain = s_left**2 / n_left + s_right**2 / n_right
            k = int(np.argmax(gain))
            if best is None or gain[k] > best[0] + 1e-12:
                thr = 0.5 * (xs[splits[k]] + xs[splits[k] + 1])
                best = (
                    float(gain[k]),
                    j,
                    float(thr),
                    float(s_left[k] / n_left[k]),
                    float(s_right[k] / n_right[k]),
                )
        if best is None or best[0] <= 1e-15:
            break
        _, j, thr, left, right = best
        left *= learning_rate
        right *= learning_rate
        feats.append(j)
        thrs.append(thr)
        lefts.append(left)
        rights.append(right)
        resid = resid - np.where(X[:, j] <= thr, left, right)
    return {
        "kind": "stumps",
        "base": base,
        "feat": feats,
        "thr": thrs,
        "left": lefts,
        "right": rights,
    }


def _predict_head(head: Mapping[str, object], X: np.ndarray) -> np.ndarray:
    if head["kind"] == "ridge":
        return X @ np.asarray(head["coef"]) + head["intercept"]
    out = np.full(X.shape[0], head["base"], dtype=np.float64)
    for j, thr, left, right in zip(
        head["feat"], head["thr"], head["left"], head["right"]
    ):
        out += np.where(X[:, j] <= thr, left, right)
    return out


# ---------------------------------------------------------------------------
# the model


@dataclass
class RankModel:
    """A fitted ranker: feature vocabulary, scaler, and cost heads."""

    kind: str
    feature_names: Tuple[str, ...]
    mean: np.ndarray
    scale: np.ndarray
    heads: Dict[str, Dict[str, object]]
    rows: Dict[str, int]
    min_coverage: int = 8
    meta: Dict[str, object] = field(default_factory=dict)

    #: Key of the cross-program head in :attr:`heads`.
    GLOBAL = ""

    def coverage(self, fingerprint: str, target: str = "cpu") -> int:
        """Training rows backing the (program, target) head; 0 = unseen."""
        return self.rows.get(head_key(fingerprint, target), 0)

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self.mean) / self.scale

    def predict(
        self,
        features: Sequence[Mapping[str, float]],
        fingerprint: str = "",
        target: str = "cpu",
    ) -> np.ndarray:
        """Predicted ``log(cost)`` per feature dict (lower = better)."""
        X = np.stack(
            [feature_vector(f, self.feature_names) for f in features]
        )
        key = head_key(fingerprint, target)
        head = self.heads.get(key, self.heads[self.GLOBAL])
        return _predict_head(head, self._standardize(X))

    def rank(
        self,
        program,
        combos: Sequence[Tuple[int, ...]],
        dims: Optional[int] = None,
        threads: int = 32,
        target: str = "cpu",
        fingerprint: str = "",
        bounds: Optional[Sequence[int]] = None,
    ) -> List[Tuple[Tuple[int, ...], float]]:
        """Candidates with predicted scores, best first.

        Scores are quantized to :data:`SCORE_QUANTUM` before sorting —
        candidates the model cannot reliably distinguish (e.g. a class of
        tilings with identical analytical cost) tie, and ties break on
        the tile-size tuple.  That keeps the cut deterministic *and*
        ranks each tied class's canonical (lowest tile-size) member
        first, which is exactly the representative the exhaustive
        sweep's tie-break would have chosen.
        """
        from .features import ranking_features

        if not combos:
            return []
        feats = [
            ranking_features(program, sizes, dims, threads, bounds)
            for sizes in combos
        ]
        scores = self.predict(feats, fingerprint=fingerprint, target=target)
        return sorted(
            zip([tuple(c) for c in combos], (float(s) for s in scores)),
            key=lambda cs: (round(cs[1] / SCORE_QUANTUM), cs[0]),
        )

    # -- (de)serialization -------------------------------------------------

    def as_payload(self) -> Dict[str, object]:
        return {
            "schema": MODEL_SCHEMA,
            "kind": self.kind,
            "feature_names": list(self.feature_names),
            "mean": self.mean.tolist(),
            "scale": self.scale.tolist(),
            "heads": self.heads,
            "rows": self.rows,
            "min_coverage": self.min_coverage,
            "meta": self.meta,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "RankModel":
        if not isinstance(payload, Mapping) or payload.get("schema") != MODEL_SCHEMA:
            found = (
                payload.get("schema") if isinstance(payload, Mapping) else None
            )
            raise ModelSchemaError(
                f"model schema is {found!r}, expected {MODEL_SCHEMA!r}"
            )
        return cls(
            kind=str(payload["kind"]),
            feature_names=tuple(payload["feature_names"]),
            mean=np.asarray(payload["mean"], dtype=np.float64),
            scale=np.asarray(payload["scale"], dtype=np.float64),
            heads=dict(payload["heads"]),
            rows=dict(payload["rows"]),
            min_coverage=int(payload.get("min_coverage", 8)),
            meta=dict(payload.get("meta", {})),
        )


def save_model(model: RankModel, path: Optional[str] = None) -> str:
    path = path or default_model_path()
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as f:
        pickle.dump(model.as_payload(), f, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_model(path: Optional[str] = None) -> RankModel:
    """Load and schema-check a pickled model; raises
    :class:`ModelSchemaError` on a wrong or missing schema tag."""
    path = path or default_model_path()
    with open(path, "rb") as f:
        payload = pickle.load(f)
    return RankModel.from_payload(payload)


# ---------------------------------------------------------------------------
# fitting


def fit_records(
    records: Iterable[Mapping[str, object]],
    kind: str = "stumps",
    rounds: int = 400,
    learning_rate: float = 0.5,
    ridge_lambda: float = 1.0,
    min_program_rows: int = 8,
    min_coverage: int = 8,
) -> RankModel:
    """Fit a :class:`RankModel` on dataset records (:mod:`repro.data`).

    Duplicate (fingerprint, target, tile_sizes) rows keep only the most
    recent record, so re-collected sweeps refine rather than over-weight.
    """
    if kind not in ("ridge", "stumps"):
        raise ValueError(f"unknown model kind {kind!r}; use 'ridge' or 'stumps'")
    latest: Dict[Tuple[str, str, Tuple[int, ...]], Mapping[str, object]] = {}
    for r in records:
        latest[
            (r["fingerprint"], r["target"], tuple(r["tile_sizes"]))
        ] = r
    rows = list(latest.values())
    if not rows:
        raise ValueError("no dataset records to fit on")

    X = np.stack(
        [feature_vector(r["features"], FEATURE_NAMES) for r in rows]
    )
    y = np.array([math.log(float(r["cost"])) for r in rows], dtype=np.float64)
    mean = X.mean(axis=0)
    scale = X.std(axis=0)
    scale[scale == 0.0] = 1.0
    Xs = (X - mean) / scale

    def _fit(Xg: np.ndarray, yg: np.ndarray) -> Dict[str, object]:
        if kind == "ridge":
            return _fit_ridge(Xg, yg, ridge_lambda)
        return _fit_stumps(Xg, yg, rounds, learning_rate)

    heads: Dict[str, Dict[str, object]] = {RankModel.GLOBAL: _fit(Xs, y)}
    counts: Dict[str, int] = {}
    groups: Dict[str, List[int]] = {}
    for i, r in enumerate(rows):
        key = head_key(r["fingerprint"], r["target"])
        groups.setdefault(key, []).append(i)
    for key in sorted(groups):
        idx = groups[key]
        counts[key] = len(idx)
        if len(idx) >= min_program_rows:
            sel = np.array(idx)
            heads[key] = _fit(Xs[sel], y[sel])

    pred = np.empty_like(y)
    for key, idx in groups.items():
        sel = np.array(idx)
        head = heads.get(key, heads[RankModel.GLOBAL])
        pred[sel] = _predict_head(head, Xs[sel])
    rmse = float(np.sqrt(np.mean((pred - y) ** 2)))

    return RankModel(
        kind=kind,
        feature_names=FEATURE_NAMES,
        mean=mean,
        scale=scale,
        heads=heads,
        rows=counts,
        min_coverage=min_coverage,
        meta={
            "rows": len(rows),
            "programs": len(groups),
            "per_program_heads": len(heads) - 1,
            "train_rmse_log": rmse,
            "rounds": rounds,
            "learning_rate": learning_rate,
            "ridge_lambda": ridge_lambda,
        },
    )
