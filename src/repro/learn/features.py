"""Featurization: program structure + tile geometry, no compilation.

The ranker must score a candidate *before* exact specialization — that is
the whole point of pruning — so every feature here is computable from the
:class:`~repro.ir.Program` and the tile-size tuple alone: live-out
extents, statement counts and per-instance op counts on the program side;
tile volumes, tile counts, halo-proxy surface terms and aspect ratios on
the candidate side.  The exact cost-model internals (footprints, traffic)
are still *persisted* per record (the ``work`` section, from
:func:`repro.machine.work_features`) for analysis, but the model never
needs them at prediction time.

Feature names are a fixed, ordered vocabulary (:data:`FEATURE_NAMES`)
padded to :data:`MAX_DIMS` dimensions, so vectors from different programs
and sweeps align and a pickled model keeps scoring new records.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir import Program

#: Feature vectors are padded to this many tile dimensions.
MAX_DIMS = 3


def liveout_extent_bounds(program: Program, dims: int) -> List[int]:
    """Per-dimension tile-size bounds from the live-out iteration extents.

    For each tile dimension the bound is the *minimum* extent across all
    live-out tensors (a tile must fit every live-out space it applies
    to); a live-out of lower rank contributes its maximal extent, which
    preserves the historical scalar derivation for 1-D outputs.
    """
    if not program.liveout:
        raise ValueError(f"program {program.name!r} has no live-out tensors")
    bounds: List[int] = []
    shapes = [
        program.tensors[name].concrete_shape(program.params)
        for name in program.liveout
    ]
    for d in range(dims):
        bounds.append(
            min(shape[d] if d < len(shape) else max(shape) for shape in shapes)
        )
    return bounds


def _log2(v: float) -> float:
    return math.log2(v) if v > 0 else 0.0


def program_features(program: Program, dims: int) -> Dict[str, float]:
    """Structure-only features of one program (shared by its whole grid)."""
    bounds = liveout_extent_bounds(program, dims)
    feats: Dict[str, float] = {
        "n_statements": float(len(program.statements)),
        "n_tensors": float(len(program.tensors)),
        "n_liveouts": float(len(program.liveout)),
        "dims": float(dims),
        "ops_per_instance": float(
            sum(s.ops_per_instance() for s in program.statements)
        ),
        "liveout_elems": float(
            sum(
                program.tensors[name].size_elems(program.params)
                for name in program.liveout
            )
        ),
    }
    for d in range(MAX_DIMS):
        extent = bounds[d] if d < len(bounds) else 1
        feats[f"extent_{d}"] = float(extent)
        feats[f"log2_extent_{d}"] = _log2(extent)
    return feats


def candidate_features(
    sizes: Sequence[int], bounds: Sequence[int]
) -> Dict[str, float]:
    """Tile-geometry features of one candidate against the extents."""
    feats: Dict[str, float] = {}
    tiles: List[int] = []
    for d in range(MAX_DIMS):
        size = sizes[d] if d < len(sizes) else 1
        extent = bounds[d] if d < len(bounds) else 1
        per_dim_tiles = max(1, -(-extent // size))
        tiles.append(per_dim_tiles)
        feats[f"size_{d}"] = float(size)
        feats[f"log2_size_{d}"] = _log2(size)
        feats[f"tiles_{d}"] = float(per_dim_tiles)
        feats[f"fill_{d}"] = min(1.0, size / extent) if extent else 1.0
    volume = 1
    for s in sizes:
        volume *= s
    n_tiles = 1
    for t in tiles:
        n_tiles *= t
    live = [s for s in sizes] or [1]
    feats["volume"] = float(volume)
    feats["log2_volume"] = _log2(volume)
    feats["n_tiles"] = float(n_tiles)
    feats["log2_n_tiles"] = _log2(n_tiles)
    # Halo proxy: recomputation and per-tile footprint overheads scale
    # with the tile's surface-to-volume ratio.
    feats["surface"] = sum(1.0 / s for s in live)
    feats["aspect"] = max(live) / min(live)
    # Pairwise interactions: tiled footprints mix terms like s_a*K,
    # s_a*s_b and max(s_a, s_b), which no axis-aligned split on a single
    # size can express — depth-1 stumps need them spelled out.
    ls = [feats[f"log2_size_{d}"] for d in range(MAX_DIMS)]
    for a in range(MAX_DIMS):
        for b in range(a + 1, MAX_DIMS):
            feats[f"log2_size_prod_{a}{b}"] = ls[a] * ls[b]
            feats[f"log2_size_diff_{a}{b}"] = ls[a] - ls[b]
    feats["log2_size_min"] = min(ls)
    feats["log2_size_max"] = max(ls)
    return feats


def ranking_features(
    program: Program,
    sizes: Sequence[int],
    dims: Optional[int] = None,
    threads: int = 32,
    bounds: Optional[Sequence[int]] = None,
) -> Dict[str, float]:
    """The full cheap feature dict for one (program, candidate) pair."""
    dims = dims if dims is not None else len(sizes)
    if bounds is None:
        bounds = liveout_extent_bounds(program, dims)
    feats = program_features(program, dims)
    feats.update(candidate_features(sizes, bounds))
    feats["threads"] = float(threads)
    return feats


def _feature_names() -> Tuple[str, ...]:
    """The fixed vocabulary, derived from a tiny synthetic program so it
    can never drift from the extractors above."""
    names = set(program_features(_PROBE, MAX_DIMS))
    names |= set(candidate_features((1,) * MAX_DIMS, (1,) * MAX_DIMS))
    names.add("threads")
    return tuple(sorted(names))


class _ProbeProgram:
    """Shape-compatible stand-in so the vocabulary needs no real build."""

    name = "probe"
    params: Dict[str, int] = {}
    liveout = ("t",)

    class _Stmt:
        @staticmethod
        def ops_per_instance() -> int:
            return 1

    statements = (_Stmt(),)

    class _Tensor:
        @staticmethod
        def concrete_shape(_params):
            return (1, 1, 1)

        @staticmethod
        def size_elems(_params):
            return 1

    tensors = {"t": _Tensor()}


_PROBE = _ProbeProgram()

#: Every feature the extractors emit, in the canonical (sorted) order a
#: model's weight vector follows.
FEATURE_NAMES: Tuple[str, ...] = _feature_names()


def feature_vector(
    feats: Dict[str, float], names: Sequence[str] = FEATURE_NAMES
) -> np.ndarray:
    """A dense vector in canonical feature order (missing names -> 0)."""
    return np.array([float(feats.get(n, 0.0)) for n in names], dtype=np.float64)
