"""Memory-based dependence analysis.

Dependences are computed exactly as relation joins of access maps:

* flow (RAW): a write composed with the reverse of a later read;
* anti (WAR): a read composed with the reverse of a later write;
* output (WAW): two writes to the same tensor.

"Later" is the program's initial (textual) schedule: the statement order,
refined by lexicographic order on shared iteration dimensions for
self-dependences (the reduction case).

Distance vectors over aligned loop dimensions drive all parallelism and
tilability decisions in :mod:`repro.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ir import Program, Statement
from ..presburger import (
    Constraint,
    LinExpr,
    Map,
    UnionMap,
)
from ..presburger.fm import bounds_for_symbol, eliminate_symbols

FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"


@dataclass
class Dependence:
    """One dependence: instances of ``source`` must run before ``target``.

    ``src_dims``/``dst_dims`` record the statements' iterator names aligned
    with the relation's in/out dimensions (whose names may have been
    freshened during composition).
    """

    source: str
    target: str
    tensor: str
    kind: str
    relation: Map  # { source[i] -> target[j] }
    src_dims: Tuple[str, ...] = ()
    dst_dims: Tuple[str, ...] = ()

    def __repr__(self):
        return f"Dep({self.kind}: {self.source} -> {self.target} via {self.tensor})"


def _lex_lt_pieces(m: Map) -> Map:
    """Restrict a same-space relation to lexicographically increasing pairs.

    in_dims and out_dims are aligned positionally; the result is the union
    over positions k of { equal on dims < k, strictly less at k }.
    """
    pieces = []
    in_dims, out_dims = m.space.in_dims, m.space.out_dims
    n = min(len(in_dims), len(out_dims))
    for k in range(n):
        cons: List[Constraint] = []
        for p in range(k):
            cons.append(Constraint.eq(LinExpr.var(in_dims[p]) - LinExpr.var(out_dims[p])))
        cons.append(Constraint.lt(LinExpr.var(in_dims[k]), LinExpr.var(out_dims[k])))
        for bm in m.pieces:
            pieces.append(bm.add_constraints(cons))
    return Map(m.space, pieces)


def _join(src_access: Map, dst_access: Map) -> Map:
    """{ i -> j : src touches the same element dst touches }."""
    return src_access.apply_range(dst_access.reverse())


def memory_deps(
    program: Program, kinds: Iterable[str] = (FLOW, ANTI, OUTPUT)
) -> List[Dependence]:
    """All memory-based dependences of a program under its initial order."""
    kinds = set(kinds)
    deps: List[Dependence] = []
    stmts = program.statements
    for i, src in enumerate(stmts):
        src_writes = {src.tensor_written(): src.write_relation()}
        src_reads = {
            key[1]: m for key, m in src.read_relations().maps.items()
        }
        for j in range(i, len(stmts)):
            dst = stmts[j]
            same = i == j
            dst_write = {dst.tensor_written(): dst.write_relation()}
            dst_reads = {
                key[1]: m for key, m in dst.read_relations().maps.items()
            }
            pairs = []
            if FLOW in kinds:
                pairs += [
                    (FLOW, t, src_writes[t], dst_reads[t])
                    for t in src_writes
                    if t in dst_reads
                ]
            if ANTI in kinds:
                pairs += [
                    (ANTI, t, src_reads[t], dst_write[t])
                    for t in src_reads
                    if t in dst_write
                ]
            if OUTPUT in kinds:
                pairs += [
                    (OUTPUT, t, src_writes[t], dst_write[t])
                    for t in src_writes
                    if t in dst_write
                ]
            for kind, tensor, a_map, b_map in pairs:
                rel = _join(a_map, b_map)
                if same:
                    if kind == OUTPUT:
                        continue  # self output dep carries no ordering news
                    rel = _lex_lt_pieces(rel)
                if rel.is_empty():
                    continue
                deps.append(
                    Dependence(
                        src.name, dst.name, tensor, kind, rel, src.dims, dst.dims
                    )
                )
    return deps


def flow_deps(program: Program) -> List[Dependence]:
    return memory_deps(program, kinds=(FLOW,))


def deps_as_union_map(deps: Sequence[Dependence]) -> UnionMap:
    return UnionMap([d.relation for d in deps])


def dep_distance_bounds(
    dep: Dependence,
    src_rows: Sequence[LinExpr],
    dst_rows: Sequence[LinExpr],
    params: Mapping[str, int],
) -> List[Tuple[Optional[int], Optional[int]]]:
    """Per-dimension (min, max) of ``dst_row(j) - src_row(i)`` over the dep.

    ``src_rows``/``dst_rows`` are the band schedule rows of the two
    statements, aligned positionally (the fused loop dimensions).  ``None``
    bounds mean unbounded.  An empty dependence yields ``(0, 0)`` rows.
    """
    out: List[Tuple[Optional[int], Optional[int]]] = []
    for s_row, d_row in zip(src_rows, dst_rows):
        lo: Optional[int] = None
        hi: Optional[int] = None
        nonempty = False
        for bm in dep.relation.fix_params(params).pieces:
            in_rename = dict(zip(dep.src_dims, bm.space.in_dims))
            out_rename = dict(zip(dep.dst_dims, bm.space.out_dims))
            delta = d_row.rename(out_rename) - s_row.rename(in_rename)
            all_dims = list(bm.space.in_dims) + list(bm.space.out_dims)
            cons = list(bm.constraints) + [
                Constraint.eq(LinExpr.var("__delta") - delta)
            ]
            projected = eliminate_symbols(cons, all_dims)
            if any(c.is_trivially_false() for c in projected):
                continue
            plo, phi, _ = bounds_for_symbol(projected, "__delta", {})
            if plo is not None and phi is not None and plo > phi:
                continue
            nonempty = True
            lo = plo if lo is None else (None if plo is None else min(lo, plo))
            hi = phi if hi is None else (None if phi is None else max(hi, phi))
        if not nonempty:
            out.append((0, 0))
        else:
            out.append((lo, hi))
    return out


def statement_row_map(stmt: Statement, depth: int) -> List[LinExpr]:
    """The first ``depth`` iterators of a statement as schedule rows."""
    rows = [LinExpr.var(d) for d in stmt.dims[:depth]]
    while len(rows) < depth:
        rows.append(LinExpr.const_expr(0))
    return rows


def producer_consumer_tensors(program: Program) -> Dict[Tuple[str, str], List[str]]:
    """Map (producer stmt, consumer stmt) -> tensors flowing between them."""
    table: Dict[Tuple[str, str], List[str]] = {}
    for d in memory_deps(program, kinds=(FLOW,)):
        if d.source == d.target:
            continue
        table.setdefault((d.source, d.target), []).append(d.tensor)
    return table
