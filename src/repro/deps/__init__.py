"""``repro.deps`` — exact memory-based dependence analysis."""

from .analysis import (
    ANTI,
    Dependence,
    FLOW,
    OUTPUT,
    dep_distance_bounds,
    deps_as_union_map,
    flow_deps,
    memory_deps,
    producer_consumer_tensors,
    statement_row_map,
)

__all__ = [
    "ANTI",
    "Dependence",
    "FLOW",
    "OUTPUT",
    "dep_distance_bounds",
    "deps_as_union_map",
    "flow_deps",
    "memory_deps",
    "producer_consumer_tensors",
    "statement_row_map",
]
