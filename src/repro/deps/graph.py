"""Dependence-graph utilities: NetworkX views and Graphviz export.

The statement-level flow graph drives the fusion heuristics; exposing it
as a ``networkx.DiGraph`` makes the pipeline structure scriptable (level
computations, critical paths, visual dumps of why a grouping happened).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx

from ..ir import Program
from .analysis import memory_deps


def dependence_graph(
    program: Program, kinds: Sequence[str] = ("flow",)
) -> "nx.MultiDiGraph":
    """Statement-level dependence graph (parallel edges keep their tensor)."""
    g = nx.MultiDiGraph()
    for stmt in program.statements:
        g.add_node(
            stmt.name,
            tensor=stmt.tensor_written(),
            dims=len(stmt.dims),
            kind=stmt.kind,
        )
    for dep in memory_deps(program, kinds=kinds):
        if dep.source == dep.target:
            continue
        g.add_edge(dep.source, dep.target, tensor=dep.tensor, kind=dep.kind)
    return g


def stage_levels(program: Program) -> Dict[str, int]:
    """Longest-path depth of each statement in the flow graph."""
    g = dependence_graph(program)
    levels: Dict[str, int] = {}
    for name in nx.topological_sort(g):
        preds = [levels[p] for p in g.predecessors(name)]
        levels[name] = (max(preds) + 1) if preds else 0
    return levels


def critical_path(program: Program) -> List[str]:
    """A longest producer-consumer chain (the fusion-depth stress)."""
    g = dependence_graph(program)
    return nx.dag_longest_path(g)


def to_dot(
    program: Program,
    clusters: Optional[Sequence[Sequence[str]]] = None,
    kinds: Sequence[str] = ("flow",),
) -> str:
    """Graphviz text; ``clusters`` (fusion result) render as subgraphs."""
    g = dependence_graph(program, kinds)
    lines = [f'digraph "{program.name}" {{', "  rankdir=TB;", "  node [shape=box];"]
    clustered = set()
    if clusters:
        for ci, cluster in enumerate(clusters):
            lines.append(f"  subgraph cluster_{ci} {{")
            lines.append(f'    label="cluster {ci}"; style=rounded;')
            for s in cluster:
                lines.append(f'    "{s}";')
                clustered.add(s)
            lines.append("  }")
    for name in g.nodes:
        if name not in clustered:
            lines.append(f'  "{name}";')
    for u, v, data in g.edges(data=True):
        style = "solid" if data.get("kind") == "flow" else "dashed"
        lines.append(
            f'  "{u}" -> "{v}" [label="{data.get("tensor", "")}", style={style}];'
        )
    lines.append("}")
    return "\n".join(lines)
