"""Concrete point enumeration of bounded integer sets.

The executor backend and exact footprint counting both rely on lexicographic
enumeration.  Enumeration builds a Fourier–Motzkin *tower*: level ``i`` of the
tower constrains the first ``i`` dimensions only, so the integer range of
dimension ``i`` can be computed once dimensions ``0..i-1`` are fixed.  Since
FM projection can be a rational over-approximation, every emitted point is
verified against the original constraints (the check is a no-op for the
unit-coefficient systems that dominate in practice).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from .basic_set import BasicSet
from .constraint import Constraint
from .fm import eliminate_symbol
from .linexpr import LinExpr
from .set_ import Set


class EnumerationError(ValueError):
    pass


def _tower(constraints: Sequence[Constraint], dims: Sequence[str]) -> List[List[Constraint]]:
    """towers[i] constrains dims[:i] only (dims[i:] eliminated)."""
    towers: List[List[Constraint]] = [None] * (len(dims) + 1)  # type: ignore
    towers[len(dims)] = list(constraints)
    for i in range(len(dims) - 1, -1, -1):
        towers[i] = eliminate_symbol(towers[i + 1], dims[i])
    return towers


def enumerate_points(
    bset: BasicSet, params: Mapping[str, int] | None = None
) -> Iterator[Dict[str, int]]:
    """Yield every integer point of ``bset`` in lexicographic dim order."""
    fixed = bset.fix_params(params or {})
    if fixed.space.params:
        raise EnumerationError(
            f"cannot enumerate with unbound params {fixed.space.params}"
        )
    dims = list(fixed.space.dims)
    if not dims:
        if all(c.satisfied_by({}) for c in fixed.constraints):
            yield {}
        return
    towers = _tower(fixed.constraints, dims)
    for c in towers[0]:
        if c.is_trivially_false():
            return
    original = fixed.constraints

    # Pre-split constraints at each level into (coeff-on-level-dim, rest-expr)
    # for fast bound computation.
    level_cons: List[List[Tuple[str, int, object]]] = []
    for i, dim in enumerate(dims):
        entries = []
        for c in towers[i + 1]:
            a = c.coeff(dim)
            if a == 0:
                continue
            rest = c.expr - LinExpr({dim: a})
            entries.append((c.kind, a, rest))
        level_cons.append(entries)

    binding: Dict[str, int] = {}

    def level_range(i: int) -> Tuple[int, int]:
        lo = None
        hi = None
        for kind, a, rest in level_cons[i]:
            val = rest.eval(binding)
            if kind == "==":
                if val % a != 0:
                    return 1, 0
                point = -val // a
                lo = point if lo is None else max(lo, point)
                hi = point if hi is None else min(hi, point)
            elif a > 0:
                bound = _ceil_div(-val, a)
                lo = bound if lo is None else max(lo, bound)
            else:
                bound = _floor_div(val, -a)
                hi = bound if hi is None else min(hi, bound)
        if lo is None or hi is None:
            raise EnumerationError(
                f"dimension {dims[i]} of {bset} is unbounded; cannot enumerate"
            )
        return lo, hi

    def walk(i: int) -> Iterator[Dict[str, int]]:
        if i == len(dims):
            if all(c.satisfied_by(binding) for c in original):
                yield dict(binding)
            return
        lo, hi = level_range(i)
        dim = dims[i]
        for val in range(lo, hi + 1):
            binding[dim] = val
            yield from walk(i + 1)
        binding.pop(dim, None)

    yield from walk(0)


def enumerate_set_points(
    s: Set, params: Mapping[str, int] | None = None
) -> Iterator[Dict[str, int]]:
    """Yield points of a union exactly once (dedup across pieces)."""
    if len(s.pieces) == 1:
        yield from enumerate_points(s.pieces[0], params)
        return
    seen = set()
    dims = s.space.dims
    for piece in s.pieces:
        for point in enumerate_points(piece, params):
            key = tuple(point[d] for d in dims)
            if key not in seen:
                seen.add(key)
                yield point


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    return a // b
